//! # multiview-tcca
//!
//! A from-scratch Rust reproduction of *Tensor Canonical Correlation Analysis for
//! Multi-view Dimension Reduction* (Luo, Tao, Wen, Ramamohanarao, Xu — ICDE 2016).
//!
//! This façade crate re-exports the workspace's sub-crates so downstream users can add a
//! single dependency:
//!
//! * [`tcca`] — the paper's contribution: linear TCCA and kernel TCCA.
//! * [`baselines`] — every method the paper compares against (CCA, CCA-LS, CCA-MAXVAR,
//!   DSE, SSMVD, PCA, KCCA and the feature-level baselines).
//! * [`linalg`] / [`tensor`] — the dense linear-algebra and tensor-decomposition
//!   substrates (Jacobi eigensolver, Cholesky, SVD, CP-ALS, HOPM, tensor power method).
//! * [`datasets`] — synthetic multi-view generators emulating the paper's SecStr, Ads
//!   and NUS-WIDE benchmarks, plus kernels and split helpers.
//! * [`learners`] — the downstream RLS and kNN classifiers and the evaluation protocol.
//!
//! See `examples/` for runnable end-to-end walkthroughs and the `tcca-bench` crate for
//! the harness that regenerates every table and figure of the paper.
//!
//! ```
//! use multiview_tcca::prelude::*;
//!
//! let data = secstr_dataset(&SecStrConfig { n_instances: 120, seed: 1, difficulty: 0.8 });
//! let model = Tcca::fit(data.views(), &TccaOptions::with_rank(3)).unwrap();
//! let embedding = model.transform(data.views()).unwrap();
//! assert_eq!(embedding.shape(), (120, 9));
//! ```

#![warn(missing_docs)]

pub use baselines;
pub use datasets;
pub use learners;
pub use linalg;
pub use tcca;
pub use tensor;

/// Commonly used items, re-exported for convenient glob imports.
pub mod prelude {
    pub use baselines::{Cca, CcaLs, CcaMaxVar, Dse, Kcca, PairwiseCca, Pca, Ssmvd};
    pub use datasets::{
        ads_dataset, center_kernel, gram_matrix, nuswide_dataset, secstr_dataset, AdsConfig,
        Kernel, MultiViewDataset, NusWideConfig, SecStrConfig,
    };
    pub use learners::{accuracy, KnnClassifier, RlsClassifier};
    pub use linalg::Matrix;
    pub use tcca::{DecompositionMethod, Ktcca, KtccaOptions, Tcca, TccaOptions};
    pub use tensor::{CpAls, DenseTensor, Hopm, RankRDecomposition, TensorPowerMethod};
}
