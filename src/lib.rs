//! # multiview-tcca
//!
//! A from-scratch Rust reproduction of *Tensor Canonical Correlation Analysis for
//! Multi-view Dimension Reduction* (Luo, Tao, Wen, Ramamohanarao, Xu — ICDE 2016).
//!
//! This façade crate re-exports the workspace's sub-crates so downstream users can add a
//! single dependency:
//!
//! * [`mvcore`] — the unified estimator API: the [`prelude::MultiViewEstimator`] trait,
//!   [`prelude::FitSpec`], [`prelude::EstimatorRegistry`] and [`prelude::Pipeline`],
//!   through which every method below is constructed and driven uniformly.
//! * [`tcca`] — the paper's contribution: linear TCCA and kernel TCCA.
//! * [`baselines`] — every method the paper compares against (CCA, CCA-LS, CCA-MAXVAR,
//!   DSE, SSMVD, PCA, KCCA and the feature-level baselines).
//! * [`linalg`] / [`tensor`] — the dense linear-algebra and tensor-decomposition
//!   substrates (Jacobi eigensolver, Cholesky, SVD, CP-ALS, HOPM, tensor power method).
//! * [`datasets`] — synthetic multi-view generators emulating the paper's SecStr, Ads
//!   and NUS-WIDE benchmarks, plus kernels and split helpers.
//! * [`learners`] — the downstream RLS and kNN classifiers and the evaluation protocol.
//! * [`serve`] — model persistence ([`prelude::ModelStore`]) and the micro-batching
//!   TCP transform server behind the `tcca_serve` binary; fitted models `save` into
//!   the versioned `MVTC` format and load back through the registry with
//!   bit-identical `transform` output.
//!
//! See `examples/` for runnable end-to-end walkthroughs and the `tcca-bench` crate for
//! the harness that regenerates every table and figure of the paper.
//!
//! Every method is available by name through the registry, under one `fit/transform`
//! contract and one error type:
//!
//! ```
//! use multiview_tcca::prelude::*;
//!
//! let data = secstr_dataset(&SecStrConfig { n_instances: 120, seed: 1, difficulty: 0.8 });
//! let registry = EstimatorRegistry::with_builtin();
//! let spec = FitSpec::with_rank(3).epsilon(1e-2).seed(7);
//!
//! let model = registry.fit("TCCA", data.views(), &spec).unwrap();
//! let embedding = model.transform(data.views()).unwrap();
//! assert_eq!(embedding.shape(), (120, 9)); // m views × rank, concatenated
//! assert_eq!(model.dim(), 9);
//!
//! // The inherent APIs still exist and agree with the trait surface:
//! let direct = Tcca::fit(data.views(), &TccaOptions::with_rank(3)).unwrap();
//! assert_eq!(direct.transform(data.views()).unwrap().shape(), (120, 9));
//! ```

#![warn(missing_docs)]

pub use baselines;
pub use datasets;
pub use learners;
pub use linalg;
pub use mvcore;
pub use serve;
pub use tcca;
pub use tensor;

/// Commonly used items, re-exported for convenient glob imports.
pub mod prelude {
    pub use baselines::{Cca, CcaLs, CcaMaxVar, Dse, Kcca, PairwiseCca, Pca, Ssmvd};
    pub use datasets::{
        ads_dataset, center_kernel, gram_matrix, nuswide_dataset, secstr_dataset, AdsConfig,
        Kernel, MultiViewDataset, NusWideConfig, SecStrConfig,
    };
    pub use learners::{accuracy, KnnClassifier, RlsClassifier};
    pub use linalg::Matrix;
    pub use mvcore::{
        CombineRule, CoreError, EstimatorRegistry, FitSpec, InputKind, MemoryModel,
        MultiViewEstimator, MultiViewModel, Output, Pipeline,
    };
    pub use serve::{
        BatchConfig, BatchEngine, Client, ModelStore, Router, RouterBuilder, RouterConfig, Server,
        TransformService,
    };
    pub use tcca::{DecompositionMethod, Ktcca, KtccaOptions, Tcca, TccaOptions};
    pub use tensor::{CpAls, DenseTensor, Hopm, RankRDecomposition, TensorPowerMethod};
}
