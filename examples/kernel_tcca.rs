//! Kernel TCCA on a small image-annotation subset (the paper's §5.2): build one kernel
//! per view (χ² for the visual-word histogram, L2 for the rest), fit KTCCA on the Gram
//! tensor and classify with kNN on the kernel embedding.
//!
//! Run with: `cargo run --release --example kernel_tcca`

use datasets::labeled_subset_per_class;
use multiview_tcca::prelude::*;

fn main() {
    // The paper uses a 500-image subset for the non-linear experiments; the Gram tensor
    // is N³, so we use a 120-image subset for a quick demo.
    let data = nuswide_dataset(&NusWideConfig {
        n_instances: 120,
        seed: 43,
        difficulty: 1.2,
    });

    // One centered kernel per view: χ² for the SIFT histogram view, L2 otherwise.
    let kernels: Vec<Matrix> = data
        .views()
        .iter()
        .enumerate()
        .map(|(p, v)| {
            let kernel = if p == 0 {
                Kernel::ExpChiSquare
            } else {
                Kernel::ExpEuclidean
            };
            center_kernel(&gram_matrix(v, kernel))
        })
        .collect();
    println!(
        "built {} kernels of size {}x{}",
        kernels.len(),
        data.len(),
        data.len()
    );

    let options = KtccaOptions::with_rank(8).epsilon(1e-1);
    let model = Ktcca::fit(&kernels, &options).expect("KTCCA fit");
    println!(
        "leading canonical correlations: {:?}",
        &model.correlations()[..3.min(model.correlations().len())]
    );

    let embedding = model.transform(&kernels).expect("transform");
    println!("kernel embedding shape: {:?}", embedding.shape());

    // 6 labeled images per concept, kNN on the embedding.
    let all: Vec<usize> = (0..data.len()).collect();
    let split = labeled_subset_per_class(&all, data.labels(), data.num_classes(), 6, 7);
    let train = embedding.select_rows(&split.first);
    let train_labels: Vec<usize> = split.first.iter().map(|&i| data.labels()[i]).collect();
    let test = embedding.select_rows(&split.second);
    let test_labels: Vec<usize> = split.second.iter().map(|&i| data.labels()[i]).collect();
    let knn = KnnClassifier::fit(&train, &train_labels, data.num_classes(), 3);
    let acc = accuracy(&knn.predict(&test), &test_labels);
    println!(
        "KTCCA + 3-NN accuracy: {:.2}% (chance = {:.2}%)",
        acc * 100.0,
        100.0 / data.num_classes() as f64
    );
}
