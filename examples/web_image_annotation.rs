//! Web image annotation scenario from the paper's §5.1.3: ten highly confusable mammal
//! concepts, three visual views (SIFT bag-of-words, color correlogram, wavelet texture),
//! a handful of labeled images per concept, and a kNN classifier on the reduced
//! representation.
//!
//! Run with: `cargo run --release --example web_image_annotation`

use datasets::{labeled_subset_per_class, validation_split};
use multiview_tcca::prelude::*;

fn main() {
    let data = nuswide_dataset(&NusWideConfig {
        n_instances: 600,
        seed: 41,
        difficulty: 1.35,
    });
    println!(
        "dataset: {} images, views {:?}, {} concepts",
        data.len(),
        data.dimensions(),
        data.num_classes()
    );

    // Shrink the views so the covariance tensor stays small for a quick demo.
    let views: Vec<Matrix> = data
        .views()
        .iter()
        .map(|v| v.select_rows(&(0..v.rows().min(120)).collect::<Vec<_>>()))
        .collect();

    // The paper's protocol: 6 labeled images per concept, 20% of the rest for validation.
    let all: Vec<usize> = (0..data.len()).collect();
    let labeled = labeled_subset_per_class(&all, data.labels(), data.num_classes(), 6, 3);
    let val_rest = validation_split(&labeled.second, 0.2, 99);

    let rank = 10;
    let tcca = Tcca::fit(&views, &TccaOptions::with_rank(rank)).expect("TCCA fit");
    let embedding = tcca.transform(&views).expect("transform");

    let train = embedding.select_rows(&labeled.first);
    let train_labels: Vec<usize> = labeled.first.iter().map(|&i| data.labels()[i]).collect();
    let val = embedding.select_rows(&val_rest.first);
    let val_labels: Vec<usize> = val_rest.first.iter().map(|&i| data.labels()[i]).collect();
    let test = embedding.select_rows(&val_rest.second);
    let test_labels: Vec<usize> = val_rest.second.iter().map(|&i| data.labels()[i]).collect();

    // Select k on the validation split, evaluate on the test split.
    let mut best = (1usize, 0.0f64);
    for k in 1..=10 {
        let model = KnnClassifier::fit(&train, &train_labels, data.num_classes(), k);
        let acc = accuracy(&model.predict(&val), &val_labels);
        if acc > best.1 {
            best = (k, acc);
        }
    }
    let model = KnnClassifier::fit(&train, &train_labels, data.num_classes(), best.0);
    let acc = accuracy(&model.predict(&test), &test_labels);
    println!(
        "TCCA (r = {rank}) + {}-NN annotation accuracy: {:.2}% (chance = {:.2}%)",
        best.0,
        acc * 100.0,
        100.0 / data.num_classes() as f64
    );
}
