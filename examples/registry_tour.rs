//! Tour of the unified estimator API: every registered method fitted on one dataset
//! through one registry, one `FitSpec` and one error type.
//!
//! Run with: `cargo run --release --example registry_tour`

use multiview_tcca::prelude::*;

fn main() {
    // A small SecStr-like dataset, views trimmed so the order-3 covariance tensor
    // stays tiny for a demo run.
    let data = secstr_dataset(&SecStrConfig {
        n_instances: 120,
        seed: 11,
        difficulty: 0.8,
    });
    let views: Vec<Matrix> = data
        .views()
        .iter()
        .map(|v| v.select_rows(&(0..30).collect::<Vec<_>>()))
        .collect();
    let kernels: Vec<Matrix> = views
        .iter()
        .map(|v| center_kernel(&gram_matrix(v, Kernel::ExpEuclidean)))
        .collect();

    let registry = EstimatorRegistry::with_builtin();
    let spec = FitSpec::with_rank(3)
        .epsilon(1e-2)
        .seed(7)
        .per_view_dim(20)
        .max_iterations(15);

    println!(
        "{:<12} {:>5} {:>11} {:>10}  combine",
        "method", "dim", "candidates", "MB"
    );
    for kind in [InputKind::Views, InputKind::Kernels] {
        let inputs = match kind {
            InputKind::Views => &views,
            InputKind::Kernels => &kernels,
        };
        for name in registry.names_of(kind) {
            let model = registry.fit(name, inputs, &spec).expect("fit");
            let outputs = model.outputs(inputs).expect("outputs");
            println!(
                "{:<12} {:>5} {:>11} {:>10.3}  {:?}",
                model.name(),
                model.dim(),
                outputs.len(),
                model.memory().total_megabytes(),
                model.combine(),
            );
        }
    }

    // One error type everywhere: unknown names and shape mismatches both surface as
    // `CoreError`, so callers handle the whole method table uniformly.
    match registry.get("DTCCA") {
        Err(CoreError::UnknownEstimator { name, known }) => {
            println!(
                "\nunknown method {name:?} — registry knows: {}",
                known.join(", ")
            );
        }
        _ => unreachable!("DTCCA is not registered yet"),
    }
    let err = registry
        .fit("TCCA", &views[..1], &spec)
        .err()
        .expect("one view must be rejected");
    println!("one-view fit rejected: {err}");
}
