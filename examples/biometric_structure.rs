//! Biometric (secondary-structure) prediction scenario from the paper's §5.1.1:
//! three contextual views of a protein sequence window, 100 labeled instances, and a
//! growing pool of unlabeled data used transductively to learn the common subspace.
//!
//! The example sweeps the unlabeled-pool size and shows how the CCA-family methods —
//! and TCCA in particular — improve as more unlabeled data becomes available (the
//! paper's Table 1 / observation 3).
//!
//! Run with: `cargo run --release --example biometric_structure`

use multiview_tcca::prelude::*;

fn evaluate(embedding: &Matrix, labels: &[usize], n_classes: usize, n_labeled: usize) -> f64 {
    let labeled: Vec<usize> = (0..n_labeled).collect();
    let rest: Vec<usize> = (n_labeled..labels.len()).collect();
    let train_labels: Vec<usize> = labeled.iter().map(|&i| labels[i]).collect();
    let test_labels: Vec<usize> = rest.iter().map(|&i| labels[i]).collect();
    let rls = RlsClassifier::fit(
        &embedding.select_rows(&labeled),
        &train_labels,
        n_classes,
        1e-2,
    );
    accuracy(&rls.predict(&embedding.select_rows(&rest)), &test_labels)
}

fn main() {
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "unlabeled", "CCA (0,1)", "CCA-LS", "TCCA"
    );
    for &n in &[400usize, 1000, 2000] {
        let data = secstr_dataset(&SecStrConfig {
            n_instances: n,
            seed: 17,
            difficulty: 0.8,
        });
        let rank = 10;

        // Two-view CCA on the first pair of context windows.
        let cca = Cca::fit(data.view(0), data.view(1), rank, 1e-2).expect("CCA fit");
        let z_cca = cca
            .transform(data.view(0), data.view(1))
            .expect("CCA transform");

        // CCA-LS across all three views.
        let ccals = CcaLs::fit(data.views(), rank, 1e-2).expect("CCA-LS fit");
        let z_ccals = ccals.transform(data.views()).expect("CCA-LS transform");

        // TCCA across all three views.
        let tcca = Tcca::fit(data.views(), &TccaOptions::with_rank(rank)).expect("TCCA fit");
        let z_tcca = tcca.transform(data.views()).expect("TCCA transform");

        println!(
            "{:<12} {:>11.2}% {:>11.2}% {:>11.2}%",
            n,
            100.0 * evaluate(&z_cca, data.labels(), data.num_classes(), 100),
            100.0 * evaluate(&z_ccals, data.labels(), data.num_classes(), 100),
            100.0 * evaluate(&z_tcca, data.labels(), data.num_classes(), 100),
        );
    }
    println!("\nMore unlabeled data sharpens the estimated common subspace; the effect is");
    println!("strongest for TCCA because the order-3 covariance tensor has more parameters");
    println!("to estimate than the pairwise covariances (paper §5.1.2).");
}
