//! Quickstart: fit TCCA on a synthetic three-view dataset, inspect the canonical
//! correlations and use the embedding for classification.
//!
//! Run with: `cargo run --release --example quickstart`

use multiview_tcca::prelude::*;

fn main() {
    // 1. A SecStr-like dataset: three 105-dimensional binary views, two classes.
    let data = secstr_dataset(&SecStrConfig {
        n_instances: 600,
        seed: 7,
        difficulty: 0.8,
    });
    println!(
        "dataset: {} instances, views of dimensions {:?}, {} classes",
        data.len(),
        data.dimensions(),
        data.num_classes()
    );

    // 2. Fit TCCA: whiten each view, build the covariance tensor, decompose it with ALS.
    let options = TccaOptions::with_rank(10).epsilon(1e-2);
    let model = Tcca::fit(data.views(), &options).expect("TCCA fit");
    println!(
        "leading canonical correlations: {:?}",
        &model.correlations()[..5.min(model.correlations().len())]
    );

    // 3. Project every instance into the shared subspace (m views × rank dims).
    let embedding = model.transform(data.views()).expect("transform");
    println!("embedding shape: {:?}", embedding.shape());

    // 4. Train a regularized least squares classifier on 100 labeled instances and
    //    evaluate transductively on the rest (the paper's protocol).
    let labeled: Vec<usize> = (0..100).collect();
    let rest: Vec<usize> = (100..data.len()).collect();
    let train = embedding.select_rows(&labeled);
    let train_labels: Vec<usize> = labeled.iter().map(|&i| data.labels()[i]).collect();
    let rls = RlsClassifier::fit(&train, &train_labels, data.num_classes(), 1e-2);
    let test = embedding.select_rows(&rest);
    let test_labels: Vec<usize> = rest.iter().map(|&i| data.labels()[i]).collect();
    let acc = accuracy(&rls.predict(&test), &test_labels);
    println!("TCCA + RLS transductive accuracy: {:.2}%", acc * 100.0);

    // 5. Compare against the best single view.
    let mut best_single = 0.0f64;
    for p in 0..data.num_views() {
        let features = data.view(p).transpose();
        let rls = RlsClassifier::fit(
            &features.select_rows(&labeled),
            &train_labels,
            data.num_classes(),
            1e-2,
        );
        let acc = accuracy(&rls.predict(&features.select_rows(&rest)), &test_labels);
        best_single = best_single.max(acc);
    }
    println!(
        "best single view + RLS accuracy:  {:.2}%",
        best_single * 100.0
    );
}
