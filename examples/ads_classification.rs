//! Internet advertisement classification scenario from the paper's §5.1.2: three sparse
//! binary term views of a hyperlinked image, only 100 labeled instances, and the
//! over-fitting trap of naive feature concatenation.
//!
//! Run with: `cargo run --release --example ads_classification`

use baselines::feature::concatenate_views;
use multiview_tcca::prelude::*;

fn main() {
    // A scaled-down Ads-like dataset (the full 588/495/472 views make the covariance
    // tensor ~1 GB; we keep the structure but trim each view — see EXPERIMENTS.md).
    let data = ads_dataset(&AdsConfig {
        n_instances: 800,
        seed: 29,
        difficulty: 0.55,
    });
    let views: Vec<Matrix> = data
        .views()
        .iter()
        .map(|v| v.select_rows(&(0..v.rows().min(140)).collect::<Vec<_>>()))
        .collect();
    println!(
        "dataset: {} instances, trimmed views {:?}",
        data.len(),
        views.iter().map(|v| v.rows()).collect::<Vec<_>>()
    );

    let labeled: Vec<usize> = (0..100).collect();
    let rest: Vec<usize> = (100..data.len()).collect();
    let train_labels: Vec<usize> = labeled.iter().map(|&i| data.labels()[i]).collect();
    let test_labels: Vec<usize> = rest.iter().map(|&i| data.labels()[i]).collect();

    let evaluate = |embedding: &Matrix| -> f64 {
        let rls = RlsClassifier::fit(
            &embedding.select_rows(&labeled),
            &train_labels,
            data.num_classes(),
            1e-2,
        );
        accuracy(&rls.predict(&embedding.select_rows(&rest)), &test_labels)
    };

    // CAT: concatenate all (normalized) features — high-dimensional, prone to over-fit
    // with only 100 labels.
    let cat = concatenate_views(&views);
    println!("CAT  ({} dims): {:.2}%", cat.cols(), 100.0 * evaluate(&cat));

    // Two-view CCA on the best pair (here simply the first pair for the demo).
    let cca = Cca::fit(&views[0], &views[1], 10, 1e-2).expect("CCA fit");
    let z_cca = cca.transform(&views[0], &views[1]).expect("CCA transform");
    println!(
        "CCA  ({} dims): {:.2}%",
        z_cca.cols(),
        100.0 * evaluate(&z_cca)
    );

    // TCCA across all three views.
    let tcca = Tcca::fit(&views, &TccaOptions::with_rank(10)).expect("TCCA fit");
    let z_tcca = tcca.transform(&views).expect("TCCA transform");
    println!(
        "TCCA ({} dims): {:.2}%",
        z_tcca.cols(),
        100.0 * evaluate(&z_tcca)
    );

    println!("\nThe low-dimensional common-subspace representations avoid the CAT");
    println!("over-fitting regime the paper describes for the Ads dataset (Fig. 4).");
}
