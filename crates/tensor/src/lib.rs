//! Dense tensor algebra and low-rank tensor decompositions.
//!
//! Tensor CCA (Luo et al., ICDE 2016) reduces multi-view canonical correlation
//! maximization to the best rank-1 (and, for an `r`-dimensional subspace, rank-`r` CP)
//! approximation of the whitened covariance tensor
//! `M = C₁₂…ₘ ×₁ C̃₁₁^{-1/2} ×₂ … ×ₘ C̃ₘₘ^{-1/2}` (paper Eq. 4.9–4.10).
//!
//! This crate provides the tensor substrate needed for that reduction:
//!
//! * [`DenseTensor`] — an arbitrary-order dense tensor with mode-n matricization,
//!   mode-n (tensor × matrix) products, rank-1 accumulation, Frobenius geometry and
//!   the fused [`DenseTensor::mttkrp`] kernel (matricized tensor times Khatri–Rao,
//!   computed by streaming the flat storage once — no unfolding, no materialized
//!   Khatri–Rao matrix) that every decomposition's inner loop runs on,
//! * [`khatri_rao`] / [`khatri_rao_list`] — the column-wise Kronecker products; the
//!   reference definition of what `mttkrp` fuses away,
//! * [`CpAls`] — the alternating least squares CP decomposition (Kroonenberg & De Leeuw
//!   1980; Comon et al. 2009), the optimizer the paper adopts,
//! * [`Hopm`] — the higher-order power method of De Lathauwer et al. (2000b) for the
//!   best rank-1 approximation,
//! * [`TensorPowerMethod`] — greedy rank-1 deflation (Allen 2012), the third
//!   alternative the paper mentions.
//!
//! All decompositions return a [`CpDecomposition`] (weights + per-mode factor matrices)
//! so downstream code can treat them interchangeably.

#![warn(missing_docs)]
#![warn(clippy::all)]
// Multi-index tensor kernels use explicit index loops over several arrays at once;
// iterator rewrites of these obscure the math.
#![allow(clippy::needless_range_loop)]

mod cp;
mod dense;
mod error;
mod hopm;
mod kr;
mod power;

pub use cp::{CpAls, CpOptions};
pub use dense::DenseTensor;
pub use error::TensorError;
pub use hopm::Hopm;
pub use kr::{khatri_rao, khatri_rao_list};
pub use power::TensorPowerMethod;

use linalg::Matrix;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// A CP (CANDECOMP/PARAFAC) decomposition: `T ≈ Σ_k λ_k · a₁⁽ᵏ⁾ ∘ a₂⁽ᵏ⁾ ∘ … ∘ a_m⁽ᵏ⁾`.
///
/// `factors[p]` is an `I_p × r` matrix whose `k`-th column is the mode-`p` vector of the
/// `k`-th rank-1 component; `weights[k]` is the component's scale `λ_k`. Factor columns
/// are unit-norm.
#[derive(Debug, Clone)]
pub struct CpDecomposition {
    /// Component scales `λ_k`, one per rank-1 term.
    pub weights: Vec<f64>,
    /// Per-mode factor matrices (`I_p × r`, unit-norm columns).
    pub factors: Vec<Matrix>,
}

impl CpDecomposition {
    /// The decomposition rank (number of rank-1 components).
    pub fn rank(&self) -> usize {
        self.weights.len()
    }

    /// The tensor order (number of modes).
    pub fn order(&self) -> usize {
        self.factors.len()
    }

    /// Reconstruct the dense tensor `Σ_k λ_k · a₁⁽ᵏ⁾ ∘ … ∘ a_m⁽ᵏ⁾`.
    pub fn reconstruct(&self) -> DenseTensor {
        let shape: Vec<usize> = self.factors.iter().map(|f| f.rows()).collect();
        let mut out = DenseTensor::zeros(&shape);
        for k in 0..self.rank() {
            let vectors: Vec<Vec<f64>> = self.factors.iter().map(|f| f.column(k)).collect();
            let refs: Vec<&[f64]> = vectors.iter().map(|v| v.as_slice()).collect();
            out.add_rank_one(self.weights[k], &refs);
        }
        out
    }

    /// Relative Frobenius reconstruction error `‖T − T̂‖ / ‖T‖`.
    pub fn relative_error(&self, tensor: &DenseTensor) -> f64 {
        let norm = tensor.frobenius_norm();
        if norm == 0.0 {
            return 0.0;
        }
        let rec = self.reconstruct();
        tensor.sub(&rec).expect("shapes agree").frobenius_norm() / norm
    }

    /// Keep only the leading `r` components (the solvers store components sorted by
    /// decreasing `|λ|`).
    pub fn truncate(&self, r: usize) -> CpDecomposition {
        let r = r.min(self.rank());
        CpDecomposition {
            weights: self.weights[..r].to_vec(),
            factors: self.factors.iter().map(|f| f.leading_columns(r)).collect(),
        }
    }
}

/// Trait implemented by every rank-`r` tensor decomposition algorithm in this crate.
///
/// TCCA is agnostic to which solver produces the factors; the paper uses ALS but notes
/// HOPM and the tensor power method as alternatives, and the ablation benchmarks compare
/// all three.
pub trait RankRDecomposition {
    /// Compute a rank-`rank` CP-style decomposition of `tensor`.
    fn decompose(&self, tensor: &DenseTensor, rank: usize) -> Result<CpDecomposition>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cp_decomposition_reconstruct_rank_one() {
        let u = Matrix::column_vector(&[1.0, 0.0]);
        let v = Matrix::column_vector(&[0.0, 1.0, 0.0]);
        let w = Matrix::column_vector(&[1.0, 1.0]);
        let cp = CpDecomposition {
            weights: vec![2.0],
            factors: vec![u, v, w],
        };
        assert_eq!(cp.rank(), 1);
        assert_eq!(cp.order(), 3);
        let t = cp.reconstruct();
        assert_eq!(t.shape(), &[2, 3, 2]);
        assert_eq!(t.get(&[0, 1, 0]), 2.0);
        assert_eq!(t.get(&[0, 1, 1]), 2.0);
        assert_eq!(t.get(&[1, 1, 0]), 0.0);
        assert_eq!(t.get(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn truncate_keeps_leading_components() {
        let cp = CpDecomposition {
            weights: vec![3.0, 1.0],
            factors: vec![
                Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap(),
                Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap(),
            ],
        };
        let t = cp.truncate(1);
        assert_eq!(t.rank(), 1);
        assert_eq!(t.weights, vec![3.0]);
        // Truncating beyond the rank is a no-op.
        assert_eq!(cp.truncate(10).rank(), 2);
    }

    #[test]
    fn relative_error_zero_for_exact() {
        let cp = CpDecomposition {
            weights: vec![1.5],
            factors: vec![
                Matrix::column_vector(&[1.0, 2.0]),
                Matrix::column_vector(&[0.5, -1.0]),
            ],
        };
        let t = cp.reconstruct();
        assert!(cp.relative_error(&t) < 1e-12);
    }
}
