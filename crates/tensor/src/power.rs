//! Greedy tensor power method with deflation (Allen, 2012).
//!
//! The paper cites the tensor power method as the third optimization alternative for
//! the rank-1 subproblem. The iteration is the same fixed point as HOPM but starts from
//! random unit vectors with several restarts, keeping the best local optimum; rank-r
//! decompositions are produced by deflation, exactly like sparse higher-order PCA does.
//! The paper's §5.1.1 discussion (observation 5) contrasts this greedy behaviour with
//! ALS, which fits all factors simultaneously; the ablation bench compares the two.

use crate::{CpDecomposition, DenseTensor, RankRDecomposition, Result, TensorError};
use linalg::{normalize, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Greedy rank-1 power iterations with random restarts and deflation.
#[derive(Debug, Clone)]
pub struct TensorPowerMethod {
    /// Maximum number of power iterations per restart.
    pub max_iterations: usize,
    /// Convergence tolerance on the change of λ.
    pub tolerance: f64,
    /// Number of random restarts per extracted component; the best λ wins.
    pub restarts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TensorPowerMethod {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            tolerance: 1e-10,
            restarts: 5,
            seed: 11,
        }
    }
}

impl TensorPowerMethod {
    /// Create a solver with a specific seed (other options default).
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    fn power_iteration(
        &self,
        tensor: &DenseTensor,
        rng: &mut StdRng,
    ) -> Result<(f64, Vec<Vec<f64>>)> {
        let order = tensor.order();
        let shape = tensor.shape();
        let mut vectors: Vec<Vec<f64>> = shape
            .iter()
            .map(|&d| {
                let mut v: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
                if normalize(&mut v) <= 1e-300 && !v.is_empty() {
                    v[0] = 1.0;
                }
                v
            })
            .collect();

        let mut lambda = 0.0;
        for _ in 0..self.max_iterations {
            let mut new_lambda = lambda;
            for mode in 0..order {
                let refs: Vec<&[f64]> = vectors.iter().map(|v| v.as_slice()).collect();
                let mut fiber = tensor.contract_all_but(mode, &refs)?;
                let norm = normalize(&mut fiber);
                if norm <= 1e-300 {
                    return Ok((0.0, vectors));
                }
                vectors[mode] = fiber;
                new_lambda = norm;
            }
            if (new_lambda - lambda).abs() <= self.tolerance * new_lambda.abs().max(1.0) {
                break;
            }
            lambda = new_lambda;
        }
        let refs: Vec<&[f64]> = vectors.iter().map(|v| v.as_slice()).collect();
        let rho = tensor.multilinear_form(&refs)?;
        Ok((rho, vectors))
    }

    /// Extract the best rank-1 component over all restarts.
    pub fn rank_one(&self, tensor: &DenseTensor) -> Result<(f64, Vec<Vec<f64>>)> {
        if tensor.order() < 2 {
            return Err(TensorError::InvalidArgument(format!(
                "tensor power method needs an order >= 2 tensor, got {}",
                tensor.order()
            )));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best: Option<(f64, Vec<Vec<f64>>)> = None;
        for _ in 0..self.restarts.max(1) {
            let (lambda, vectors) = self.power_iteration(tensor, &mut rng)?;
            let replace = match &best {
                None => true,
                Some((best_lambda, _)) => lambda.abs() > best_lambda.abs(),
            };
            if replace {
                best = Some((lambda, vectors));
            }
        }
        Ok(best.expect("at least one restart"))
    }
}

impl RankRDecomposition for TensorPowerMethod {
    fn decompose(&self, tensor: &DenseTensor, rank: usize) -> Result<CpDecomposition> {
        if rank == 0 {
            return Err(TensorError::InvalidArgument(
                "rank must be at least 1".into(),
            ));
        }
        let order = tensor.order();
        let shape = tensor.shape().to_vec();
        let mut residual = tensor.clone();
        let mut weights = Vec::with_capacity(rank);
        let mut columns: Vec<Vec<Vec<f64>>> = vec![Vec::with_capacity(rank); order];
        for _ in 0..rank {
            let (lambda, vectors) = self.rank_one(&residual)?;
            let refs: Vec<&[f64]> = vectors.iter().map(|v| v.as_slice()).collect();
            residual.add_rank_one(-lambda, &refs);
            weights.push(lambda);
            for (mode, v) in vectors.into_iter().enumerate() {
                columns[mode].push(v);
            }
        }
        let factors: Vec<Matrix> = columns
            .into_iter()
            .enumerate()
            .map(|(mode, cols)| {
                let mut f = Matrix::zeros(shape[mode], rank);
                for (k, col) in cols.iter().enumerate() {
                    f.set_column(k, col);
                }
                f
            })
            .collect();
        Ok(CpDecomposition { weights, factors })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_dominant_component() {
        let a = [1.0, 0.0, 0.0];
        let b = [0.0, 1.0];
        let mut t = DenseTensor::zeros(&[3, 2, 2]);
        t.add_rank_one(7.0, &[&a, &b, &b]);
        t.add_rank_one(1.0, &[&[0.0, 1.0, 0.0], &[1.0, 0.0], &[1.0, 0.0]]);
        let (lambda, vectors) = TensorPowerMethod::default().rank_one(&t).unwrap();
        assert!((lambda - 7.0).abs() < 1e-6);
        assert!(vectors[0][0].abs() > 0.99);
    }

    #[test]
    fn deflation_reduces_residual() {
        let a1 = [1.0, 0.0];
        let a2 = [0.0, 1.0];
        let mut t = DenseTensor::zeros(&[2, 2, 2]);
        t.add_rank_one(4.0, &[&a1, &a1, &a1]);
        t.add_rank_one(2.0, &[&a2, &a2, &a2]);
        let cp = TensorPowerMethod::default().decompose(&t, 2).unwrap();
        assert!(cp.relative_error(&t) < 1e-6);
        assert!((cp.weights[0] - 4.0).abs() < 1e-6);
        assert!((cp.weights[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_bad_input() {
        let solver = TensorPowerMethod::default();
        assert!(solver.rank_one(&DenseTensor::zeros(&[5])).is_err());
        assert!(solver.decompose(&DenseTensor::zeros(&[2, 2]), 0).is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut t = DenseTensor::zeros(&[3, 3, 3]);
        t.add_rank_one(2.0, &[&[1.0, 0.5, 0.0], &[0.0, 1.0, 0.0], &[0.3, 0.3, 1.0]]);
        let s1 = TensorPowerMethod::with_seed(42).rank_one(&t).unwrap();
        let s2 = TensorPowerMethod::with_seed(42).rank_one(&t).unwrap();
        assert_eq!(s1.0, s2.0);
        assert_eq!(s1.1, s2.1);
    }
}
