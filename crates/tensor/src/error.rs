//! Error type for tensor operations and decompositions.

use std::fmt;

/// Errors reported by tensor operations and decompositions.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Shapes of two tensors (or a tensor and a matrix) did not agree.
    ShapeMismatch {
        /// Description of the failing operation.
        op: &'static str,
        /// Details of the mismatch.
        detail: String,
    },
    /// A mode index was out of range for the tensor order.
    InvalidMode {
        /// The requested mode.
        mode: usize,
        /// The tensor order.
        order: usize,
    },
    /// An argument was outside its valid range (e.g. rank 0).
    InvalidArgument(String),
    /// An underlying linear-algebra routine failed.
    Linalg(linalg::LinalgError),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, detail } => {
                write!(f, "shape mismatch in {op}: {detail}")
            }
            TensorError::InvalidMode { mode, order } => {
                write!(f, "mode {mode} is invalid for an order-{order} tensor")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            TensorError::Linalg(err) => write!(f, "linear algebra failure: {err}"),
        }
    }
}

impl std::error::Error for TensorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TensorError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<linalg::LinalgError> for TensorError {
    fn from(err: linalg::LinalgError) -> Self {
        TensorError::Linalg(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = TensorError::InvalidMode { mode: 5, order: 3 };
        assert!(e.to_string().contains("mode 5"));
        let e = TensorError::InvalidArgument("rank must be positive".into());
        assert!(e.to_string().contains("rank"));
        let e = TensorError::ShapeMismatch {
            op: "mode_product",
            detail: "expected 4 got 3".into(),
        };
        assert!(e.to_string().contains("mode_product"));
    }

    #[test]
    fn from_linalg_error_preserves_source() {
        use std::error::Error;
        let inner = linalg::LinalgError::NotSquare { rows: 2, cols: 3 };
        let e: TensorError = inner.into();
        assert!(e.source().is_some());
    }
}
