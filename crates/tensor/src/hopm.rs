//! Higher-order power method (HOPM) for the best rank-1 approximation.
//!
//! De Lathauwer, De Moor & Vandewalle (2000b) show that the best rank-1 approximation
//! `T ≈ λ · u₁ ∘ … ∘ u_m` (the problem TCCA's Eq. 4.10 reduces to for a one-dimensional
//! subspace) can be computed by a fixed-point iteration that repeatedly contracts the
//! tensor against all but one of the current vectors. The paper cites HOPM as an
//! alternative to ALS; for rank r > 1 this solver extracts components greedily by
//! re-running HOPM on deflated residuals.

use crate::{CpDecomposition, DenseTensor, RankRDecomposition, Result, TensorError};
use linalg::{normalize, Matrix, SymmetricEigen};

/// Best rank-1 approximation by the higher-order power method, extended to rank-r by
/// greedy deflation.
#[derive(Debug, Clone)]
pub struct Hopm {
    /// Maximum number of power iterations per component.
    pub max_iterations: usize,
    /// Convergence tolerance on the change of the singular value λ.
    pub tolerance: f64,
}

impl Default for Hopm {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            tolerance: 1e-10,
        }
    }
}

impl Hopm {
    /// Create a solver with an explicit iteration budget and tolerance.
    pub fn new(max_iterations: usize, tolerance: f64) -> Self {
        Self {
            max_iterations,
            tolerance,
        }
    }

    /// Compute the best rank-1 approximation `λ, (u₁, …, u_m)` of `tensor`.
    ///
    /// Vectors are initialized from the dominant left singular vector of each mode-n
    /// unfolding (the initialization recommended by De Lathauwer et al.).
    pub fn rank_one(&self, tensor: &DenseTensor) -> Result<(f64, Vec<Vec<f64>>)> {
        let order = tensor.order();
        if order < 2 {
            return Err(TensorError::InvalidArgument(format!(
                "HOPM needs an order >= 2 tensor, got order {order}"
            )));
        }
        // Initialization: dominant eigenvector of T_(n) T_(n)ᵀ for each mode. The Gram
        // is streamed off the flat storage (no unfolding is materialized), and the
        // power iterations below run on the fused contract_all_but kernel.
        let mut vectors: Vec<Vec<f64>> = Vec::with_capacity(order);
        for mode in 0..order {
            let gram = tensor.mode_gram(mode)?;
            let eig = SymmetricEigen::new(&gram)?;
            let mut v = eig.eigenvectors.column(0);
            if normalize(&mut v) <= 1e-300 {
                // Degenerate (zero) mode: fall back to the first basis vector.
                v = vec![0.0; tensor.shape()[mode]];
                if !v.is_empty() {
                    v[0] = 1.0;
                }
            }
            vectors.push(v);
        }

        let mut lambda = 0.0;
        for _ in 0..self.max_iterations {
            let mut new_lambda = lambda;
            for mode in 0..order {
                let refs: Vec<&[f64]> = vectors.iter().map(|v| v.as_slice()).collect();
                let mut fiber = tensor.contract_all_but(mode, &refs)?;
                let norm = normalize(&mut fiber);
                if norm <= 1e-300 {
                    // The tensor is (numerically) zero along this direction.
                    return Ok((0.0, vectors));
                }
                vectors[mode] = fiber;
                new_lambda = norm;
            }
            if (new_lambda - lambda).abs() <= self.tolerance * new_lambda.abs().max(1.0) {
                break;
            }
            lambda = new_lambda;
        }
        // λ is the multilinear form at the converged vectors (can be negative, in which
        // case the sign is carried by the weight).
        let refs: Vec<&[f64]> = vectors.iter().map(|v| v.as_slice()).collect();
        let rho = tensor.multilinear_form(&refs)?;
        Ok((rho, vectors))
    }
}

impl RankRDecomposition for Hopm {
    fn decompose(&self, tensor: &DenseTensor, rank: usize) -> Result<CpDecomposition> {
        if rank == 0 {
            return Err(TensorError::InvalidArgument(
                "rank must be at least 1".into(),
            ));
        }
        let order = tensor.order();
        let shape = tensor.shape().to_vec();
        let mut residual = tensor.clone();
        let mut weights = Vec::with_capacity(rank);
        let mut columns: Vec<Vec<Vec<f64>>> = vec![Vec::with_capacity(rank); order];

        for _ in 0..rank {
            let (lambda, vectors) = self.rank_one(&residual)?;
            // Deflate: residual -= λ · u₁ ∘ … ∘ u_m.
            let refs: Vec<&[f64]> = vectors.iter().map(|v| v.as_slice()).collect();
            residual.add_rank_one(-lambda, &refs);
            weights.push(lambda);
            for (mode, v) in vectors.into_iter().enumerate() {
                columns[mode].push(v);
            }
        }

        let factors: Vec<Matrix> = columns
            .into_iter()
            .enumerate()
            .map(|(mode, cols)| {
                let mut f = Matrix::zeros(shape[mode], rank);
                for (k, col) in cols.iter().enumerate() {
                    f.set_column(k, col);
                }
                f
            })
            .collect();

        Ok(CpDecomposition { weights, factors })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_one_recovers_planted_component() {
        let a = [0.6, 0.8];
        let b = [1.0, 0.0, 0.0];
        let c = [0.0, 1.0];
        let mut t = DenseTensor::zeros(&[2, 3, 2]);
        t.add_rank_one(3.0, &[&a, &b, &c]);
        let (lambda, vectors) = Hopm::default().rank_one(&t).unwrap();
        assert!((lambda - 3.0).abs() < 1e-8);
        // Vectors match up to sign.
        assert!((vectors[0][0].abs() - 0.6).abs() < 1e-8);
        assert!((vectors[0][1].abs() - 0.8).abs() < 1e-8);
        assert!((vectors[1][0].abs() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn rank_one_of_matrix_matches_top_singular_value() {
        // Diagonal matrix as an order-2 tensor: top singular value is 4.
        let t = DenseTensor::from_vec(&[2, 2], vec![4.0, 0.0, 0.0, 1.0]).unwrap();
        let (lambda, _) = Hopm::default().rank_one(&t).unwrap();
        assert!((lambda - 4.0).abs() < 1e-10);
    }

    #[test]
    fn deflation_extracts_orthogonal_components() {
        // Orthogonal rank-2 tensor: deflation recovers both weights.
        let a1 = [1.0, 0.0];
        let a2 = [0.0, 1.0];
        let b1 = [1.0, 0.0, 0.0];
        let b2 = [0.0, 1.0, 0.0];
        let mut t = DenseTensor::zeros(&[2, 3, 2]);
        t.add_rank_one(5.0, &[&a1, &b1, &a1]);
        t.add_rank_one(2.0, &[&a2, &b2, &a2]);
        let cp = Hopm::default().decompose(&t, 2).unwrap();
        assert!((cp.weights[0] - 5.0).abs() < 1e-6);
        assert!((cp.weights[1] - 2.0).abs() < 1e-6);
        assert!(cp.relative_error(&t) < 1e-6);
    }

    #[test]
    fn zero_tensor_gives_zero_lambda() {
        let t = DenseTensor::zeros(&[2, 2, 2]);
        let (lambda, _) = Hopm::default().rank_one(&t).unwrap();
        assert_eq!(lambda, 0.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Hopm::default().rank_one(&DenseTensor::zeros(&[3])).is_err());
        assert!(Hopm::default()
            .decompose(&DenseTensor::zeros(&[2, 2]), 0)
            .is_err());
    }
}
