//! Khatri–Rao (column-wise Kronecker) products.
//!
//! The ALS update for mode `n` solves
//! `A_n ← T₍ₙ₎ · KR(A_N, …, A_{n+1}, A_{n−1}, …, A_1) · V⁻¹` where `KR` is the
//! Khatri–Rao product taken in **descending** mode order so that its row ordering
//! matches the mode-`n` unfolding used by [`crate::DenseTensor::unfold`] (smallest mode
//! index varying fastest).
//!
//! The solvers themselves no longer materialize this product — the fused
//! [`crate::DenseTensor::mttkrp`] kernel computes `T₍ₙ₎ · KR(..)` directly from the
//! tensor's flat storage. These helpers remain as the reference definition the
//! property tests check the fused kernel against, and for callers that need the
//! explicit matrix.

use crate::{Result, TensorError};
use linalg::Matrix;

/// Khatri–Rao product of two matrices with the same number of columns.
///
/// The result has `a.rows() * b.rows()` rows; the row indexed by `(i_a, i_b)` is placed
/// at `i_a * b.rows() + i_b`, i.e. **`b`'s row index varies fastest**.
pub fn khatri_rao(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "khatri_rao",
            detail: format!("column counts differ: {} vs {}", a.cols(), b.cols()),
        });
    }
    let r = a.cols();
    let mut out = Matrix::zeros(a.rows() * b.rows(), r);
    for ia in 0..a.rows() {
        for ib in 0..b.rows() {
            let row = ia * b.rows() + ib;
            for k in 0..r {
                out[(row, k)] = a[(ia, k)] * b[(ib, k)];
            }
        }
    }
    Ok(out)
}

/// Khatri–Rao product of a list of matrices, left-associated:
/// `KR(M₁, M₂, …, M_L) = ((M₁ ⊙ M₂) ⊙ …) ⊙ M_L`.
///
/// With the pair convention above, the **last** matrix in the list has the
/// fastest-varying row index. To match the mode-`n` unfolding, pass the factor matrices
/// in *descending* mode order (`A_N, …, A_{n+1}, A_{n−1}, …, A_1`).
pub fn khatri_rao_list(matrices: &[&Matrix]) -> Result<Matrix> {
    match matrices.len() {
        0 => Err(TensorError::InvalidArgument(
            "khatri_rao_list needs at least one matrix".into(),
        )),
        1 => Ok(matrices[0].clone()),
        _ => {
            let mut acc = matrices[0].clone();
            for m in &matrices[1..] {
                acc = khatri_rao(&acc, m)?;
            }
            Ok(acc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseTensor;

    #[test]
    fn khatri_rao_small() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0], vec![9.0, 10.0]]).unwrap();
        let kr = khatri_rao(&a, &b).unwrap();
        assert_eq!(kr.shape(), (6, 2));
        // Row (ia=0, ib=0) -> 0
        assert_eq!(kr[(0, 0)], 5.0);
        assert_eq!(kr[(0, 1)], 12.0);
        // Row (ia=1, ib=2) -> 1*3+2 = 5
        assert_eq!(kr[(5, 0)], 27.0);
        assert_eq!(kr[(5, 1)], 40.0);
    }

    #[test]
    fn mismatched_columns_error() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(khatri_rao(&a, &b).is_err());
        assert!(khatri_rao_list(&[]).is_err());
    }

    #[test]
    fn single_matrix_list_is_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert_eq!(khatri_rao_list(&[&a]).unwrap(), a);
    }

    #[test]
    fn unfolding_identity_for_rank_one_tensor() {
        // For T = a ∘ b ∘ c the identity T₍ₙ₎ = A_n · KR(descending other factors)ᵀ
        // must hold exactly. This pins the ordering conventions together.
        let a = vec![1.0, -2.0];
        let b = vec![0.5, 1.0, 2.0];
        let c = vec![3.0, -1.0];
        let mut t = DenseTensor::zeros(&[2, 3, 2]);
        t.add_rank_one(1.0, &[&a, &b, &c]);

        let fa = Matrix::column_vector(&a);
        let fb = Matrix::column_vector(&b);
        let fc = Matrix::column_vector(&c);
        let factors = [&fa, &fb, &fc];

        for mode in 0..3 {
            // Descending order, skipping `mode`.
            let others: Vec<&Matrix> = (0..3)
                .rev()
                .filter(|&k| k != mode)
                .map(|k| factors[k])
                .collect();
            let kr = khatri_rao_list(&others).unwrap();
            let expected = factors[mode].matmul_t(&kr).unwrap();
            let unfolded = t.unfold(mode).unwrap();
            assert!(
                unfolded.sub(&expected).unwrap().max_abs() < 1e-12,
                "mode {mode}"
            );
        }
    }
}
