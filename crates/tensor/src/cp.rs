//! CP decomposition by alternating least squares (CP-ALS).
//!
//! This is the optimizer the paper adopts for TCCA (§4.3): the rank-`r` decomposition of
//! the whitened covariance tensor `M` is computed by cycling over the modes, each time
//! solving a linear least squares problem for one factor matrix while the others are
//! held fixed (Kroonenberg & De Leeuw 1980; Comon et al. 2009).
//!
//! A practical detail the paper leans on (§5.1.1, observation 5): ALS fits all `r`
//! components *simultaneously*, so the explained correlation tends to spread across the
//! factors rather than concentrating greedily in the first ones — which is why TCCA's
//! accuracy degrades less at large subspace dimensions than the greedy baselines.
//!
//! ## Kernel structure
//!
//! Each mode update needs the matricized-tensor-times-Khatri–Rao product
//! `T₍ₙ₎ · KR(..)`. Earlier revisions materialized the Khatri–Rao matrix
//! (`Π_{k≠n} I_k × r` — quadratic in the tensor dimensions) and cached one full
//! unfolding per mode; both are gone. The sweep now calls the fused
//! [`DenseTensor::mttkrp`] kernel, which streams the tensor's storage once per mode,
//! and the convergence check uses the standard Gram-based fit
//! `‖T − T̂‖² = ‖T‖² − 2⟨T, T̂⟩ + ‖T̂‖²`, where `⟨T, T̂⟩` is read off the last MTTKRP
//! and `‖T̂‖²` from the cached `r × r` factor Grams — no per-sweep reconstruction.

use crate::{CpDecomposition, DenseTensor, RankRDecomposition, Result, TensorError};
use linalg::{Matrix, SymmetricEigen};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options controlling the ALS iterations.
#[derive(Debug, Clone)]
pub struct CpOptions {
    /// Maximum number of ALS sweeps over all modes.
    pub max_iterations: usize,
    /// Convergence tolerance on the relative change of the fit.
    pub tolerance: f64,
    /// Seed for the random factor initialization.
    pub seed: u64,
    /// When true, initialize factors from the leading eigenvectors of the mode-n
    /// unfolding Gram matrices (HOSVD-style) instead of random entries.
    pub hosvd_init: bool,
}

impl Default for CpOptions {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            tolerance: 1e-8,
            seed: 7,
            hosvd_init: true,
        }
    }
}

/// CP decomposition via alternating least squares.
#[derive(Debug, Clone, Default)]
pub struct CpAls {
    /// Iteration options.
    pub options: CpOptions,
}

impl CpAls {
    /// Create a solver with the given options.
    pub fn new(options: CpOptions) -> Self {
        Self { options }
    }

    /// Create a solver with default options and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            options: CpOptions {
                seed,
                ..CpOptions::default()
            },
        }
    }

    /// Run CP-ALS and additionally report the number of iterations executed and the
    /// final relative reconstruction error.
    pub fn decompose_detailed(
        &self,
        tensor: &DenseTensor,
        rank: usize,
    ) -> Result<(CpDecomposition, usize, f64)> {
        self.check_arguments(tensor, rank)?;
        let shape = tensor.shape().to_vec();
        if let Some(zero) = Self::zero_tensor_shortcut(tensor, &shape, rank) {
            return Ok(zero);
        }
        let factors = self.initialize(tensor, &shape, rank)?;
        self.run_sweeps(tensor, rank, factors)
    }

    /// Run CP-ALS seeded from a previous decomposition's factors instead of a fresh
    /// HOSVD/random initialization — the streaming-refit warm start.
    ///
    /// `init` must have one matrix per tensor mode with matching row dimensions; its
    /// columns are truncated to `rank` or padded with seeded random columns when the
    /// requested rank differs from the previous model's. When the seed is close to
    /// the solution (a drifted covariance tensor), ALS converges in a few sweeps
    /// instead of a full cold run (Chen, Kolar & Tsay, arXiv 1906.05358).
    pub fn decompose_warm(
        &self,
        tensor: &DenseTensor,
        rank: usize,
        init: &[Matrix],
    ) -> Result<(CpDecomposition, usize, f64)> {
        self.check_arguments(tensor, rank)?;
        let shape = tensor.shape().to_vec();
        if init.len() != shape.len() {
            return Err(TensorError::InvalidArgument(format!(
                "warm start has {} factor matrices but the tensor has {} modes",
                init.len(),
                shape.len()
            )));
        }
        for (mode, (f, &dim)) in init.iter().zip(shape.iter()).enumerate() {
            if f.rows() != dim {
                return Err(TensorError::InvalidArgument(format!(
                    "warm-start factor for mode {mode} has {} rows, tensor dimension is {dim}",
                    f.rows()
                )));
            }
        }
        if let Some(zero) = Self::zero_tensor_shortcut(tensor, &shape, rank) {
            return Ok(zero);
        }
        let mut rng = StdRng::seed_from_u64(self.options.seed);
        let factors: Vec<Matrix> = init
            .iter()
            .map(|f| {
                if f.cols() == rank {
                    f.clone()
                } else {
                    // Rank changed since the previous fit: keep the leading columns,
                    // pad any extra ones with random entries.
                    let mut out = Matrix::zeros(f.rows(), rank);
                    for i in 0..f.rows() {
                        for j in 0..rank {
                            out[(i, j)] = if j < f.cols() {
                                f[(i, j)]
                            } else {
                                rng.gen_range(-1.0..1.0)
                            };
                        }
                    }
                    out
                }
            })
            .collect();
        self.run_sweeps(tensor, rank, factors)
    }

    fn check_arguments(&self, tensor: &DenseTensor, rank: usize) -> Result<()> {
        if rank == 0 {
            return Err(TensorError::InvalidArgument(
                "CP rank must be at least 1".into(),
            ));
        }
        let order = tensor.order();
        if order < 2 {
            return Err(TensorError::InvalidArgument(format!(
                "CP decomposition needs an order >= 2 tensor, got order {order}"
            )));
        }
        Ok(())
    }

    fn zero_tensor_shortcut(
        tensor: &DenseTensor,
        shape: &[usize],
        rank: usize,
    ) -> Option<(CpDecomposition, usize, f64)> {
        if tensor.frobenius_norm() != 0.0 {
            return None;
        }
        // Zero tensor: return zero factors with zero weights.
        let factors = shape.iter().map(|&d| Matrix::zeros(d, rank)).collect();
        Some((
            CpDecomposition {
                weights: vec![0.0; rank],
                factors,
            },
            0,
            0.0,
        ))
    }

    fn run_sweeps(
        &self,
        tensor: &DenseTensor,
        rank: usize,
        mut factors: Vec<Matrix>,
    ) -> Result<(CpDecomposition, usize, f64)> {
        let order = tensor.order();
        let norm = tensor.frobenius_norm();
        // Cached r × r Grams A_kᵀ A_k, refreshed whenever a factor is updated.
        let mut grams: Vec<Matrix> = factors.iter().map(|f| f.gram_t()).collect();
        let mut weights = vec![1.0; rank];
        let norm_sq = norm * norm;
        let mut previous_fit = f64::INFINITY;
        let mut iterations = 0;

        for iter in 0..self.options.max_iterations {
            iterations = iter + 1;
            // ⟨T, T̂⟩ via the final mode's MTTKRP and updated factor (valid because by
            // then every factor in the sweep is current).
            let mut inner = 0.0;
            for mode in 0..order {
                // V = hadamard product over other modes of (A_kᵀ A_k)  (r × r)
                let mut v = Matrix::filled(rank, rank, 1.0);
                for (k, g) in grams.iter().enumerate() {
                    if k == mode {
                        continue;
                    }
                    v = v.hadamard(g)?;
                }
                // Fused MTTKRP: T_(mode) · KR(other factors) with no materialization.
                let factor_refs: Vec<&Matrix> = factors.iter().collect();
                let mttkrp = tensor.mttkrp(mode, &factor_refs)?;
                // Unnormalized update: A_mode = MTTKRP * pinv(V)
                let vinv = pseudo_inverse_symmetric(&v)?;
                let mut updated = mttkrp.matmul(&vinv)?;
                // Normalize columns and store the norms as weights.
                for k in 0..rank {
                    let mut col = updated.column(k);
                    let n = linalg::normalize(&mut col);
                    weights[k] = if n > 1e-300 { n } else { 0.0 };
                    updated.set_column(k, &col);
                }
                if mode == order - 1 {
                    inner = weighted_inner(&updated, &mttkrp, &weights);
                }
                grams[mode] = updated.gram_t();
                factors[mode] = updated;
            }

            // ‖T̂‖² = Σ_{k,l} w_k w_l Π_p Gram_p[k,l], all cached r × r matrices.
            let mut had = Matrix::filled(rank, rank, 1.0);
            for g in &grams {
                had = had.hadamard(g)?;
            }
            let mut model_sq = 0.0;
            for k in 0..rank {
                for l in 0..rank {
                    model_sq += weights[k] * weights[l] * had[(k, l)];
                }
            }
            let fit = (norm_sq - 2.0 * inner + model_sq).max(0.0).sqrt() / norm;
            if (previous_fit - fit).abs() < self.options.tolerance {
                previous_fit = fit;
                break;
            }
            previous_fit = fit;
        }

        // Sort components by decreasing |weight| so truncation keeps the strongest.
        let mut order_idx: Vec<usize> = (0..rank).collect();
        order_idx.sort_by(|&a, &b| {
            weights[b]
                .abs()
                .partial_cmp(&weights[a].abs())
                .expect("finite weights")
        });
        let sorted_weights: Vec<f64> = order_idx.iter().map(|&k| weights[k]).collect();
        let sorted_factors: Vec<Matrix> = factors
            .iter()
            .map(|f| f.select_columns(&order_idx))
            .collect();

        let cp = CpDecomposition {
            weights: sorted_weights,
            factors: sorted_factors,
        };
        // Reordering components leaves the reconstruction unchanged, so the last
        // sweep's Gram-based fit is the final relative error (the reconstruction
        // fallback only fires when max_iterations == 0).
        let err = if previous_fit.is_finite() {
            previous_fit
        } else {
            cp.relative_error(tensor)
        };
        Ok((cp, iterations, err))
    }

    fn initialize(
        &self,
        tensor: &DenseTensor,
        shape: &[usize],
        rank: usize,
    ) -> Result<Vec<Matrix>> {
        let mut rng = StdRng::seed_from_u64(self.options.seed);
        let mut factors = Vec::with_capacity(shape.len());
        for (mode, &dim) in shape.iter().enumerate() {
            let factor = if self.options.hosvd_init && dim >= 2 {
                // Leading eigenvectors of T_(n) T_(n)ᵀ (HOSVD initialization), padded
                // with random columns when rank exceeds the mode dimension. The Gram
                // is streamed off the flat storage; no unfolding is materialized.
                let gram = tensor.mode_gram(mode)?;
                let eig = SymmetricEigen::new(&gram)?;
                let k = rank.min(dim);
                let mut f = eig.eigenvectors.leading_columns(k);
                if k < rank {
                    let mut padded = Matrix::zeros(dim, rank);
                    for i in 0..dim {
                        for j in 0..k {
                            padded[(i, j)] = f[(i, j)];
                        }
                        for j in k..rank {
                            padded[(i, j)] = rng.gen_range(-1.0..1.0);
                        }
                    }
                    f = padded;
                }
                f
            } else {
                let mut f = Matrix::zeros(dim, rank);
                for i in 0..dim {
                    for j in 0..rank {
                        f[(i, j)] = rng.gen_range(-1.0..1.0);
                    }
                }
                f
            };
            factors.push(factor);
        }
        Ok(factors)
    }
}

impl RankRDecomposition for CpAls {
    fn decompose(&self, tensor: &DenseTensor, rank: usize) -> Result<CpDecomposition> {
        self.decompose_detailed(tensor, rank).map(|(cp, _, _)| cp)
    }
}

/// Weighted Frobenius inner product `Σ_k w_k Σ_i A[i,k] M[i,k]` — evaluates `⟨T, T̂⟩`
/// from the final mode's (normalized) factor `A` and its MTTKRP `M`.
fn weighted_inner(a: &Matrix, m: &Matrix, weights: &[f64]) -> f64 {
    let mut total = 0.0;
    for i in 0..a.rows() {
        let a_row = a.row(i);
        let m_row = m.row(i);
        for (k, w) in weights.iter().enumerate() {
            total += w * a_row[k] * m_row[k];
        }
    }
    total
}

/// Pseudo-inverse of a small symmetric (Gram/Hadamard) matrix via its eigendecomposition,
/// flooring tiny eigenvalues for stability.
fn pseudo_inverse_symmetric(v: &Matrix) -> Result<Matrix> {
    let eig = SymmetricEigen::new(v)?;
    let max = eig
        .eigenvalues
        .first()
        .copied()
        .unwrap_or(0.0)
        .abs()
        .max(1e-300);
    let cutoff = max * 1e-12;
    Ok(eig.spectral_map(|l| if l.abs() > cutoff { 1.0 / l } else { 0.0 }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted_rank2() -> (DenseTensor, CpDecomposition) {
        // Build an exactly rank-2 tensor from orthogonal factors.
        let a1 = [1.0, 0.0, 0.0];
        let a2 = [0.0, 1.0, 0.0];
        let b1 = [0.6, 0.8];
        let b2 = [0.8, -0.6];
        let c1 = [1.0, 0.0, 0.0, 0.0];
        let c2 = [0.0, 1.0, 0.0, 0.0];
        let mut t = DenseTensor::zeros(&[3, 2, 4]);
        t.add_rank_one(5.0, &[&a1, &b1, &c1]);
        t.add_rank_one(2.0, &[&a2, &b2, &c2]);
        let truth = CpDecomposition {
            weights: vec![5.0, 2.0],
            factors: vec![
                Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![0.0, 0.0]]).unwrap(),
                Matrix::from_rows(&[vec![0.6, 0.8], vec![0.8, -0.6]]).unwrap(),
                Matrix::from_rows(&[
                    vec![1.0, 0.0],
                    vec![0.0, 1.0],
                    vec![0.0, 0.0],
                    vec![0.0, 0.0],
                ])
                .unwrap(),
            ],
        };
        (t, truth)
    }

    #[test]
    fn recovers_planted_rank2_tensor() {
        let (t, _) = planted_rank2();
        let als = CpAls::default();
        let (cp, iters, err) = als.decompose_detailed(&t, 2).unwrap();
        assert!(
            err < 1e-6,
            "relative error {err} too large after {iters} iterations"
        );
        assert_eq!(cp.rank(), 2);
        // The dominant weight should be close to 5, the second close to 2.
        assert!(
            (cp.weights[0] - 5.0).abs() < 1e-4,
            "weights: {:?}",
            cp.weights
        );
        assert!((cp.weights[1] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn rank1_of_rank1_tensor_is_exact() {
        let a = [2.0, -1.0];
        let b = [1.0, 3.0, 0.5];
        let c = [0.2, 0.9];
        let mut t = DenseTensor::zeros(&[2, 3, 2]);
        t.add_rank_one(1.0, &[&a, &b, &c]);
        let cp = CpAls::default().decompose(&t, 1).unwrap();
        assert!(cp.relative_error(&t) < 1e-8);
    }

    #[test]
    fn error_never_increases_much_with_rank() {
        let (t, _) = planted_rank2();
        let als = CpAls::default();
        let e1 = als.decompose(&t, 1).unwrap().relative_error(&t);
        let e2 = als.decompose(&t, 2).unwrap().relative_error(&t);
        assert!(e2 <= e1 + 1e-9);
    }

    #[test]
    fn rejects_bad_arguments() {
        let t = DenseTensor::zeros(&[2, 2, 2]);
        let als = CpAls::default();
        assert!(als.decompose(&t, 0).is_err());
        let vector = DenseTensor::zeros(&[4]);
        assert!(als.decompose(&vector, 1).is_err());
    }

    #[test]
    fn zero_tensor_returns_zero_weights() {
        let t = DenseTensor::zeros(&[2, 3, 2]);
        let cp = CpAls::default().decompose(&t, 2).unwrap();
        assert_eq!(cp.weights, vec![0.0, 0.0]);
    }

    #[test]
    fn random_init_also_converges() {
        let (t, _) = planted_rank2();
        let als = CpAls::new(CpOptions {
            hosvd_init: false,
            max_iterations: 500,
            seed: 3,
            ..CpOptions::default()
        });
        let cp = als.decompose(&t, 2).unwrap();
        assert!(cp.relative_error(&t) < 1e-4);
    }

    /// A planted rank-2 tensor plus deterministic low-amplitude noise, so ALS needs a
    /// nontrivial number of sweeps to converge.
    fn noisy_rank2() -> DenseTensor {
        let (mut t, _) = planted_rank2();
        let shape = t.shape().to_vec();
        let mut idx = 0usize;
        for i in 0..shape[0] {
            for j in 0..shape[1] {
                for k in 0..shape[2] {
                    let noise = 0.05 * ((idx as f64 * 0.91).sin() + (idx as f64 * 0.37).cos());
                    let v = t.get(&[i, j, k]) + noise;
                    t.set(&[i, j, k], v);
                    idx += 1;
                }
            }
        }
        t
    }

    #[test]
    fn warm_start_from_perturbed_solution_halves_sweeps() {
        let t = noisy_rank2();
        let als = CpAls::new(CpOptions {
            hosvd_init: false,
            max_iterations: 500,
            seed: 11,
            ..CpOptions::default()
        });
        let (cold, cold_iters, cold_err) = als.decompose_detailed(&t, 2).unwrap();
        // Perturb the converged factors and restart warm: it must reach the cold
        // objective in at most half the sweeps.
        let mut init = cold.factors.clone();
        for f in init.iter_mut() {
            for i in 0..f.rows() {
                for j in 0..f.cols() {
                    f[(i, j)] += 1e-3 * ((i * 7 + j * 3) as f64).sin();
                }
            }
        }
        let (_, warm_iters, warm_err) = als.decompose_warm(&t, 2, &init).unwrap();
        assert!(
            warm_iters * 2 <= cold_iters,
            "warm start took {warm_iters} sweeps, cold fit took {cold_iters}"
        );
        assert!(
            warm_err <= cold_err * (1.0 + 1e-6) + 1e-9,
            "warm error {warm_err} vs cold {cold_err}"
        );
    }

    #[test]
    fn warm_start_adapts_rank_and_validates_shapes() {
        let (t, truth) = planted_rank2();
        let als = CpAls::default();
        // Rank grows: previous rank-1 factors are padded with random columns.
        let rank1: Vec<Matrix> = truth.factors.iter().map(|f| f.leading_columns(1)).collect();
        let (cp, _, err) = als.decompose_warm(&t, 2, &rank1).unwrap();
        assert_eq!(cp.rank(), 2);
        assert!(err < 1e-4, "relative error {err}");
        // Wrong mode count or row dimension is rejected.
        assert!(als.decompose_warm(&t, 2, &rank1[..2]).is_err());
        let mut bad = rank1.clone();
        bad[0] = Matrix::zeros(7, 1);
        assert!(als.decompose_warm(&t, 2, &bad).is_err());
    }

    #[test]
    fn matrix_case_matches_svd_energy() {
        // For an order-2 tensor, rank-r CP ≈ truncated SVD.
        let m = Matrix::from_rows(&[
            vec![3.0, 1.0, 0.5],
            vec![1.0, 2.0, 0.0],
            vec![0.5, 0.0, 1.0],
        ])
        .unwrap();
        let t = DenseTensor::from_vec(&[3, 3], m.transpose().into_vec()).unwrap();
        let cp = CpAls::default().decompose(&t, 3).unwrap();
        assert!(cp.relative_error(&t) < 1e-6);
    }
}
