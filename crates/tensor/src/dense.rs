//! The arbitrary-order [`DenseTensor`] type: storage, indexing, mode-n matricization,
//! mode-n products and rank-1 accumulation.
//!
//! ## Layout and matricization convention
//!
//! Elements are stored with the **first index varying fastest** (generalized
//! column-major, the convention of Kolda & Bader, *Tensor Decompositions and
//! Applications*, SIAM Review 2009). The mode-`n` unfolding `T₍ₙ₎` maps element
//! `(i₁, …, i_N)` to row `i_n` and column `Σ_{k≠n} i_k · J_k` with
//! `J_k = Π_{m<k, m≠n} I_m`, i.e. the smallest remaining mode varies fastest. The
//! Khatri–Rao helpers in [`crate::kr`] use the matching ordering so that
//! `T₍ₙ₎ ≈ A_n (A_N ⊙ … ⊙ A_{n+1} ⊙ A_{n-1} ⊙ … ⊙ A_1)ᵀ` holds exactly.

use crate::{Result, TensorError};
use linalg::Matrix;

/// A dense tensor of arbitrary order with `f64` entries.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseTensor {
    shape: Vec<usize>,
    /// Strides matching the "first index fastest" layout: `strides[k] = Π_{m<k} I_m`.
    strides: Vec<usize>,
    data: Vec<f64>,
}

impl DenseTensor {
    /// Create a zero tensor with the given shape.
    ///
    /// An empty shape (`&[]`) denotes a scalar tensor holding a single value.
    pub fn zeros(shape: &[usize]) -> Self {
        let strides = compute_strides(shape);
        let len = shape.iter().product::<usize>().max(1);
        Self {
            shape: shape.to_vec(),
            strides,
            data: vec![0.0; len],
        }
    }

    /// Build a tensor from a flat data vector laid out with the first index fastest.
    pub fn from_vec(shape: &[usize], data: Vec<f64>) -> Result<Self> {
        let expected = shape.iter().product::<usize>().max(1);
        if data.len() != expected {
            return Err(TensorError::InvalidArgument(format!(
                "data length {} does not match shape {:?} (expected {})",
                data.len(),
                shape,
                expected
            )));
        }
        Ok(Self {
            shape: shape.to_vec(),
            strides: compute_strides(shape),
            data,
        })
    }

    /// The tensor shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The tensor order (number of modes).
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.len()
    }

    /// Total number of stored elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no dimensions (scalar) — never true otherwise since
    /// even a zero tensor stores its zeros.
    pub fn is_empty(&self) -> bool {
        self.shape.is_empty()
    }

    /// Borrow the flat storage (first index fastest).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the flat storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Linear offset of a multi-index.
    #[inline]
    fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.shape.len());
        let mut off = 0;
        for (k, &i) in index.iter().enumerate() {
            debug_assert!(i < self.shape[k]);
            off += i * self.strides[k];
        }
        off
    }

    /// Read the element at a multi-index.
    #[inline]
    pub fn get(&self, index: &[usize]) -> f64 {
        self.data[self.offset(index)]
    }

    /// Write the element at a multi-index.
    #[inline]
    pub fn set(&mut self, index: &[usize], value: f64) {
        let off = self.offset(index);
        self.data[off] = value;
    }

    /// Frobenius norm `‖T‖_F` (Eq. 4.4 in the paper).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Frobenius inner product `⟨self, other⟩`.
    pub fn inner(&self, other: &DenseTensor) -> Result<f64> {
        self.check_same_shape(other, "inner")?;
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Element-wise difference `self − other`.
    pub fn sub(&self, other: &DenseTensor) -> Result<DenseTensor> {
        self.check_same_shape(other, "sub")?;
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        DenseTensor::from_vec(&self.shape, data)
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &DenseTensor) -> Result<DenseTensor> {
        self.check_same_shape(other, "add")?;
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        DenseTensor::from_vec(&self.shape, data)
    }

    /// Scale every entry by `s`.
    pub fn scale(&self, s: f64) -> DenseTensor {
        DenseTensor {
            shape: self.shape.clone(),
            strides: self.strides.clone(),
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// In-place scaling.
    pub fn scale_inplace(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Accumulate a weighted rank-1 tensor: `self += weight · v₁ ∘ v₂ ∘ … ∘ v_m`.
    ///
    /// This is how the covariance tensor `C = (1/N) Σ_n x₁ₙ ∘ … ∘ x_mₙ` is built without
    /// materializing intermediate outer products.
    pub fn add_rank_one(&mut self, weight: f64, vectors: &[&[f64]]) {
        assert_eq!(
            vectors.len(),
            self.shape.len(),
            "add_rank_one: expected {} vectors, got {}",
            self.shape.len(),
            vectors.len()
        );
        for (p, v) in vectors.iter().enumerate() {
            assert_eq!(
                v.len(),
                self.shape[p],
                "add_rank_one: vector {p} has length {} but mode has size {}",
                v.len(),
                self.shape[p]
            );
        }
        if weight == 0.0 {
            return;
        }
        // Recursive accumulation over modes from last (slowest) to first (fastest):
        // at the innermost level the first-mode vector is streamed contiguously.
        fn recurse(
            data: &mut [f64],
            strides: &[usize],
            vectors: &[&[f64]],
            mode: usize,
            base: usize,
            acc: f64,
        ) {
            if mode == 0 {
                let v0 = vectors[0];
                let out = &mut data[base..base + v0.len()];
                for (o, x) in out.iter_mut().zip(v0.iter()) {
                    *o += acc * x;
                }
                return;
            }
            let stride = strides[mode];
            for (i, &vi) in vectors[mode].iter().enumerate() {
                if vi == 0.0 {
                    continue;
                }
                recurse(
                    data,
                    strides,
                    vectors,
                    mode - 1,
                    base + i * stride,
                    acc * vi,
                );
            }
        }
        let last = self.shape.len() - 1;
        recurse(&mut self.data, &self.strides, vectors, last, 0, weight);
    }

    /// Mode-`n` matricization `T₍ₙ₎` (an `I_n × Π_{k≠n} I_k` matrix).
    pub fn unfold(&self, mode: usize) -> Result<Matrix> {
        if mode >= self.order() {
            return Err(TensorError::InvalidMode {
                mode,
                order: self.order(),
            });
        }
        let i_n = self.shape[mode];
        let cols: usize = self
            .shape
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != mode)
            .map(|(_, &s)| s)
            .product::<usize>()
            .max(1);
        let mut out = Matrix::zeros(i_n, cols);

        // Iterate over all elements once; compute (row, col) from the multi-index.
        let order = self.order();
        let mut index = vec![0usize; order];
        for (flat, &value) in self.data.iter().enumerate() {
            // Decode flat -> multi-index (first index fastest).
            let mut rem = flat;
            for k in 0..order {
                index[k] = rem % self.shape[k];
                rem /= self.shape[k];
            }
            let row = index[mode];
            let mut col = 0usize;
            let mut stride = 1usize;
            for k in 0..order {
                if k == mode {
                    continue;
                }
                col += index[k] * stride;
                stride *= self.shape[k];
            }
            out[(row, col)] = value;
        }
        Ok(out)
    }

    /// Inverse of [`DenseTensor::unfold`]: fold an `I_n × Π_{k≠n} I_k` matrix back into a
    /// tensor with the given full shape.
    pub fn fold(matrix: &Matrix, mode: usize, shape: &[usize]) -> Result<DenseTensor> {
        if mode >= shape.len() {
            return Err(TensorError::InvalidMode {
                mode,
                order: shape.len(),
            });
        }
        let expected_cols: usize = shape
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != mode)
            .map(|(_, &s)| s)
            .product::<usize>()
            .max(1);
        if matrix.rows() != shape[mode] || matrix.cols() != expected_cols {
            return Err(TensorError::ShapeMismatch {
                op: "fold",
                detail: format!(
                    "matrix is {}x{} but mode-{mode} folding of {:?} needs {}x{}",
                    matrix.rows(),
                    matrix.cols(),
                    shape,
                    shape[mode],
                    expected_cols
                ),
            });
        }
        let mut out = DenseTensor::zeros(shape);
        let order = shape.len();
        let mut index = vec![0usize; order];
        for flat in 0..out.data.len() {
            let mut rem = flat;
            for k in 0..order {
                index[k] = rem % shape[k];
                rem /= shape[k];
            }
            let row = index[mode];
            let mut col = 0usize;
            let mut stride = 1usize;
            for k in 0..order {
                if k == mode {
                    continue;
                }
                col += index[k] * stride;
                stride *= shape[k];
            }
            out.data[flat] = matrix[(row, col)];
        }
        Ok(out)
    }

    /// Mode-`n` product `B = T ×ₙ U` with a `J × I_n` matrix `U` (paper Eq. 4.1):
    /// every mode-`n` fiber of `T` is multiplied by `U`.
    ///
    /// Fibers are written directly into the output's flat storage (no unfold → matmul →
    /// fold round-trip), streaming contiguous `inner`-sized runs. For mode 0 the
    /// independent output slabs are parallelized; for higher modes every contiguous
    /// output run (one `(o, j)` pair) is an independent chunk, so even the highest
    /// mode — whose single slab spans the whole tensor — parallelizes.
    pub fn mode_product(&self, mode: usize, u: &Matrix) -> Result<DenseTensor> {
        if mode >= self.order() {
            return Err(TensorError::InvalidMode {
                mode,
                order: self.order(),
            });
        }
        if u.cols() != self.shape[mode] {
            return Err(TensorError::ShapeMismatch {
                op: "mode_product",
                detail: format!(
                    "matrix has {} columns but mode {mode} has size {}",
                    u.cols(),
                    self.shape[mode]
                ),
            });
        }
        let d = self.shape[mode];
        let j_new = u.rows();
        let inner = self.strides[mode];
        let slab_in = inner * d;
        let slab_out = inner * j_new;
        let outer = self.data.len().checked_div(slab_in).unwrap_or(0);
        let mut new_shape = self.shape.clone();
        new_shape[mode] = j_new;
        let mut out = DenseTensor::zeros(&new_shape);
        if out.data.is_empty() || outer == 0 {
            return Ok(out);
        }
        let data = &self.data;
        let threads = parallel::threads_for_work(2 * outer * d * j_new * inner);
        if mode == 0 {
            // Each output entry is a dot of a row of `u` with a contiguous fiber;
            // chunk by output slab (one per fiber of the input).
            parallel::for_each_chunk_mut(&mut out.data, slab_out, threads, |o, out_slab| {
                let in_slab = &data[o * slab_in..(o + 1) * slab_in];
                for (j, ov) in out_slab.iter_mut().enumerate() {
                    let u_row = u.row(j);
                    let mut acc = 0.0;
                    for (a, b) in u_row.iter().zip(in_slab.iter()) {
                        acc += a * b;
                    }
                    *ov = acc;
                }
            });
        } else {
            // Higher modes: each contiguous `inner`-run of the output (an `(o, j)`
            // pair) accumulates scaled input runs independently, with `i` ascending so
            // the per-element addition order is fixed and deterministic. Chunking per
            // run (not per slab) keeps the highest mode — one slab spanning the whole
            // tensor — parallelizable.
            parallel::for_each_chunk_mut(&mut out.data, inner, threads, |c, out_run| {
                let (o, j) = (c / j_new, c % j_new);
                let in_slab = &data[o * slab_in..(o + 1) * slab_in];
                for i in 0..d {
                    let coeff = u[(j, i)];
                    if coeff == 0.0 {
                        continue;
                    }
                    let in_run = &in_slab[i * inner..(i + 1) * inner];
                    for (o_val, x) in out_run.iter_mut().zip(in_run.iter()) {
                        *o_val += coeff * x;
                    }
                }
            });
        }
        Ok(out)
    }

    /// Matricized-tensor times Khatri–Rao product (MTTKRP), the workhorse of CP-ALS:
    /// `T₍ₙ₎ · (A_N ⊙ … ⊙ A_{n+1} ⊙ A_{n−1} ⊙ … ⊙ A_1)` — the mode-`mode` unfolding
    /// times the Khatri–Rao product of the other factors in descending mode order —
    /// computed by streaming the tensor's contiguous storage **once**, materializing
    /// neither the unfolding nor the Khatri–Rao matrix.
    ///
    /// `factors` must hold one matrix per mode with `factors[k].rows() == shape[k]` and
    /// a common column count `r`; `factors[mode]` is ignored (CP-ALS passes the full
    /// factor list). The result is `shape[mode] × r`.
    pub fn mttkrp(&self, mode: usize, factors: &[&Matrix]) -> Result<Matrix> {
        let r = factors.first().map_or(0, |f| f.cols());
        self.mttkrp_with_threads(
            mode,
            factors,
            parallel::threads_for_work(2 * self.data.len() * r.max(1)),
        )
    }

    /// [`DenseTensor::mttkrp`] with an explicit thread count. Output rows are
    /// partitioned into blocks; every row accumulates over the tensor's fibers in
    /// storage order regardless of blocking, so the result is bit-identical for every
    /// `threads >= 1`.
    pub fn mttkrp_with_threads(
        &self,
        mode: usize,
        factors: &[&Matrix],
        threads: usize,
    ) -> Result<Matrix> {
        let order = self.order();
        if order < 2 {
            return Err(TensorError::InvalidArgument(format!(
                "mttkrp needs an order >= 2 tensor, got order {order}"
            )));
        }
        if mode >= order {
            return Err(TensorError::InvalidMode { mode, order });
        }
        if factors.len() != order {
            return Err(TensorError::ShapeMismatch {
                op: "mttkrp",
                detail: format!("expected {} factor matrices, got {}", order, factors.len()),
            });
        }
        let r = factors[if mode == 0 { 1 } else { 0 }].cols();
        for (k, f) in factors.iter().enumerate() {
            if k == mode {
                continue;
            }
            if f.rows() != self.shape[k] || f.cols() != r {
                return Err(TensorError::ShapeMismatch {
                    op: "mttkrp",
                    detail: format!(
                        "factor {k} is {}x{} but mode {k} needs {}x{r}",
                        f.rows(),
                        f.cols(),
                        self.shape[k]
                    ),
                });
            }
        }
        let d_out = self.shape[mode];
        let mut out = Matrix::zeros(d_out, r);
        if r == 0 || self.data.is_empty() {
            return Ok(out);
        }
        let rows_per_block = d_out.div_ceil(threads.max(1) * 4).max(1);
        parallel::for_each_chunk_mut(out.as_mut_slice(), rows_per_block * r, threads, {
            let shape = &self.shape;
            let data = &self.data;
            move |block, chunk| {
                mttkrp_rows(data, shape, mode, factors, r, block * rows_per_block, chunk);
            }
        });
        Ok(out)
    }

    /// Gram matrix of the mode-`n` unfolding, `G = T₍ₙ₎ T₍ₙ₎ᵀ` (`I_n × I_n`), computed
    /// by streaming the flat storage — the unfolding itself is never materialized.
    /// Used by the HOSVD-style initializations of CP-ALS and HOPM.
    pub fn mode_gram(&self, mode: usize) -> Result<Matrix> {
        if mode >= self.order() {
            return Err(TensorError::InvalidMode {
                mode,
                order: self.order(),
            });
        }
        let d = self.shape[mode];
        let inner = self.strides[mode];
        let slab = inner * d;
        let outer = self.data.len().checked_div(slab).unwrap_or(0);
        let mut g = Matrix::zeros(d, d);
        for o in 0..outer {
            let base = o * slab;
            for i in 0..d {
                let a = &self.data[base + i * inner..base + (i + 1) * inner];
                for j in i..d {
                    let b = &self.data[base + j * inner..base + (j + 1) * inner];
                    let mut acc = 0.0;
                    for (x, y) in a.iter().zip(b.iter()) {
                        acc += x * y;
                    }
                    g[(i, j)] += acc;
                }
            }
        }
        for i in 0..d {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        Ok(g)
    }

    /// Mode-`n` contraction with a vector: `T ×ₙ vᵀ`, which drops mode `n` and returns a
    /// tensor of order `m − 1` (the order-0 case is returned as a 1-element tensor).
    pub fn mode_contract(&self, mode: usize, v: &[f64]) -> Result<DenseTensor> {
        if mode >= self.order() {
            return Err(TensorError::InvalidMode {
                mode,
                order: self.order(),
            });
        }
        if v.len() != self.shape[mode] {
            return Err(TensorError::ShapeMismatch {
                op: "mode_contract",
                detail: format!(
                    "vector has length {} but mode {mode} has size {}",
                    v.len(),
                    self.shape[mode]
                ),
            });
        }
        let unfolded = self.unfold(mode)?;
        let contracted = unfolded.t_matvec(v)?;
        let new_shape: Vec<usize> = self
            .shape
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != mode)
            .map(|(_, &s)| s)
            .collect();
        DenseTensor::from_vec(&new_shape, contracted)
    }

    /// The multilinear form `T ×₁ v₁ᵀ ×₂ v₂ᵀ … ×ₘ vₘᵀ` (a scalar).
    ///
    /// By Theorem 1 of the paper this equals the canonical correlation
    /// `ρ = (z₁ ⊙ z₂ ⊙ … ⊙ zₘ)ᵀ e` when `T` is the covariance tensor and the `v_p` are
    /// the canonical vectors.
    pub fn multilinear_form(&self, vectors: &[&[f64]]) -> Result<f64> {
        if vectors.len() != self.order() {
            return Err(TensorError::ShapeMismatch {
                op: "multilinear_form",
                detail: format!("expected {} vectors, got {}", self.order(), vectors.len()),
            });
        }
        if !vectors.is_empty() && vectors[0].len() != self.shape[0] {
            return Err(TensorError::ShapeMismatch {
                op: "multilinear_form",
                detail: format!(
                    "vector 0 has length {} but mode 0 has size {}",
                    vectors[0].len(),
                    self.shape[0]
                ),
            });
        }
        if self.order() == 0 {
            return Ok(self.data[0]);
        }
        let fiber = self.contract_all_but(0, vectors)?;
        let mut acc = 0.0;
        for (a, b) in vectors[0].iter().zip(fiber.iter()) {
            acc += a * b;
        }
        Ok(acc)
    }

    /// Contract every mode **except** `keep` with the corresponding vector, returning the
    /// resulting mode-`keep` fiber of length `I_keep`.
    ///
    /// This is the inner step of both the HOPM and ALS rank-1 updates:
    /// `u_p ← T ×₁ u₁ᵀ … ×_{p−1} u_{p−1}ᵀ ×_{p+1} u_{p+1}ᵀ … ×ₘ uₘᵀ`.
    ///
    /// This is the rank-1 specialization of the fused MTTKRP kernel: the tensor's flat
    /// storage is streamed exactly once, with no intermediate tensors (the entry of
    /// `vectors` at position `keep` is ignored).
    pub fn contract_all_but(&self, keep: usize, vectors: &[&[f64]]) -> Result<Vec<f64>> {
        let order = self.order();
        if vectors.len() != order {
            return Err(TensorError::ShapeMismatch {
                op: "contract_all_but",
                detail: format!("expected {} vectors, got {}", order, vectors.len()),
            });
        }
        if keep >= order {
            return Err(TensorError::InvalidMode { mode: keep, order });
        }
        for (k, v) in vectors.iter().enumerate() {
            if k != keep && v.len() != self.shape[k] {
                return Err(TensorError::ShapeMismatch {
                    op: "contract_all_but",
                    detail: format!(
                        "vector {k} has length {} but mode {k} has size {}",
                        v.len(),
                        self.shape[k]
                    ),
                });
            }
        }
        let d0 = self.shape[0];
        let mut out = vec![0.0; self.shape[keep]];
        if self.data.is_empty() || d0 == 0 {
            return Ok(out);
        }
        let mut idx = vec![0usize; order];
        for fiber in self.data.chunks_exact(d0) {
            // Scalar weight from every mode above 0 except `keep`.
            let mut w = 1.0;
            for k in 1..order {
                if k != keep {
                    w *= vectors[k][idx[k]];
                }
            }
            if w != 0.0 {
                if keep == 0 {
                    for (o, &t) in out.iter_mut().zip(fiber.iter()) {
                        *o += t * w;
                    }
                } else {
                    let v0 = vectors[0];
                    let mut acc = 0.0;
                    for (&t, &v) in fiber.iter().zip(v0.iter()) {
                        acc += t * v;
                    }
                    out[idx[keep]] += acc * w;
                }
            }
            for k in 1..order {
                idx[k] += 1;
                if idx[k] < self.shape[k] {
                    break;
                }
                idx[k] = 0;
            }
        }
        Ok(out)
    }

    fn check_same_shape(&self, other: &DenseTensor, op: &'static str) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op,
                detail: format!("{:?} vs {:?}", self.shape, other.shape),
            });
        }
        Ok(())
    }
}

/// Serial MTTKRP kernel for a block of output rows `[row0, row0 + out_rows.len()/r)`.
///
/// Streams the tensor as contiguous mode-0 fibers. For every fiber the scalar weights
/// of the modes above 0 come from one row of each non-`mode` factor; mode 0 either
/// scatters into the output rows (mode == 0) or is reduced against `factors[0]` first.
/// Each output element accumulates over fibers in storage order, independent of the
/// block partition — which is what makes the parallel driver bit-deterministic.
fn mttkrp_rows(
    data: &[f64],
    shape: &[usize],
    mode: usize,
    factors: &[&Matrix],
    r: usize,
    row0: usize,
    out_rows: &mut [f64],
) {
    let order = shape.len();
    let d0 = shape[0];
    let row1 = row0 + out_rows.len() / r;
    let mut idx = vec![0usize; order];
    let mut w = vec![1.0f64; r];
    let mut acc = vec![0.0f64; r];
    for fiber in data.chunks_exact(d0) {
        if mode == 0 || (idx[mode] >= row0 && idx[mode] < row1) {
            w.fill(1.0);
            for k in 1..order {
                if k == mode {
                    continue;
                }
                let f_row = factors[k].row(idx[k]);
                for (wv, &fv) in w.iter_mut().zip(f_row.iter()) {
                    *wv *= fv;
                }
            }
            if mode == 0 {
                for i0 in row0..row1 {
                    let t = fiber[i0];
                    if t == 0.0 {
                        continue;
                    }
                    let o = &mut out_rows[(i0 - row0) * r..(i0 - row0 + 1) * r];
                    for (ov, &wv) in o.iter_mut().zip(w.iter()) {
                        *ov += t * wv;
                    }
                }
            } else {
                acc.fill(0.0);
                for (i0, &t) in fiber.iter().enumerate() {
                    if t == 0.0 {
                        continue;
                    }
                    let a_row = factors[0].row(i0);
                    for (av, &fv) in acc.iter_mut().zip(a_row.iter()) {
                        *av += t * fv;
                    }
                }
                let local = idx[mode] - row0;
                let o = &mut out_rows[local * r..(local + 1) * r];
                for ((ov, &av), &wv) in o.iter_mut().zip(acc.iter()).zip(w.iter()) {
                    *ov += av * wv;
                }
            }
        }
        for k in 1..order {
            idx[k] += 1;
            if idx[k] < shape[k] {
                break;
            }
            idx[k] = 0;
        }
    }
}

fn compute_strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for k in 1..shape.len() {
        strides[k] = strides[k - 1] * shape[k - 1];
    }
    strides
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_3d() -> DenseTensor {
        // Shape 2x3x2, filled with 1..=12 in storage order (first index fastest).
        DenseTensor::from_vec(&[2, 3, 2], (1..=12).map(|v| v as f64).collect()).unwrap()
    }

    #[test]
    fn indexing_follows_first_index_fastest() {
        let t = example_3d();
        assert_eq!(t.get(&[0, 0, 0]), 1.0);
        assert_eq!(t.get(&[1, 0, 0]), 2.0);
        assert_eq!(t.get(&[0, 1, 0]), 3.0);
        assert_eq!(t.get(&[1, 2, 0]), 6.0);
        assert_eq!(t.get(&[0, 0, 1]), 7.0);
        assert_eq!(t.get(&[1, 2, 1]), 12.0);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut t = DenseTensor::zeros(&[3, 4, 2]);
        t.set(&[2, 3, 1], 42.0);
        assert_eq!(t.get(&[2, 3, 1]), 42.0);
        assert_eq!(t.len(), 24);
        assert_eq!(t.order(), 3);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseTensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn unfold_mode0_matches_known_layout() {
        let t = example_3d();
        let m0 = t.unfold(0).unwrap();
        assert_eq!(m0.shape(), (2, 6));
        // Column j corresponds to (i2, i3) with i2 fastest: columns are
        // (0,0),(1,0),(2,0),(0,1),(1,1),(2,1).
        assert_eq!(m0.row(0), &[1.0, 3.0, 5.0, 7.0, 9.0, 11.0]);
        assert_eq!(m0.row(1), &[2.0, 4.0, 6.0, 8.0, 10.0, 12.0]);
    }

    #[test]
    fn unfold_mode1_and_mode2() {
        let t = example_3d();
        let m1 = t.unfold(1).unwrap();
        assert_eq!(m1.shape(), (3, 4));
        // Columns ordered by (i1, i3) with i1 fastest: (0,0),(1,0),(0,1),(1,1).
        assert_eq!(m1.row(0), &[1.0, 2.0, 7.0, 8.0]);
        assert_eq!(m1.row(2), &[5.0, 6.0, 11.0, 12.0]);
        let m2 = t.unfold(2).unwrap();
        assert_eq!(m2.shape(), (2, 6));
        assert_eq!(m2.row(0), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m2.row(1), &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn fold_is_inverse_of_unfold() {
        let t = example_3d();
        for mode in 0..3 {
            let unfolded = t.unfold(mode).unwrap();
            let folded = DenseTensor::fold(&unfolded, mode, t.shape()).unwrap();
            assert_eq!(folded, t);
        }
    }

    #[test]
    fn fold_validates_shape() {
        let m = Matrix::zeros(2, 5);
        assert!(DenseTensor::fold(&m, 0, &[2, 3, 2]).is_err());
        assert!(DenseTensor::fold(&m, 7, &[2, 5]).is_err());
    }

    #[test]
    fn mode_product_against_manual() {
        let t = example_3d();
        // U is 1x2 summing the first mode.
        let u = Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap();
        let b = t.mode_product(0, &u).unwrap();
        assert_eq!(b.shape(), &[1, 3, 2]);
        assert_eq!(b.get(&[0, 0, 0]), 3.0); // 1 + 2
        assert_eq!(b.get(&[0, 2, 1]), 23.0); // 11 + 12
        assert!(t.mode_product(0, &Matrix::zeros(2, 3)).is_err());
        assert!(t.mode_product(9, &u).is_err());
    }

    #[test]
    fn mode_product_identity_is_noop() {
        let t = example_3d();
        for mode in 0..3 {
            let eye = Matrix::identity(t.shape()[mode]);
            assert_eq!(t.mode_product(mode, &eye).unwrap(), t);
        }
    }

    #[test]
    fn mode_contract_drops_mode() {
        let t = example_3d();
        let c = t.mode_contract(1, &[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.get(&[0, 0]), 1.0 + 3.0 + 5.0);
        assert_eq!(c.get(&[1, 1]), 8.0 + 10.0 + 12.0);
        assert!(t.mode_contract(1, &[1.0]).is_err());
    }

    #[test]
    fn multilinear_form_matches_elementwise_sum() {
        let t = example_3d();
        let ones2 = vec![1.0, 1.0];
        let ones3 = vec![1.0, 1.0, 1.0];
        let total = t.multilinear_form(&[&ones2, &ones3, &ones2]).unwrap();
        assert_eq!(total, (1..=12).sum::<i32>() as f64);
        // Selecting a single element via indicator vectors.
        let e1 = vec![0.0, 1.0];
        let e2 = vec![0.0, 0.0, 1.0];
        let picked = t.multilinear_form(&[&e1, &e2, &e1]).unwrap();
        assert_eq!(picked, t.get(&[1, 2, 1]));
    }

    #[test]
    fn contract_all_but_returns_fiber() {
        let t = example_3d();
        let ones2 = vec![1.0, 1.0];
        let ones3 = vec![1.0, 1.0, 1.0];
        let fiber = t.contract_all_but(1, &[&ones2, &ones3, &ones2]).unwrap();
        assert_eq!(fiber.len(), 3);
        assert_eq!(fiber[0], 1.0 + 2.0 + 7.0 + 8.0);
        assert_eq!(fiber[2], 5.0 + 6.0 + 11.0 + 12.0);
    }

    #[test]
    fn add_rank_one_matches_outer_product() {
        let mut t = DenseTensor::zeros(&[2, 3, 2]);
        let a = [1.0, 2.0];
        let b = [3.0, 0.0, -1.0];
        let c = [1.0, -2.0];
        t.add_rank_one(2.0, &[&a, &b, &c]);
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..2 {
                    let expected = 2.0 * a[i] * b[j] * c[k];
                    assert!((t.get(&[i, j, k]) - expected).abs() < 1e-12);
                }
            }
        }
        // Zero weight is a no-op.
        let before = t.clone();
        t.add_rank_one(0.0, &[&a, &b, &c]);
        assert_eq!(t, before);
    }

    #[test]
    fn arithmetic_and_norms() {
        let t = example_3d();
        let sum = t.add(&t).unwrap();
        assert_eq!(sum.get(&[1, 2, 1]), 24.0);
        let diff = sum.sub(&t).unwrap();
        assert_eq!(diff, t);
        let scaled = t.scale(0.5);
        assert_eq!(scaled.get(&[1, 2, 1]), 6.0);
        let mut t2 = t.clone();
        t2.scale_inplace(2.0);
        assert_eq!(t2, sum);
        let expected_norm = (1..=12).map(|v| (v * v) as f64).sum::<f64>().sqrt();
        assert!((t.frobenius_norm() - expected_norm).abs() < 1e-12);
        assert!((t.inner(&t).unwrap() - expected_norm * expected_norm).abs() < 1e-9);
        assert!(t.inner(&DenseTensor::zeros(&[2, 2])).is_err());
        assert!(t.add(&DenseTensor::zeros(&[2, 2])).is_err());
    }

    #[test]
    fn order_two_tensor_behaves_like_matrix() {
        let t = DenseTensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        // Storage is column-major: element (0,1) = 3.
        assert_eq!(t.get(&[0, 1]), 3.0);
        let unfolded = t.unfold(0).unwrap();
        assert_eq!(unfolded[(0, 1)], 3.0);
        assert_eq!(unfolded[(1, 0)], 2.0);
    }
}
