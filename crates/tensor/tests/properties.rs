//! Property-based tests for the tensor substrate.

use linalg::Matrix;
use proptest::prelude::*;
use tensor::{khatri_rao_list, CpAls, DenseTensor, Hopm, RankRDecomposition};

/// Strategy: a random order-3 tensor with small dimensions.
fn tensor3_strategy() -> impl Strategy<Value = DenseTensor> {
    (2..4usize, 2..4usize, 2..4usize).prop_flat_map(|(a, b, c)| {
        proptest::collection::vec(-3.0..3.0f64, a * b * c)
            .prop_map(move |data| DenseTensor::from_vec(&[a, b, c], data).unwrap())
    })
}

/// Strategy: a rank-1 order-3 tensor built from random vectors.
fn rank1_strategy() -> impl Strategy<Value = (DenseTensor, f64)> {
    (
        proptest::collection::vec(-2.0..2.0f64, 3),
        proptest::collection::vec(-2.0..2.0f64, 4),
        proptest::collection::vec(-2.0..2.0f64, 2),
        0.5..4.0f64,
    )
        .prop_map(|(a, b, c, w)| {
            let mut t = DenseTensor::zeros(&[3, 4, 2]);
            t.add_rank_one(w, &[&a, &b, &c]);
            (t, w)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unfold_fold_roundtrip(t in tensor3_strategy()) {
        for mode in 0..3 {
            let unfolded = t.unfold(mode).unwrap();
            let folded = DenseTensor::fold(&unfolded, mode, t.shape()).unwrap();
            prop_assert_eq!(&folded, &t);
        }
    }

    #[test]
    fn unfolding_preserves_frobenius_norm(t in tensor3_strategy()) {
        for mode in 0..3 {
            let unfolded = t.unfold(mode).unwrap();
            prop_assert!((unfolded.frobenius_norm() - t.frobenius_norm()).abs() < 1e-10);
        }
    }

    #[test]
    fn mode_product_matches_unfolded_matmul(t in tensor3_strategy()) {
        // B = T ×₀ U  ⇔  B₍₀₎ = U · T₍₀₎
        let rows = 3usize;
        let u = Matrix::from_vec(rows, t.shape()[0], (0..rows * t.shape()[0]).map(|i| (i as f64) * 0.1 - 0.4).collect()).unwrap();
        let b = t.mode_product(0, &u).unwrap();
        let lhs = b.unfold(0).unwrap();
        let rhs = u.matmul(&t.unfold(0).unwrap()).unwrap();
        prop_assert!(lhs.sub(&rhs).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn multilinear_form_is_multilinear_in_scaling(t in tensor3_strategy(), s in 0.1..3.0f64) {
        let v0 = vec![1.0, -0.5, 0.3, 0.7][..t.shape()[0]].to_vec();
        let v1 = vec![0.2, 1.0, -1.0, 0.4][..t.shape()[1]].to_vec();
        let v2 = vec![-0.3, 0.8, 1.0, 0.1][..t.shape()[2]].to_vec();
        let base = t.multilinear_form(&[&v0, &v1, &v2]).unwrap();
        let scaled_v0: Vec<f64> = v0.iter().map(|x| s * x).collect();
        let scaled = t.multilinear_form(&[&scaled_v0, &v1, &v2]).unwrap();
        prop_assert!((scaled - s * base).abs() < 1e-9 * (1.0 + base.abs()));
    }

    #[test]
    fn rank1_tensors_are_exactly_recovered(pair in rank1_strategy()) {
        let (t, _) = pair;
        if t.frobenius_norm() < 1e-6 {
            // Degenerate draw (a random vector was nearly zero); skip.
            return Ok(());
        }
        let cp = CpAls::default().decompose(&t, 1).unwrap();
        prop_assert!(cp.relative_error(&t) < 1e-6);
        let (lambda, vecs) = Hopm::default().rank_one(&t).unwrap();
        let mut rec = DenseTensor::zeros(t.shape());
        let refs: Vec<&[f64]> = vecs.iter().map(|v| v.as_slice()).collect();
        rec.add_rank_one(lambda, &refs);
        prop_assert!(rec.sub(&t).unwrap().frobenius_norm() / t.frobenius_norm() < 1e-6);
    }

    #[test]
    fn cp_relative_error_is_at_most_one(t in tensor3_strategy()) {
        if t.frobenius_norm() < 1e-9 {
            return Ok(());
        }
        let cp = CpAls::default().decompose(&t, 2).unwrap();
        let err = cp.relative_error(&t);
        prop_assert!(err <= 1.0 + 1e-9, "relative error {err} exceeds 1");
    }

    #[test]
    fn khatri_rao_matches_rank1_unfolding(
        a in proptest::collection::vec(-2.0..2.0f64, 3),
        b in proptest::collection::vec(-2.0..2.0f64, 2),
        c in proptest::collection::vec(-2.0..2.0f64, 4),
    ) {
        let mut t = DenseTensor::zeros(&[3, 2, 4]);
        t.add_rank_one(1.0, &[&a, &b, &c]);
        let fa = Matrix::column_vector(&a);
        let fb = Matrix::column_vector(&b);
        let fc = Matrix::column_vector(&c);
        let factors = [&fa, &fb, &fc];
        for mode in 0..3 {
            let others: Vec<&Matrix> = (0..3).rev().filter(|&k| k != mode).map(|k| factors[k]).collect();
            let kr = khatri_rao_list(&others).unwrap();
            let expected = factors[mode].matmul_t(&kr).unwrap();
            let unfolded = t.unfold(mode).unwrap();
            prop_assert!(unfolded.sub(&expected).unwrap().max_abs() < 1e-10);
        }
    }

    #[test]
    fn hopm_lambda_bounded_by_frobenius_norm(t in tensor3_strategy()) {
        let (lambda, _) = Hopm::default().rank_one(&t).unwrap();
        prop_assert!(lambda.abs() <= t.frobenius_norm() + 1e-9);
    }

    #[test]
    fn mttkrp_matches_unfolded_khatri_rao_reference(t in tensor3_strategy(), rank in 1..4usize) {
        // The fused kernel must agree with the textbook definition
        // T₍ₙ₎ · KR(A_N, …, A_{n+1}, A_{n−1}, …, A_1) for every mode.
        let factors: Vec<Matrix> = t
            .shape()
            .iter()
            .enumerate()
            .map(|(p, &d)| {
                Matrix::from_vec(
                    d,
                    rank,
                    (0..d * rank)
                        .map(|i| ((i + 7 * p) as f64) * 0.37 - 1.1)
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        let refs: Vec<&Matrix> = factors.iter().collect();
        for mode in 0..3 {
            let fused = t.mttkrp(mode, &refs).unwrap();
            let others: Vec<&Matrix> =
                (0..3).rev().filter(|&k| k != mode).map(|k| &factors[k]).collect();
            let kr = khatri_rao_list(&others).unwrap();
            let reference = t.unfold(mode).unwrap().matmul(&kr).unwrap();
            prop_assert!(
                fused.sub(&reference).unwrap().max_abs() < 1e-10,
                "mode {mode} mismatch"
            );
        }
    }

    #[test]
    fn mttkrp_is_bit_identical_across_thread_counts(t in tensor3_strategy()) {
        let rank = 2;
        let factors: Vec<Matrix> = t
            .shape()
            .iter()
            .map(|&d| {
                Matrix::from_vec(d, rank, (0..d * rank).map(|i| (i as f64).sin()).collect())
                    .unwrap()
            })
            .collect();
        let refs: Vec<&Matrix> = factors.iter().collect();
        for mode in 0..3 {
            let serial = t.mttkrp_with_threads(mode, &refs, 1).unwrap();
            for threads in [2usize, 3, 8] {
                let parallel = t.mttkrp_with_threads(mode, &refs, threads).unwrap();
                prop_assert_eq!(&parallel, &serial);
            }
        }
    }

    #[test]
    fn mode_gram_matches_unfolded_gram(t in tensor3_strategy()) {
        for mode in 0..3 {
            let fused = t.mode_gram(mode).unwrap();
            let reference = t.unfold(mode).unwrap().gram();
            prop_assert!(fused.sub(&reference).unwrap().max_abs() < 1e-10);
        }
    }

    #[test]
    fn contract_all_but_is_rank1_mttkrp(t in tensor3_strategy()) {
        // The fused vector contraction is the r = 1 case of MTTKRP.
        let vectors: Vec<Vec<f64>> = t
            .shape()
            .iter()
            .map(|&d| (0..d).map(|i| 0.5 * (i as f64) - 0.8).collect())
            .collect();
        let refs: Vec<&[f64]> = vectors.iter().map(|v| v.as_slice()).collect();
        let columns: Vec<Matrix> = vectors.iter().map(|v| Matrix::column_vector(v)).collect();
        let col_refs: Vec<&Matrix> = columns.iter().collect();
        for keep in 0..3 {
            let fiber = t.contract_all_but(keep, &refs).unwrap();
            let via_mttkrp = t.mttkrp(keep, &col_refs).unwrap();
            for (i, &v) in fiber.iter().enumerate() {
                prop_assert!((v - via_mttkrp[(i, 0)]).abs() < 1e-10);
            }
        }
    }
}
