//! A shared, persistent worker pool for coarse-grained jobs.
//!
//! The scoped-thread helpers in the crate root parallelize *inside* one kernel call.
//! The [`Pool`] solves the complementary problem: many concurrent *callers* (the
//! serving layer's transform batches, background fits) each wanting CPU time. Routing
//! every such job through one process-wide pool bounds the number of jobs running at
//! once to [`crate::max_threads`], so concurrent transforms queue up instead of
//! oversubscribing the machine — each running job still uses the in-kernel
//! parallelism of the dense kernels, which reads the same thread budget.
//!
//! Jobs are executed in FIFO submission order by a fixed set of detached worker
//! threads. [`Pool::run`] blocks the submitting thread until its job finishes and
//! returns the job's value, which is the shape the micro-batching engine needs: the
//! dispatcher coalesces requests, runs the batched `transform` on the pool, and
//! replies.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    /// Signalled when a job is queued or shutdown begins.
    wake: Condvar,
}

/// A fixed-size worker pool executing boxed jobs in FIFO order.
pub struct Pool {
    inner: Arc<PoolInner>,
    workers: usize,
}

impl Pool {
    /// Spawn a pool with the given number of worker threads (at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
        });
        for i in 0..workers {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("tcca-pool-{i}"))
                .spawn(move || worker_loop(&inner))
                .expect("spawning a pool worker thread");
        }
        Self { inner, workers }
    }

    /// The process-wide shared pool, sized by [`crate::max_threads`] (so
    /// `TCCA_NUM_THREADS` bounds serving concurrency exactly as it bounds the dense
    /// kernels). Created on first use and never torn down.
    pub fn global() -> &'static Pool {
        global_arc()
    }

    /// The [`Pool::global`] pool behind a cloneable handle — the shape components
    /// that *default* to the shared pool but accept a dedicated one (a serving
    /// shard's private execution pool) want to store.
    pub fn shared() -> Arc<Pool> {
        Arc::clone(global_arc())
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Queued jobs not yet picked up by a worker.
    pub fn backlog(&self) -> usize {
        self.inner.state.lock().expect("pool lock").queue.len()
    }

    /// Submit a fire-and-forget job.
    ///
    /// # Panics
    /// Panics if the pool is shutting down (only possible for a dropped non-global
    /// pool; the global pool never shuts down).
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let mut state = self.inner.state.lock().expect("pool lock");
        assert!(!state.shutdown, "spawn on a shut-down pool");
        state.queue.push_back(Box::new(job));
        drop(state);
        self.inner.wake.notify_one();
    }

    /// Submit a job and block until it completes, returning its result.
    ///
    /// # Panics
    /// Re-panics (with a generic message) if the job itself panicked on the worker.
    pub fn run<T, F>(&self, job: F) -> T
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        self.spawn(move || {
            // Ignore a dropped receiver: the caller vanished, the work is discarded.
            let _ = tx.send(job());
        });
        rx.recv()
            .expect("pool job panicked before producing a result")
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().expect("pool lock");
        state.shutdown = true;
        drop(state);
        self.inner.wake.notify_all();
    }
}

/// Backing storage for [`Pool::global`] / [`Pool::shared`]: one `Arc` in a static,
/// so the `&'static` and the cloneable handle are the same pool.
fn global_arc() -> &'static Arc<Pool> {
    static GLOBAL: OnceLock<Arc<Pool>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Pool::new(crate::max_threads())))
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut state = inner.state.lock().expect("pool lock");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = inner.wake.wait(state).expect("pool lock");
            }
        };
        // A panicking job must not kill the worker: the global pool is never
        // respawned, so a dead worker would strand queued jobs (and every caller
        // blocked in `run`) forever. `run` callers observe the panic through their
        // dropped result channel.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_jobs_and_returns_results() {
        let pool = Pool::new(3);
        assert_eq!(pool.workers(), 3);
        assert_eq!(pool.run(|| 6 * 7), 42);
        let s = pool.run(|| "hello".to_string());
        assert_eq!(s, "hello");
    }

    #[test]
    fn spawned_jobs_all_execute() {
        let pool = Pool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        // run() joins behind the spawned jobs of this single-submitter test only
        // once the queue has drained past them on both workers; poll instead.
        for _ in 0..200 {
            if counter.load(Ordering::SeqCst) == 50 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let pool = Arc::new(Pool::new(2));
        let mut handles = Vec::new();
        for t in 0..8 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || pool.run(move || t * t)));
        }
        let mut results: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort_unstable();
        assert_eq!(results, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn panicking_jobs_do_not_kill_workers() {
        // (The expected panic prints a backtrace to stderr; that's harmless noise.)
        let pool = Pool::new(1);
        pool.spawn(|| panic!("job blew up"));
        // The single worker must survive and keep serving.
        assert_eq!(pool.run(|| 7), 7);
    }

    #[test]
    fn zero_workers_is_clamped() {
        let pool = Pool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.run(|| 1), 1);
    }

    #[test]
    fn global_pool_is_shared_and_sized_by_max_threads() {
        let a = Pool::global();
        let b = Pool::global();
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.workers(), crate::max_threads());
        assert_eq!(a.run(|| 5), 5);
        // The cloneable handle is the same pool, not a second one.
        let c = Pool::shared();
        assert!(std::ptr::eq(a, &*c));
        assert_eq!(c.run(|| 8), 8);
    }
}
