//! Minimal scoped-thread work partitioning for the dense kernels.
//!
//! The TCCA pipeline is an **offline** batch computation: every hot kernel (matmul,
//! MTTKRP, covariance-tensor accumulation) is a loop over disjoint blocks of an output
//! buffer. This crate provides exactly that shape of parallelism — split a mutable
//! slice into fixed-size chunks and hand contiguous runs of chunks to scoped threads —
//! with no queues, no work stealing and no persistent pool. `std::thread::scope` keeps
//! everything borrow-checked; spawning a handful of OS threads per multi-millisecond
//! kernel call is noise compared to the kernel itself.
//!
//! ## Determinism
//!
//! Each chunk is computed independently by a pure closure, and every kernel in this
//! workspace fixes each output element's accumulation order (the reduction index
//! always ascends) *independently of where chunk boundaries fall*. That — not the
//! boundary placement, which callers may derive from the thread count for load
//! balance — is the invariant that makes results **bit-identical** across thread
//! counts, including the serial fallback. A kernel whose per-chunk result depended on
//! boundary placement (e.g. a chunk-local reduction combined afterwards) would NOT be
//! deterministic under this scheme. The property tests in
//! `crates/linalg/tests/properties.rs` and `crates/tensor/tests/properties.rs` pin
//! this down.
//!
//! ## Thread-count policy
//!
//! [`max_threads`] reads the `TCCA_NUM_THREADS` environment variable once per process
//! (values `0` or unparsable fall back to the detected parallelism) and otherwise uses
//! [`std::thread::available_parallelism`]. [`threads_for_work`] applies the serial
//! fallback: below [`SERIAL_WORK_THRESHOLD`] estimated flops, spawning threads costs
//! more than it saves and the caller gets `1`.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod pool;

pub use pool::Pool;

use std::sync::OnceLock;

/// Environment variable overriding the detected thread count (read once per process).
pub const ENV_NUM_THREADS: &str = "TCCA_NUM_THREADS";

/// Estimated flop count below which kernels run serially: at ~1 flop/ns, 256k flops is
/// a few hundred microseconds — the regime where thread spawn/join overhead dominates.
pub const SERIAL_WORK_THRESHOLD: usize = 1 << 18;

static MAX_THREADS: OnceLock<usize> = OnceLock::new();

/// The maximum number of worker threads kernels may use.
///
/// `TCCA_NUM_THREADS` (if set to a positive integer) wins; otherwise
/// [`std::thread::available_parallelism`] decides. Always at least 1.
pub fn max_threads() -> usize {
    *MAX_THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var(ENV_NUM_THREADS) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Thread count to use for a kernel performing roughly `flops` floating-point
/// operations: 1 below [`SERIAL_WORK_THRESHOLD`], otherwise [`max_threads`] capped so
/// every thread keeps at least a threshold's worth of work.
pub fn threads_for_work(flops: usize) -> usize {
    if flops < SERIAL_WORK_THRESHOLD {
        1
    } else {
        max_threads().min((flops / SERIAL_WORK_THRESHOLD).max(1))
    }
}

/// Split `data` into chunks of `chunk_len` elements (the last chunk may be shorter) and
/// run `f(chunk_index, chunk)` on every chunk, distributing contiguous runs of chunks
/// over at most `threads` scoped threads.
///
/// With `threads <= 1` (or a single chunk) this degenerates to a plain serial loop with
/// zero thread overhead. Chunk indices are global and independent of `threads`, so `f`
/// can recover absolute positions (e.g. output row numbers) from the index alone.
///
/// # Panics
/// Panics if `chunk_len == 0` while `data` is non-empty.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(chunk_len > 0, "for_each_chunk_mut: chunk_len must be > 0");
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = threads.clamp(1, n_chunks);
    if threads == 1 {
        for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(idx, chunk);
        }
        return;
    }
    // Balanced static partition: the first `rem` threads take `q + 1` chunks each.
    let q = n_chunks / threads;
    let rem = n_chunks % threads;
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        let mut chunk_base = 0usize;
        for t in 0..threads {
            let take_chunks = q + usize::from(t < rem);
            if take_chunks == 0 {
                break;
            }
            let take_elems = (take_chunks * chunk_len).min(rest.len());
            let (head, tail) = rest.split_at_mut(take_elems);
            rest = tail;
            let base = chunk_base;
            chunk_base += take_chunks;
            scope.spawn(move || {
                for (i, chunk) in head.chunks_mut(chunk_len).enumerate() {
                    f(base + i, chunk);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_visit_every_chunk_once() {
        for threads in [1usize, 2, 3, 8, 64] {
            let mut data = vec![0u32; 103];
            for_each_chunk_mut(&mut data, 10, threads, |idx, chunk| {
                for v in chunk.iter_mut() {
                    *v += 1 + idx as u32;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(
                    *v,
                    1 + (i / 10) as u32,
                    "element {i} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn chunk_indices_are_global() {
        let mut data = vec![0usize; 40];
        for_each_chunk_mut(&mut data, 4, 5, |idx, chunk| {
            for v in chunk.iter_mut() {
                *v = idx;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i / 4);
        }
    }

    #[test]
    fn empty_input_is_a_noop() {
        let mut data: Vec<f64> = Vec::new();
        for_each_chunk_mut(&mut data, 8, 4, |_, _| panic!("must not be called"));
    }

    #[test]
    fn threads_for_work_scales_down_small_problems() {
        assert_eq!(threads_for_work(0), 1);
        assert_eq!(threads_for_work(SERIAL_WORK_THRESHOLD - 1), 1);
        assert!(threads_for_work(usize::MAX / 2) >= 1);
        assert!(threads_for_work(SERIAL_WORK_THRESHOLD) <= max_threads());
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }
}
