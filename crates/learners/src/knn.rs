//! k-nearest-neighbour classification.
//!
//! The paper's base learner for the web image annotation experiments: majority vote over
//! the `k` nearest training instances, with `k` chosen from `{1, …, 10}` on a validation
//! split. The classifier accepts either raw feature vectors (Euclidean distance on the
//! reduced representation) or a precomputed distance matrix, which is how the kernel
//! baselines (BSK / AVG kernels) are evaluated: `d(x, y)² = k(x,x) + k(y,y) − 2 k(x,y)`.

use linalg::Matrix;

/// Where neighbour distances come from.
#[derive(Debug, Clone)]
pub enum NeighborSource {
    /// Euclidean distance between feature rows (`N_train × d` training matrix stored).
    Features(Matrix),
    /// Precomputed `N_test × N_train` distance matrix; `predict_precomputed` must be
    /// used in this mode.
    Precomputed,
}

/// A k-nearest-neighbour majority-vote classifier.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    source: NeighborSource,
    labels: Vec<usize>,
    n_classes: usize,
    k: usize,
}

impl KnnClassifier {
    /// Fit (store) the classifier on labeled feature rows (`N × d`).
    pub fn fit(features: &Matrix, labels: &[usize], n_classes: usize, k: usize) -> Self {
        assert_eq!(features.rows(), labels.len(), "rows must match labels");
        assert!(k >= 1, "k must be at least 1");
        Self {
            source: NeighborSource::Features(features.clone()),
            labels: labels.to_vec(),
            n_classes,
            k,
        }
    }

    /// Create a classifier that expects precomputed test-to-train distances.
    pub fn precomputed(labels: &[usize], n_classes: usize, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Self {
            source: NeighborSource::Precomputed,
            labels: labels.to_vec(),
            n_classes,
            k,
        }
    }

    /// The number of neighbours used.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Change `k` (used by validation-based model selection without re-fitting).
    pub fn set_k(&mut self, k: usize) {
        assert!(k >= 1, "k must be at least 1");
        self.k = k;
    }

    /// Predict labels for feature rows (`M × d`).
    pub fn predict(&self, features: &Matrix) -> Vec<usize> {
        let train = match &self.source {
            NeighborSource::Features(train) => train,
            NeighborSource::Precomputed => {
                panic!("predict() called on a precomputed-distance classifier")
            }
        };
        assert_eq!(
            features.cols(),
            train.cols(),
            "train/test dimensionality mismatch"
        );
        let mut predictions = Vec::with_capacity(features.rows());
        for i in 0..features.rows() {
            let query = features.row(i);
            let distances: Vec<f64> = (0..train.rows())
                .map(|j| {
                    let row = train.row(j);
                    let mut acc = 0.0;
                    for (a, b) in query.iter().zip(row.iter()) {
                        let d = a - b;
                        acc += d * d;
                    }
                    acc
                })
                .collect();
            predictions.push(self.vote(&distances));
        }
        predictions
    }

    /// Predict labels from a precomputed `M × N_train` distance matrix.
    pub fn predict_precomputed(&self, distances: &Matrix) -> Vec<usize> {
        assert_eq!(
            distances.cols(),
            self.labels.len(),
            "distance columns must match training size"
        );
        (0..distances.rows())
            .map(|i| self.vote(distances.row(i)))
            .collect()
    }

    /// Majority vote among the k nearest; ties are broken toward the smaller total
    /// distance of the tied classes (then the smaller class index), which keeps the
    /// result deterministic.
    fn vote(&self, distances: &[f64]) -> usize {
        let k = self.k.min(distances.len());
        let mut order: Vec<usize> = (0..distances.len()).collect();
        order.sort_by(|&a, &b| distances[a].partial_cmp(&distances[b]).expect("finite"));
        let mut votes = vec![0usize; self.n_classes];
        let mut dist_sum = vec![0.0f64; self.n_classes];
        for &idx in order.iter().take(k) {
            votes[self.labels[idx]] += 1;
            dist_sum[self.labels[idx]] += distances[idx];
        }
        let mut best = 0usize;
        for c in 1..self.n_classes {
            let better_votes = votes[c] > votes[best];
            let tie_closer = votes[c] == votes[best] && dist_sum[c] < dist_sum[best];
            if better_votes || tie_closer {
                best = c;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered() -> (Matrix, Vec<usize>) {
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.1],
            vec![0.0, 0.2],
            vec![5.0, 5.0],
            vec![5.1, 4.9],
            vec![4.9, 5.1],
        ];
        (Matrix::from_rows(&rows).unwrap(), vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn classifies_clusters() {
        let (x, y) = clustered();
        let model = KnnClassifier::fit(&x, &y, 2, 3);
        let test = Matrix::from_rows(&[vec![0.05, 0.05], vec![5.05, 5.05]]).unwrap();
        assert_eq!(model.predict(&test), vec![0, 1]);
        assert_eq!(model.k(), 3);
    }

    #[test]
    fn k_equals_one_is_nearest_neighbour() {
        let (x, y) = clustered();
        let model = KnnClassifier::fit(&x, &y, 2, 1);
        assert_eq!(model.predict(&x), y);
    }

    #[test]
    fn precomputed_distances_path() {
        let labels = vec![0, 0, 1, 1];
        let model = KnnClassifier::precomputed(&labels, 2, 1);
        // One test instance closest to training item 2 (class 1).
        let d = Matrix::from_rows(&[vec![5.0, 4.0, 0.1, 3.0]]).unwrap();
        assert_eq!(model.predict_precomputed(&d), vec![1]);
    }

    #[test]
    fn tie_break_prefers_closer_class() {
        let labels = vec![0, 1];
        let model = KnnClassifier::precomputed(&labels, 2, 2);
        // One vote each; class 1 is closer in total.
        let d = Matrix::from_rows(&[vec![2.0, 1.0]]).unwrap();
        assert_eq!(model.predict_precomputed(&d), vec![1]);
    }

    #[test]
    fn set_k_changes_behaviour() {
        let labels = vec![0, 1, 1];
        let mut model = KnnClassifier::precomputed(&labels, 2, 1);
        let d = Matrix::from_rows(&[vec![0.1, 0.5, 0.6]]).unwrap();
        assert_eq!(model.predict_precomputed(&d), vec![0]);
        model.set_k(3);
        assert_eq!(model.predict_precomputed(&d), vec![1]);
    }

    #[test]
    #[should_panic(expected = "precomputed")]
    fn predict_on_precomputed_panics() {
        let model = KnnClassifier::precomputed(&[0, 1], 2, 1);
        model.predict(&Matrix::zeros(1, 2));
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_panics() {
        KnnClassifier::fit(&Matrix::zeros(2, 2), &[0, 1], 2, 0);
    }
}
