//! Downstream learners and the evaluation protocol used by the TCCA experiments.
//!
//! The paper never evaluates a dimension-reduction method directly; it always trains a
//! simple classifier on the reduced representation and reports accuracy:
//!
//! * **Regularized least squares (RLS)** for SecStr and Ads (§5.1):
//!   `argmin_w (1/N_l) Σ (wᵀx_n − y_n)² + γ‖w‖²` with `γ = 10⁻²`, a constant feature
//!   appended for the bias, one-vs-rest for multi-class.
//! * **k-nearest neighbours (kNN)** for NUS-WIDE, with `k` selected from `{1,…,10}` on a
//!   validation split; majority vote; also usable with precomputed distances so the
//!   kernel methods (BSK/AVG/KCCA/KTCCA) can share the code path.
//!
//! [`accuracy`] / [`mean_std`] provide the accuracy statistic and the mean ± std
//! aggregation over the paper's five random label draws, and [`select_best`] the
//! validation-based model selection that mirrors "the parameters corresponding to the
//! best performance on the validation set are used for testing".

#![warn(missing_docs)]
#![warn(clippy::all)]

mod knn;
mod metrics;
mod protocol;
mod rls;

pub use knn::{KnnClassifier, NeighborSource};
pub use metrics::{accuracy, mean_std, RunSummary};
pub use protocol::{select_best, select_best_k_for_knn, ModelSelection};
pub use rls::RlsClassifier;
