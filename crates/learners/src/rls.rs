//! Regularized least squares (RLS) classification.
//!
//! The paper's base learner for the SecStr and Ads experiments (§5.1): ridge regression
//! onto ±1 targets (one-vs-rest for more than two classes), with a constant feature
//! appended to absorb the bias and `γ = 10⁻²` following Foster et al. (2008).

use linalg::{ridge_solve, Matrix};

/// A one-vs-rest regularized least squares classifier.
///
/// Instances are rows of an `N × d` feature matrix (the embedding produced by a
/// dimension-reduction method, or raw features for the BSF/CAT baselines).
#[derive(Debug, Clone)]
pub struct RlsClassifier {
    /// Per-class weight vectors, each of length `d + 1` (the last entry is the bias).
    weights: Matrix,
    n_classes: usize,
}

impl RlsClassifier {
    /// Fit the classifier on labeled data.
    ///
    /// * `features` — `N × d` matrix, one instance per row.
    /// * `labels` — class indices in `0..n_classes`.
    /// * `gamma` — ridge penalty γ (the paper uses `1e-2`).
    ///
    /// Panics if the label vector length does not match the number of rows.
    pub fn fit(features: &Matrix, labels: &[usize], n_classes: usize, gamma: f64) -> Self {
        assert_eq!(
            features.rows(),
            labels.len(),
            "feature rows must match label count"
        );
        assert!(n_classes >= 2, "need at least two classes");
        let n = features.rows();
        let d = features.cols();

        // Augment with a constant 1 feature for the bias.
        let mut x = Matrix::zeros(n, d + 1);
        for i in 0..n {
            x.row_mut(i)[..d].copy_from_slice(features.row(i));
            x[(i, d)] = 1.0;
        }

        // Normal equations: (XᵀX + γ N I) W = Xᵀ Y with Y the ±1 indicator targets.
        // The γN scaling matches the paper's 1/N_l factor in front of the squared loss.
        let xtx = x.gram_t();
        let mut targets = Matrix::filled(n, n_classes.max(2), -1.0);
        for (i, &label) in labels.iter().enumerate() {
            targets[(i, label)] = 1.0;
        }
        let xty = x.t_matmul(&targets).expect("shapes agree");
        let weights =
            ridge_solve(&xtx, &xty, gamma * n as f64).expect("ridge system is positive definite");
        Self { weights, n_classes }
    }

    /// Per-class decision scores for a batch of instances (`N × n_classes`).
    pub fn decision_scores(&self, features: &Matrix) -> Matrix {
        let n = features.rows();
        let d = self.weights.rows() - 1;
        assert_eq!(
            features.cols(),
            d,
            "expected {d} features, got {}",
            features.cols()
        );
        let mut scores = Matrix::zeros(n, self.n_classes);
        for i in 0..n {
            let row = features.row(i);
            for c in 0..self.n_classes {
                let mut s = self.weights[(d, c)];
                for (j, &xj) in row.iter().enumerate() {
                    s += xj * self.weights[(j, c)];
                }
                scores[(i, c)] = s;
            }
        }
        scores
    }

    /// Predict class labels by the arg-max decision score.
    pub fn predict(&self, features: &Matrix) -> Vec<usize> {
        let scores = self.decision_scores(features);
        argmax_rows(&scores)
    }

    /// Predict labels from externally averaged decision scores (used by the CCA (AVG)
    /// baseline, which averages the scores of all two-view subsets).
    pub fn predict_from_scores(scores: &Matrix) -> Vec<usize> {
        argmax_rows(scores)
    }

    /// Number of classes the model was trained for.
    pub fn num_classes(&self) -> usize {
        self.n_classes
    }
}

fn argmax_rows(scores: &Matrix) -> Vec<usize> {
    (0..scores.rows())
        .map(|i| {
            let row = scores.row(i);
            let mut best = 0usize;
            let mut best_val = f64::NEG_INFINITY;
            for (c, &v) in row.iter().enumerate() {
                if v > best_val {
                    best_val = v;
                    best = c;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable_data() -> (Matrix, Vec<usize>) {
        // Two well-separated clusters in 2D.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let jitter = (i as f64) * 0.01;
            rows.push(vec![2.0 + jitter, 2.0 - jitter]);
            labels.push(0);
            rows.push(vec![-2.0 - jitter, -2.0 + jitter]);
            labels.push(1);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn fits_separable_binary_problem() {
        let (x, y) = separable_data();
        let model = RlsClassifier::fit(&x, &y, 2, 1e-2);
        let pred = model.predict(&x);
        assert_eq!(pred, y);
        assert_eq!(model.num_classes(), 2);
    }

    #[test]
    fn generalizes_to_new_points() {
        let (x, y) = separable_data();
        let model = RlsClassifier::fit(&x, &y, 2, 1e-2);
        let test = Matrix::from_rows(&[vec![3.0, 3.0], vec![-3.0, -3.0]]).unwrap();
        assert_eq!(model.predict(&test), vec![0, 1]);
    }

    #[test]
    fn multiclass_one_vs_rest() {
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.1, 0.1],
            vec![0.0, 1.0],
            vec![0.1, 1.1],
            vec![-1.0, -1.0],
            vec![-1.1, -0.9],
        ])
        .unwrap();
        let y = vec![0, 0, 1, 1, 2, 2];
        let model = RlsClassifier::fit(&x, &y, 3, 1e-2);
        assert_eq!(model.predict(&x), y);
        let scores = model.decision_scores(&x);
        assert_eq!(scores.shape(), (6, 3));
    }

    #[test]
    fn bias_handles_shifted_data() {
        // Classes separated only by a threshold far from the origin.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            rows.push(vec![100.0 + i as f64]);
            labels.push(0);
            rows.push(vec![90.0 - i as f64]);
            labels.push(1);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let model = RlsClassifier::fit(&x, &labels, 2, 1e-2);
        let correct = model
            .predict(&x)
            .iter()
            .zip(labels.iter())
            .filter(|(a, b)| a == b)
            .count();
        assert!(correct >= 18, "only {correct}/20 correct");
    }

    #[test]
    fn predict_from_scores_argmax() {
        let scores = Matrix::from_rows(&[vec![0.2, 0.9], vec![1.5, -0.5]]).unwrap();
        assert_eq!(RlsClassifier::predict_from_scores(&scores), vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "feature rows")]
    fn mismatched_labels_panic() {
        let x = Matrix::zeros(3, 2);
        RlsClassifier::fit(&x, &[0, 1], 2, 0.1);
    }

    #[test]
    fn heavy_regularization_shrinks_scores() {
        let (x, y) = separable_data();
        let light = RlsClassifier::fit(&x, &y, 2, 1e-4);
        let heavy = RlsClassifier::fit(&x, &y, 2, 1e3);
        let s_light = light.decision_scores(&x).max_abs();
        let s_heavy = heavy.decision_scores(&x).max_abs();
        assert!(s_heavy < s_light);
    }
}
