//! Evaluation metrics and aggregation across repeated runs.

/// Classification accuracy: the fraction of predictions equal to the reference labels.
///
/// Panics if the two slices have different lengths; returns 0 for empty inputs.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "predictions and labels must have the same length"
    );
    if labels.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels.iter())
        .filter(|(a, b)| a == b)
        .count();
    correct as f64 / labels.len() as f64
}

/// Mean and (population) standard deviation of a set of per-run scores — the
/// "mean ± std over five random choices of the labeled instances" the paper reports.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

/// Accuracy summary over repeated runs of one method at one operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Method name as printed in the tables.
    pub method: String,
    /// Per-run accuracies.
    pub accuracies: Vec<f64>,
}

impl RunSummary {
    /// Create a summary for a method.
    pub fn new(method: impl Into<String>, accuracies: Vec<f64>) -> Self {
        Self {
            method: method.into(),
            accuracies,
        }
    }

    /// Mean accuracy across runs.
    pub fn mean(&self) -> f64 {
        mean_std(&self.accuracies).0
    }

    /// Standard deviation across runs.
    pub fn std(&self) -> f64 {
        mean_std(&self.accuracies).1
    }

    /// Format as the paper's `mean±std` percentage string (e.g. `62.36±1.27`).
    pub fn formatted_percent(&self) -> String {
        format!("{:.2}±{:.2}", self.mean() * 100.0, self.std() * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]), 0.75);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[1, 1], &[1, 1]), 1.0);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn accuracy_length_mismatch_panics() {
        accuracy(&[0], &[0, 1]);
    }

    #[test]
    fn mean_std_known_values() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        let (m1, s1) = mean_std(&[3.0]);
        assert_eq!((m1, s1), (3.0, 0.0));
    }

    #[test]
    fn run_summary_formatting() {
        let summary = RunSummary::new("TCCA", vec![0.62, 0.64, 0.63]);
        assert_eq!(summary.method, "TCCA");
        assert!((summary.mean() - 0.63).abs() < 1e-12);
        let s = summary.formatted_percent();
        assert!(s.starts_with("63.00±"), "got {s}");
    }
}
