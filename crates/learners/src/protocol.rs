//! Validation-based model selection.
//!
//! The paper's protocol reserves 20% of the test/unlabeled data as a validation set and,
//! for every method, reports the test accuracy of the hyper-parameter configuration
//! (subspace dimension `r`, regularization `ε`, and `k` for kNN) that performed best on
//! validation. These helpers implement that argmax-on-validation step generically.

use crate::{accuracy, KnnClassifier};
use linalg::Matrix;

/// Result of a validation sweep: the best configuration index, its validation score and
/// all scores.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSelection {
    /// Index of the winning configuration in the candidate list.
    pub best_index: usize,
    /// Validation score of the winner.
    pub best_score: f64,
    /// Score for every candidate, in input order.
    pub scores: Vec<f64>,
}

/// Evaluate `score` on every candidate and pick the argmax (ties go to the earlier
/// candidate, matching "smallest adequate dimension" behaviour).
pub fn select_best<T, F>(candidates: &[T], mut score: F) -> ModelSelection
where
    F: FnMut(&T) -> f64,
{
    assert!(!candidates.is_empty(), "need at least one candidate");
    let scores: Vec<f64> = candidates.iter().map(&mut score).collect();
    let mut best_index = 0;
    for (i, &s) in scores.iter().enumerate() {
        if s > scores[best_index] {
            best_index = i;
        }
    }
    ModelSelection {
        best_index,
        best_score: scores[best_index],
        scores,
    }
}

/// Select `k ∈ candidates` for a kNN classifier by validation accuracy
/// (the paper sweeps `k ∈ {1, …, 10}`).
pub fn select_best_k_for_knn(
    train_features: &Matrix,
    train_labels: &[usize],
    val_features: &Matrix,
    val_labels: &[usize],
    n_classes: usize,
    candidates: &[usize],
) -> usize {
    assert!(!candidates.is_empty(), "need at least one k candidate");
    let selection = select_best(candidates, |&k| {
        let model = KnnClassifier::fit(train_features, train_labels, n_classes, k);
        accuracy(&model.predict(val_features), val_labels)
    });
    candidates[selection.best_index]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_best_picks_argmax() {
        let sel = select_best(&[1, 2, 3, 4], |&x| -((x - 3) as f64).abs());
        assert_eq!(sel.best_index, 2);
        assert_eq!(sel.best_score, 0.0);
        assert_eq!(sel.scores.len(), 4);
    }

    #[test]
    fn select_best_ties_go_to_first() {
        let sel = select_best(&[10, 20], |_| 1.0);
        assert_eq!(sel.best_index, 0);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panic() {
        select_best::<usize, _>(&[], |_| 0.0);
    }

    #[test]
    fn knn_k_selection_prefers_small_k_on_clean_data() {
        let train = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.2, 0.0],
            vec![5.0, 5.0],
            vec![5.2, 5.0],
        ])
        .unwrap();
        let train_labels = vec![0, 0, 1, 1];
        let val = Matrix::from_rows(&[vec![0.1, 0.1], vec![5.1, 5.1]]).unwrap();
        let val_labels = vec![0, 1];
        let k = select_best_k_for_knn(&train, &train_labels, &val, &val_labels, 2, &[1, 3]);
        assert_eq!(k, 1);
    }
}
