//! Property-based tests for the TCCA estimators.

use datasets::GaussianRng;
use linalg::Matrix;
use proptest::prelude::*;
use tcca::{covariance_tensor, DecompositionMethod, Tcca, TccaOptions};

/// Generate three small views driven by a skewed shared latent variable.
fn planted_views(n: usize, seed: u64, noise: f64) -> Vec<Matrix> {
    let mut rng = GaussianRng::new(seed);
    let dims = [4usize, 3, 3];
    let mut views: Vec<Matrix> = dims.iter().map(|&d| Matrix::zeros(d, n)).collect();
    for j in 0..n {
        let t = if rng.bernoulli(0.3) { 1.4 } else { -0.6 } + 0.05 * rng.standard_normal();
        for v in views.iter_mut() {
            for i in 0..v.rows() {
                v[(i, j)] = t * (0.5 + i as f64) + noise * rng.standard_normal();
            }
        }
    }
    views
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn correlations_are_finite_and_sorted(seed in 0u64..500, rank in 1usize..4) {
        let views = planted_views(60, seed, 0.4);
        let model = Tcca::fit(&views, &TccaOptions::with_rank(rank).seed(seed)).unwrap();
        prop_assert_eq!(model.correlations().len(), rank);
        for w in model.correlations().windows(2) {
            prop_assert!(w[0].abs() >= w[1].abs() - 1e-9);
        }
        for &c in model.correlations() {
            prop_assert!(c.is_finite());
        }
    }

    #[test]
    fn transform_is_invariant_to_per_view_shifts(seed in 0u64..200, shift in -5.0..5.0f64) {
        // Adding a constant offset to every feature of a view must not change the model:
        // centering removes it, so both the correlations and the embedding agree.
        let views = planted_views(50, seed, 0.3);
        let mut shifted = views.clone();
        shifted[1].map_inplace(|v| v + shift);
        let opts = TccaOptions::with_rank(2).seed(3);
        let a = Tcca::fit(&views, &opts).unwrap();
        let b = Tcca::fit(&shifted, &opts).unwrap();
        for (x, y) in a.correlations().iter().zip(b.correlations()) {
            prop_assert!((x - y).abs() < 1e-6);
        }
        let za = a.transform(&views).unwrap();
        let zb = b.transform(&shifted).unwrap();
        prop_assert!(za.sub(&zb).unwrap().max_abs() < 1e-6);
    }

    #[test]
    fn embedding_dimensions_follow_rank_and_views(rank in 1usize..4, seed in 0u64..100) {
        let views = planted_views(40, seed, 0.4);
        let model = Tcca::fit(&views, &TccaOptions::with_rank(rank).seed(seed)).unwrap();
        let z = model.transform(&views).unwrap();
        prop_assert_eq!(z.shape(), (40, 3 * rank));
        prop_assert!(z.all_finite());
    }

    #[test]
    fn covariance_tensor_is_permutation_consistent(seed in 0u64..100) {
        // Swapping two views permutes the corresponding tensor modes.
        let views = planted_views(30, seed, 0.5);
        let t012 = covariance_tensor(&views).unwrap();
        let swapped = vec![views[1].clone(), views[0].clone(), views[2].clone()];
        let t102 = covariance_tensor(&swapped).unwrap();
        for i in 0..views[0].rows() {
            for j in 0..views[1].rows() {
                for k in 0..views[2].rows() {
                    let a = t012.get(&[i, j, k]);
                    let b = t102.get(&[j, i, k]);
                    prop_assert!((a - b).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn stronger_noise_never_helps_the_leading_correlation(seed in 0u64..60) {
        let clean = planted_views(80, seed, 0.1);
        let noisy = planted_views(80, seed, 1.5);
        let opts = TccaOptions::with_rank(1).seed(1);
        let c_clean = Tcca::fit(&clean, &opts).unwrap().correlations()[0].abs();
        let c_noisy = Tcca::fit(&noisy, &opts).unwrap().correlations()[0].abs();
        // Allow a small slack for decomposition noise.
        prop_assert!(c_noisy <= c_clean + 0.1, "clean {c_clean} vs noisy {c_noisy}");
    }

    #[test]
    fn hopm_and_als_agree_on_rank_one(seed in 0u64..60) {
        let views = planted_views(70, seed, 0.3);
        let als = Tcca::fit(&views, &TccaOptions::with_rank(1).seed(2)).unwrap();
        let hopm = Tcca::fit(
            &views,
            &TccaOptions::with_rank(1).method(DecompositionMethod::Hopm),
        )
        .unwrap();
        prop_assert!(
            (als.correlations()[0].abs() - hopm.correlations()[0].abs()).abs() < 0.05,
            "ALS {} vs HOPM {}",
            als.correlations()[0],
            hopm.correlations()[0]
        );
    }
}
