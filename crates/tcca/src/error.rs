//! Error type for TCCA / KTCCA.

use std::fmt;

/// Errors reported when fitting or applying TCCA models.
#[derive(Debug, Clone, PartialEq)]
pub enum TccaError {
    /// Inputs had inconsistent shapes or invalid parameters.
    InvalidInput(String),
    /// A linear-algebra routine failed (whitening, Cholesky, …).
    Linalg(linalg::LinalgError),
    /// A tensor operation or decomposition failed.
    Tensor(tensor::TensorError),
}

impl fmt::Display for TccaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TccaError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            TccaError::Linalg(err) => write!(f, "linear algebra failure: {err}"),
            TccaError::Tensor(err) => write!(f, "tensor failure: {err}"),
        }
    }
}

impl std::error::Error for TccaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TccaError::Linalg(e) => Some(e),
            TccaError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<linalg::LinalgError> for TccaError {
    fn from(err: linalg::LinalgError) -> Self {
        TccaError::Linalg(err)
    }
}

impl From<tensor::TensorError> for TccaError {
    fn from(err: tensor::TensorError) -> Self {
        TccaError::Tensor(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_sources() {
        let e = TccaError::InvalidInput("need two views".into());
        assert!(e.to_string().contains("two views"));
        assert!(e.source().is_none());

        let e: TccaError = linalg::LinalgError::NotSquare { rows: 2, cols: 1 }.into();
        assert!(e.source().is_some());

        let e: TccaError = tensor::TensorError::InvalidArgument("rank".into()).into();
        assert!(e.to_string().contains("tensor failure"));
        assert!(e.source().is_some());
    }
}
