//! Linear tensor CCA (paper §4.2–4.3).
//!
//! Pipeline implemented by [`Tcca::fit`]:
//!
//! 1. center every view `X_p` and form the regularized covariances `C̃_pp = C_pp + εI`,
//! 2. compute the whiteners `W_p = C̃_pp^{-1/2}`,
//! 3. build the **whitened covariance tensor**
//!    `M = (1/N) Σ_n (W₁x₁ₙ) ∘ (W₂x₂ₙ) ∘ … ∘ (Wₘxₘₙ)`, which equals
//!    `C₁₂…ₘ ×₁ W₁ ×₂ W₂ … ×ₘ Wₘ` (Theorem 2) but costs one pass over the data,
//! 4. find its rank-`r` CP approximation `M ≈ Σ_k ρ_k u₁⁽ᵏ⁾ ∘ … ∘ uₘ⁽ᵏ⁾` (Eq. 4.10),
//! 5. map back: the canonical vectors are `h_p⁽ᵏ⁾ = W_p u_p⁽ᵏ⁾` and each view is
//!    projected as `Z_p = X_pᵀ W_p U_p` (Eq. 4.11); the final representation is the
//!    concatenation `[Z₁ … Z_m] ∈ R^{N × m·r}`.

use crate::{Result, TccaError, TccaOptions};
use linalg::{center_rows, covariance, Matrix};
use tensor::DenseTensor;

/// Samples per block of the chunked moment-tensor accumulation. 64 keeps the
/// Khatri–Rao block (`64 × Π_{p≥2} d_p`) cache-resident at paper-scale dimensions
/// while amortizing the GEMM over enough columns to pay off. Fixed (never derived
/// from the thread count) so results are reproducible run to run.
const MOMENT_CHUNK: usize = 64;

/// Accumulate the `m`-th-order moment tensor `(1/N) Σ_n y₁ₙ ∘ y₂ₙ ∘ … ∘ yₘₙ` of
/// already-centered (or whitened) `d_p × N` views.
///
/// Instead of one [`DenseTensor::add_rank_one`] scatter per sample — which walks the
/// whole tensor per sample with per-sample column allocations — this builds the tensor
/// GEMM-style over sample chunks. With the first-index-fastest layout, the flat storage
/// *is* the row-major `(Π_{p≥2} d_p) × d₁` matrix `unfold₁(M)ᵀ`, and for each chunk of
/// `c` samples `unfold₁(M)ᵀ += Kᵀ B` where row `j` of `K` (`c × Π_{p≥2} d_p`) is the
/// Khatri–Rao column `y_mⱼ ⊗ … ⊗ y₂ⱼ` and row `j` of `B` (`c × d₁`) is `y₁ⱼᵀ` — for
/// order 3 this is exactly `unfold₁(M) = Y₁ (Y₃ ⊙ Y₂)ᵀ / N` built chunk by chunk.
/// All scratch buffers (the per-view column buffers and both chunk matrices) are
/// allocated once and reused across chunks.
fn moment_tensor(views: &[Matrix]) -> Result<DenseTensor> {
    let n = views[0].cols();
    let shape: Vec<usize> = views.iter().map(|v| v.rows()).collect();
    let d0 = shape[0];
    let rest: usize = shape[1..].iter().product::<usize>().max(1);
    let chunk = MOMENT_CHUNK.min(n.max(1));
    // Flat accumulator: row-major (rest × d0) == the tensor's first-index-fastest data.
    let mut acc = Matrix::zeros(rest, d0);
    // Reused scratch: sample columns of views 1.., the KR block and the view-0 block.
    let mut col_bufs: Vec<Vec<f64>> = shape[1..].iter().map(|&d| vec![0.0; d]).collect();
    let mut kr_block = Matrix::zeros(chunk, rest);
    let mut b_block = Matrix::zeros(chunk, d0);
    for start in (0..n).step_by(chunk) {
        let c = chunk.min(n - start);
        for j in 0..c {
            let sample = start + j;
            let b_row = b_block.row_mut(j);
            for (i, b) in b_row.iter_mut().enumerate() {
                *b = views[0][(i, sample)];
            }
            for (buf, v) in col_bufs.iter_mut().zip(views[1..].iter()) {
                for (i, x) in buf.iter_mut().enumerate() {
                    *x = v[(i, sample)];
                }
            }
            kr_expand_row(kr_block.row_mut(j), &col_bufs);
        }
        // Zero the tail rows of a short final chunk so the full-height GEMM adds 0.
        for j in c..chunk {
            kr_block.row_mut(j).fill(0.0);
        }
        kr_block
            .t_matmul_acc(&b_block, &mut acc)
            .map_err(tensor_shape_bug)?;
    }
    let weight = 1.0 / n.max(1) as f64;
    let mut data = acc.into_vec();
    for v in &mut data {
        *v *= weight;
    }
    DenseTensor::from_vec(&shape, data).map_err(|e| TccaError::InvalidInput(e.to_string()))
}

fn tensor_shape_bug(e: linalg::LinalgError) -> TccaError {
    TccaError::InvalidInput(format!("internal moment-tensor shape error: {e}"))
}

/// Fill `row` (length `Π d_k`) with the Khatri–Rao column `v_L ⊗ … ⊗ v_1` of the
/// per-view sample columns, first view's index varying fastest (matching the tensor
/// layout). Expands in place: after step `k` the leading `Π_{l≤k} d_l` entries hold the
/// partial product, processed backwards so nothing is overwritten before use.
fn kr_expand_row(row: &mut [f64], columns: &[Vec<f64>]) {
    if columns.is_empty() {
        if let Some(first) = row.first_mut() {
            *first = 1.0;
        }
        return;
    }
    let mut len = columns[0].len();
    row[..len].copy_from_slice(&columns[0]);
    for col in &columns[1..] {
        for j in (1..col.len()).rev() {
            let cj = col[j];
            let (head, tail) = row.split_at_mut(j * len);
            for (t, &h) in tail[..len].iter_mut().zip(head[..len].iter()) {
                *t = h * cj;
            }
        }
        let c0 = col[0];
        for x in row[..len].iter_mut() {
            *x *= c0;
        }
        len *= col.len();
    }
}

/// Build the (centered) covariance tensor `C₁₂…ₘ = (1/N) Σ_n x₁ₙ ∘ x₂ₙ ∘ … ∘ xₘₙ` of a
/// set of `d_p × N` views. Exposed mainly for tests and the benchmark harness; `Tcca`
/// itself accumulates the whitened tensor directly.
pub fn covariance_tensor(views: &[Matrix]) -> Result<DenseTensor> {
    check_views(views)?;
    let centered: Vec<Matrix> = views.iter().map(|v| center_rows(v).0).collect();
    moment_tensor(&centered)
}

/// Build the whitened covariance tensor `M = C₁₂…ₘ ×₁ W₁ … ×ₘ Wₘ` given per-view
/// whiteners, in a single pass over the data.
pub fn whitened_covariance_tensor(
    centered_views: &[Matrix],
    whiteners: &[Matrix],
) -> Result<DenseTensor> {
    if centered_views.len() != whiteners.len() {
        return Err(TccaError::InvalidInput(format!(
            "{} views but {} whiteners",
            centered_views.len(),
            whiteners.len()
        )));
    }
    // Whitened data Y_p = W_p X_p (d_p × N).
    let mut whitened = Vec::with_capacity(centered_views.len());
    for (x, w) in centered_views.iter().zip(whiteners.iter()) {
        whitened.push(w.matmul(x)?);
    }
    moment_tensor(&whitened)
}

/// A fitted linear TCCA model.
#[derive(Debug, Clone)]
pub struct Tcca {
    means: Vec<Vec<f64>>,
    /// Per-view projections `H_p = W_p U_p` (`d_p × r`).
    projections: Vec<Matrix>,
    /// Canonical correlations `ρ_k` (the CP weights), in decreasing magnitude.
    correlations: Vec<f64>,
    /// CP factors `U_p` of the whitened covariance tensor (`d_p × r`), kept to
    /// warm-start streaming refits. Empty on models loaded from files persisted
    /// before factors were recorded.
    factors: Vec<Matrix>,
    options: TccaOptions,
}

impl Tcca {
    /// Fit TCCA on `m ≥ 2` views (`d_p × N` matrices sharing the instance axis).
    pub fn fit(views: &[Matrix], options: &TccaOptions) -> Result<Self> {
        check_views(views)?;
        if options.rank == 0 {
            return Err(TccaError::InvalidInput("rank must be positive".into()));
        }

        // 1–2: center, regularize, whiten.
        let mut means = Vec::with_capacity(views.len());
        let mut centered = Vec::with_capacity(views.len());
        let mut whiteners = Vec::with_capacity(views.len());
        for v in views {
            let (x, mean) = center_rows(v);
            let mut c = covariance(&x);
            c.add_diagonal(options.epsilon);
            whiteners.push(c.inverse_sqrt_spd(1e-12)?);
            centered.push(x);
            means.push(mean);
        }

        // 3: whitened covariance tensor M.
        let m = whitened_covariance_tensor(&centered, &whiteners)?;

        // 4: rank-r decomposition M ≈ Σ ρ_k u₁ ∘ … ∘ u_m.
        let cp = options.decompose(&m, options.rank)?;

        // 5: back-map the factors through the whiteners.
        let mut projections = Vec::with_capacity(views.len());
        for (p, w) in whiteners.iter().enumerate() {
            projections.push(w.matmul(&cp.factors[p])?);
        }

        Ok(Self {
            means,
            projections,
            correlations: cp.weights,
            factors: cp.factors,
            options: options.clone(),
        })
    }

    /// Fit TCCA from accumulated sufficient statistics instead of raw samples: the
    /// per-view `means`, the per-view covariance blocks `C_pp`, and the centered
    /// covariance tensor `C₁₂…ₘ` — all derivable from mergeable streaming moments.
    ///
    /// The whitened tensor is formed as `M = C₁₂…ₘ ×₁ W₁ … ×ₘ Wₘ` (Theorem 2's
    /// mode-product identity, the path [`whitened_covariance_tensor`] avoids when raw
    /// data is at hand). When `warm_start` carries a previous model's
    /// [`Tcca::factors`], the decomposition is seeded from them and typically
    /// converges in a few sweeps. Returns the model and the sweep count.
    pub fn fit_from_moments(
        means: Vec<Vec<f64>>,
        view_covariances: &[Matrix],
        covariance_tensor: &DenseTensor,
        options: &TccaOptions,
        warm_start: Option<&[Matrix]>,
    ) -> Result<(Self, usize)> {
        if options.rank == 0 {
            return Err(TccaError::InvalidInput("rank must be positive".into()));
        }
        let m = means.len();
        if m < 2 {
            return Err(TccaError::InvalidInput(
                "TCCA needs at least two views".into(),
            ));
        }
        if view_covariances.len() != m || covariance_tensor.order() != m {
            return Err(TccaError::InvalidInput(format!(
                "inconsistent moment arity: {m} means, {} covariances, order-{} tensor",
                view_covariances.len(),
                covariance_tensor.order()
            )));
        }
        for (p, (mean, c)) in means.iter().zip(view_covariances.iter()).enumerate() {
            let d = mean.len();
            if c.rows() != d || c.cols() != d || covariance_tensor.shape()[p] != d {
                return Err(TccaError::InvalidInput(format!(
                    "view {p}: mean has {d} entries but covariance is {}x{} and tensor \
                     dimension is {}",
                    c.rows(),
                    c.cols(),
                    covariance_tensor.shape()[p]
                )));
            }
        }

        let mut whiteners = Vec::with_capacity(m);
        for c in view_covariances {
            let mut c = c.clone();
            c.add_diagonal(options.epsilon);
            whiteners.push(c.inverse_sqrt_spd(1e-12)?);
        }

        let mut whitened = covariance_tensor.clone();
        for (p, w) in whiteners.iter().enumerate() {
            whitened = whitened
                .mode_product(p, w)
                .map_err(|e| TccaError::InvalidInput(e.to_string()))?;
        }

        let (cp, sweeps) = options.decompose_sweeps(&whitened, options.rank, warm_start)?;

        let mut projections = Vec::with_capacity(m);
        for (p, w) in whiteners.iter().enumerate() {
            projections.push(w.matmul(&cp.factors[p])?);
        }

        Ok((
            Self {
                means,
                projections,
                correlations: cp.weights,
                factors: cp.factors,
                options: options.clone(),
            },
            sweeps,
        ))
    }

    /// Rebuild a fitted model from its parts (the persistence path).
    pub fn from_parts(
        means: Vec<Vec<f64>>,
        projections: Vec<Matrix>,
        correlations: Vec<f64>,
        options: TccaOptions,
    ) -> Result<Self> {
        if means.len() != projections.len() {
            return Err(TccaError::InvalidInput(format!(
                "{} means but {} projections",
                means.len(),
                projections.len()
            )));
        }
        for (p, (mean, proj)) in means.iter().zip(projections.iter()).enumerate() {
            if mean.len() != proj.rows() {
                return Err(TccaError::InvalidInput(format!(
                    "view {p}: mean has {} entries but projection has {} rows",
                    mean.len(),
                    proj.rows()
                )));
            }
        }
        Ok(Self {
            means,
            projections,
            correlations,
            factors: Vec::new(),
            options,
        })
    }

    /// Attach the CP factors `U_p` of the whitened tensor to a rebuilt model (the
    /// persistence path for files that recorded them). Each factor must have the same
    /// row count as the corresponding projection.
    pub fn with_factors(mut self, factors: Vec<Matrix>) -> Result<Self> {
        if !factors.is_empty() {
            if factors.len() != self.projections.len() {
                return Err(TccaError::InvalidInput(format!(
                    "{} factor matrices for {} views",
                    factors.len(),
                    self.projections.len()
                )));
            }
            for (p, (f, proj)) in factors.iter().zip(self.projections.iter()).enumerate() {
                if f.rows() != proj.rows() {
                    return Err(TccaError::InvalidInput(format!(
                        "view {p}: factor has {} rows but projection has {}",
                        f.rows(),
                        proj.rows()
                    )));
                }
            }
        }
        self.factors = factors;
        Ok(self)
    }

    /// The per-view training means subtracted before projecting.
    pub fn means(&self) -> &[Vec<f64>] {
        &self.means
    }

    /// The canonical correlations `ρ_k` discovered by the decomposition (one per
    /// component, sorted by decreasing magnitude).
    pub fn correlations(&self) -> &[f64] {
        &self.correlations
    }

    /// The per-view projection matrices `H_p = C̃_pp^{-1/2} U_p` (`d_p × r`).
    pub fn projections(&self) -> &[Matrix] {
        &self.projections
    }

    /// The CP factors `U_p` of the whitened covariance tensor (`d_p × r`), the seed
    /// for warm-started refits. Empty on models loaded from files persisted before
    /// factors were recorded.
    pub fn factors(&self) -> &[Matrix] {
        &self.factors
    }

    /// Number of views the model was fitted on.
    pub fn num_views(&self) -> usize {
        self.projections.len()
    }

    /// The options the model was fitted with.
    pub fn options(&self) -> &TccaOptions {
        &self.options
    }

    /// Project a single view (`d_p × M` matrix of new or training instances) into the
    /// common subspace, producing an `M × r` embedding `Z_p = X_pᵀ H_p`.
    pub fn transform_view(&self, which: usize, view: &Matrix) -> Result<Matrix> {
        if which >= self.projections.len() {
            return Err(TccaError::InvalidInput(format!(
                "view index {which} out of range for {} views",
                self.projections.len()
            )));
        }
        // One-part view through the shifted GEMM: centering happens while the
        // kernel packs, so no centered copy of the input is ever allocated. The
        // result is bit-identical to clone-center-then-`t_matmul` (property-tested).
        self.transform_view_cols(which, &linalg::ColsView::from_matrices([view])?)
    }

    /// Zero-copy variant of [`Tcca::transform_view`]: project the horizontal
    /// concatenation of borrowed column blocks (a coalesced serving batch) without
    /// materializing it — the training means are subtracted while the blocked GEMM
    /// packs its panels, so the result is **bit-identical** to stitching the blocks
    /// and calling [`Tcca::transform_view`].
    pub fn transform_view_cols(&self, which: usize, cols: &linalg::ColsView<'_>) -> Result<Matrix> {
        if which >= self.projections.len() {
            return Err(TccaError::InvalidInput(format!(
                "view index {which} out of range for {} views",
                self.projections.len()
            )));
        }
        let proj = &self.projections[which];
        if cols.rows() != proj.rows() {
            return Err(TccaError::InvalidInput(format!(
                "view {which} has {} features but the model expects {}",
                cols.rows(),
                proj.rows()
            )));
        }
        Ok(cols.shifted_t_matmul(Some(&self.means[which]), proj)?)
    }

    /// Project every view and concatenate the per-view embeddings into the final
    /// `M × (m · r)` representation (paper §4.3, following Foster et al.).
    pub fn transform(&self, views: &[Matrix]) -> Result<Matrix> {
        if views.len() != self.projections.len() {
            return Err(TccaError::InvalidInput(format!(
                "expected {} views, got {}",
                self.projections.len(),
                views.len()
            )));
        }
        let mut out = self.transform_view(0, &views[0])?;
        for (p, v) in views.iter().enumerate().skip(1) {
            out = out.hstack(&self.transform_view(p, v)?)?;
        }
        Ok(out)
    }

    /// Evaluate the high-order canonical correlation (Theorem 1) of the fitted model's
    /// `k`-th component on held-out views: `ρ = (z₁ ⊙ … ⊙ z_m)ᵀ e / M` with each `z_p`
    /// normalized to unit variance. Useful for diagnostics and tests.
    pub fn component_correlation(&self, views: &[Matrix], component: usize) -> Result<f64> {
        if component >= self.correlations.len() {
            return Err(TccaError::InvalidInput(format!(
                "component {component} out of range for rank {}",
                self.correlations.len()
            )));
        }
        let m = views.len();
        let n = views[0].cols();
        let mut zs = Vec::with_capacity(m);
        for (p, v) in views.iter().enumerate() {
            let z = self.transform_view(p, v)?;
            let mut col = z.column(component);
            // Normalize to unit norm (the constraint z_pᵀ z_p = 1 of Eq. 4.5).
            let norm = col.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-300 {
                for x in &mut col {
                    *x /= norm;
                }
            }
            zs.push(col);
        }
        let mut rho = 0.0;
        for j in 0..n {
            let mut prod = 1.0;
            for z in &zs {
                prod *= z[j];
            }
            rho += prod;
        }
        Ok(rho)
    }
}

fn check_views(views: &[Matrix]) -> Result<()> {
    if views.len() < 2 {
        return Err(TccaError::InvalidInput(
            "TCCA needs at least two views".into(),
        ));
    }
    let n = views[0].cols();
    if n == 0 {
        return Err(TccaError::InvalidInput("views hold no instances".into()));
    }
    for (p, v) in views.iter().enumerate() {
        if v.cols() != n {
            return Err(TccaError::InvalidInput(format!(
                "view {p} has {} instances, expected {n}",
                v.cols()
            )));
        }
        if v.rows() == 0 {
            return Err(TccaError::InvalidInput(format!("view {p} has no features")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DecompositionMethod;
    use datasets::GaussianRng;

    /// Views sharing a strong 1-D latent signal observable in all three views.
    ///
    /// The latent is deliberately **skewed** (a two-point mixture with unequal masses):
    /// the order-3 canonical correlation TCCA maximizes is a third cross-moment, which
    /// vanishes for symmetric latents — exactly why the paper's datasets (binary
    /// indicators, histograms) are the natural habitat of the method.
    fn shared_signal_views(n: usize, seed: u64, noise: f64) -> Vec<Matrix> {
        let mut rng = GaussianRng::new(seed);
        let dims = [5usize, 4, 3];
        let mut views: Vec<Matrix> = dims.iter().map(|&d| Matrix::zeros(d, n)).collect();
        for j in 0..n {
            let t = if rng.bernoulli(0.25) { 1.6 } else { -0.4 } + 0.05 * rng.standard_normal();
            for v in views.iter_mut() {
                for i in 0..v.rows() {
                    v[(i, j)] = t * (i as f64 + 1.0) + noise * rng.standard_normal();
                }
            }
        }
        views
    }

    #[test]
    fn covariance_tensor_matches_manual_small_case() {
        // Two instances, tiny dims: verify a couple of entries by hand.
        let v1 = Matrix::from_rows(&[vec![1.0, -1.0]]).unwrap(); // 1 x 2, mean 0
        let v2 = Matrix::from_rows(&[vec![2.0, -2.0], vec![0.0, 0.0]]).unwrap(); // 2 x 2
        let v3 = Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap(); // constant => centered to 0
        let t = covariance_tensor(&[v1, v2, v3]).unwrap();
        assert_eq!(t.shape(), &[1, 2, 1]);
        // Third view centers to zero, so every entry must be zero.
        assert_eq!(t.get(&[0, 0, 0]), 0.0);
        assert_eq!(t.get(&[0, 1, 0]), 0.0);

        let v1 = Matrix::from_rows(&[vec![1.0, -1.0]]).unwrap();
        let v2 = Matrix::from_rows(&[vec![2.0, -2.0]]).unwrap();
        let v3 = Matrix::from_rows(&[vec![3.0, -3.0]]).unwrap();
        let t = covariance_tensor(&[v1, v2, v3]).unwrap();
        // (1/2) [1*2*3 + (-1)(-2)(-3)] = (1/2)(6 - 6) = 0 — odd moments cancel.
        assert!((t.get(&[0, 0, 0])).abs() < 1e-12);
    }

    #[test]
    fn whitened_tensor_equals_mode_products_of_covariance_tensor() {
        let views = shared_signal_views(60, 5, 0.3);
        let centered: Vec<Matrix> = views.iter().map(|v| center_rows(v).0).collect();
        let mut whiteners = Vec::new();
        for x in &centered {
            let mut c = covariance(x);
            c.add_diagonal(1e-2);
            whiteners.push(c.inverse_sqrt_spd(1e-12).unwrap());
        }
        let direct = whitened_covariance_tensor(&centered, &whiteners).unwrap();
        let mut via_modes = covariance_tensor(&views).unwrap();
        for (p, w) in whiteners.iter().enumerate() {
            via_modes = via_modes.mode_product(p, w).unwrap();
        }
        assert!(direct.sub(&via_modes).unwrap().frobenius_norm() < 1e-9);
    }

    #[test]
    fn recovers_strong_shared_correlation() {
        let views = shared_signal_views(400, 6, 0.15);
        let model = Tcca::fit(&views, &TccaOptions::with_rank(2)).unwrap();
        assert!(
            model.correlations()[0] > 0.8,
            "leading canonical correlation {:?}",
            model.correlations()
        );
        // The empirical high-order correlation of the first component dominates the
        // second. (Its absolute value scales like 1/√N because the z_p are normalized
        // to unit norm, so we compare components rather than testing a magnitude.)
        let rho0 = model.component_correlation(&views, 0).unwrap();
        let rho1 = model.component_correlation(&views, 1).unwrap();
        assert!(
            rho0.abs() > rho1.abs(),
            "component 0 ({rho0}) should dominate component 1 ({rho1})"
        );
    }

    #[test]
    fn transform_shapes_and_concatenation() {
        let views = shared_signal_views(80, 7, 0.3);
        let model = Tcca::fit(&views, &TccaOptions::with_rank(3)).unwrap();
        assert_eq!(model.num_views(), 3);
        let z = model.transform(&views).unwrap();
        assert_eq!(z.shape(), (80, 9));
        let z0 = model.transform_view(0, &views[0]).unwrap();
        assert_eq!(z0.shape(), (80, 3));
        // Out-of-sample projection works on fewer instances.
        let subset = views[0].select_columns(&[0, 1, 2, 3]);
        assert_eq!(model.transform_view(0, &subset).unwrap().shape(), (4, 3));
    }

    #[test]
    fn all_decomposition_methods_agree_on_dominant_component() {
        let views = shared_signal_views(250, 8, 0.2);
        let mut leading = Vec::new();
        for method in [
            DecompositionMethod::Als,
            DecompositionMethod::Hopm,
            DecompositionMethod::PowerMethod,
        ] {
            let opts = TccaOptions::with_rank(1).method(method);
            let model = Tcca::fit(&views, &opts).unwrap();
            leading.push(model.correlations()[0].abs());
        }
        for pair in leading.windows(2) {
            assert!(
                (pair[0] - pair[1]).abs() < 0.05,
                "methods disagree: {leading:?}"
            );
        }
    }

    #[test]
    fn regularization_shrinks_correlations() {
        let views = shared_signal_views(150, 9, 0.3);
        let light = Tcca::fit(&views, &TccaOptions::with_rank(1).epsilon(1e-4)).unwrap();
        let heavy = Tcca::fit(&views, &TccaOptions::with_rank(1).epsilon(10.0)).unwrap();
        assert!(heavy.correlations()[0].abs() < light.correlations()[0].abs());
    }

    #[test]
    fn two_view_tcca_behaves_like_cca() {
        // With m = 2 the covariance tensor is the cross-covariance matrix and TCCA's
        // leading correlation should match two-view CCA closely.
        let views = shared_signal_views(300, 10, 0.2);
        let two = vec![views[0].clone(), views[1].clone()];
        let model = Tcca::fit(&two, &TccaOptions::with_rank(1).epsilon(1e-3)).unwrap();
        assert!(model.correlations()[0] > 0.9);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let views = shared_signal_views(20, 11, 0.3);
        assert!(Tcca::fit(&views[..1], &TccaOptions::default()).is_err());
        assert!(Tcca::fit(&views, &TccaOptions::with_rank(0)).is_err());
        let mut bad = views.clone();
        bad[1] = Matrix::zeros(4, 19);
        assert!(Tcca::fit(&bad, &TccaOptions::default()).is_err());
        let empty = vec![Matrix::zeros(3, 0), Matrix::zeros(2, 0)];
        assert!(Tcca::fit(&empty, &TccaOptions::default()).is_err());

        let model = Tcca::fit(&views, &TccaOptions::with_rank(1)).unwrap();
        assert!(model.transform(&views[..2]).is_err());
        assert!(model.transform_view(5, &views[0]).is_err());
        assert!(model.transform_view(0, &Matrix::zeros(99, 5)).is_err());
        assert!(model.component_correlation(&views, 7).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let views = shared_signal_views(60, 12, 0.3);
        let a = Tcca::fit(&views, &TccaOptions::with_rank(2).seed(5)).unwrap();
        let b = Tcca::fit(&views, &TccaOptions::with_rank(2).seed(5)).unwrap();
        assert_eq!(a.projections()[0], b.projections()[0]);
        assert_eq!(a.correlations(), b.correlations());
    }
}
