//! Kernel tensor CCA (paper §4.4).
//!
//! KTCCA lifts every view into a reproducing-kernel Hilbert space and maximizes the
//! same high-order correlation over the dual coefficients `a_p` (Representer theorem,
//! Eq. 4.12–4.13). The constraints get the PLS-style regularizer of Hardoon et al.:
//! `a_pᵀ (K_p² + εK_p) a_p = 1` (Eq. 4.14). Writing the Cholesky factorization
//! `K_p² + εK_p = L_pᵀ L_p` and `b_p = L_p a_p`, the problem reduces (Eq. 4.15) to the
//! best rank-r approximation of the whitened **Gram tensor**
//! `S = K₁₂…ₘ ×₁ (L₁^{-1})ᵀ ×₂ … ×ₘ (Lₘ^{-1})ᵀ`, where by Theorem 3
//! `K₁₂…ₘ = (1/N) Σ_n k₁ₙ ∘ k₂ₙ ∘ … ∘ kₘₙ` with `k_pn` the `n`-th column of `K_p`.
//! The projections are `Z_p = K_p L_p^{-1} B_p` (Eq. 4.16).
//!
//! The complexity is governed by `N` instead of the feature dimensions
//! (space `O(Nᵐ)`, time `O(t·r·Nᵐ)`, §4.5), so KTCCA targets small-N / huge-d problems
//! — the paper uses a 500-image subset for the non-linear experiments.

use crate::{Result, TccaError, TccaOptions};
use linalg::{nystrom_eig, Cholesky, Matrix};
use tensor::DenseTensor;

/// Options for [`Ktcca`]; currently identical to [`TccaOptions`] (the regularizer ε is
/// interpreted as the PLS penalty of Eq. 4.14).
pub type KtccaOptions = TccaOptions;

/// A fitted kernel TCCA model.
#[derive(Debug, Clone)]
pub struct Ktcca {
    /// Per-view dual coefficient matrices `A_p = L_p^{-1} B_p` (`N × r`).
    coefficients: Vec<Matrix>,
    /// Canonical correlations `ρ_k` (CP weights of the whitened Gram tensor).
    correlations: Vec<f64>,
    /// Number of training instances the kernels were computed on.
    n_train: usize,
}

impl Ktcca {
    /// Fit KTCCA on `m ≥ 2` **centered** `N × N` Gram matrices (one per view).
    ///
    /// Center the kernels first (e.g. with `datasets::center_kernel`); centering in
    /// feature space plays the role of the zero-mean assumption of the linear model.
    pub fn fit(kernels: &[Matrix], options: &KtccaOptions) -> Result<Self> {
        if kernels.len() < 2 {
            return Err(TccaError::InvalidInput(
                "KTCCA needs at least two views".into(),
            ));
        }
        let n = kernels[0].rows();
        if n == 0 {
            return Err(TccaError::InvalidInput("kernels are empty".into()));
        }
        for (p, k) in kernels.iter().enumerate() {
            if !k.is_square() || k.rows() != n {
                return Err(TccaError::InvalidInput(format!(
                    "kernel {p} must be {n}x{n}, got {}x{}",
                    k.rows(),
                    k.cols()
                )));
            }
        }
        if options.rank == 0 {
            return Err(TccaError::InvalidInput("rank must be positive".into()));
        }

        // Whitening factors: K_p² + εK_p (+ jitter for the centered kernel's null space),
        // Cholesky-factorized as LᵀL; we need L^{-1}.
        let mut inv_lowers = Vec::with_capacity(kernels.len());
        for k in kernels {
            let mut reg = k.matmul(k)?;
            let scaled = k.scale(options.epsilon);
            reg = reg.add(&scaled)?;
            // Jitter keeps the factorization valid when the centered kernel is singular.
            let jitter = 1e-10 * (reg.trace() / n as f64).max(1.0);
            reg.add_diagonal(jitter);
            let chol = Cholesky::new(&reg)?;
            inv_lowers.push(chol.inverse_lower());
        }

        // Whitened Gram tensor S = (1/N) Σ_n (L₁^{-T} k₁ₙ) ∘ … ∘ (Lₘ^{-T} kₘₙ).
        // (S = K₁₂…ₘ ×_p (L_p^{-1})ᵀ; accumulating per instance avoids the O(N^m) mode
        // products on top of the O(N^m) tensor itself.)
        let mut whitened_columns = Vec::with_capacity(kernels.len());
        for (k, linv) in kernels.iter().zip(inv_lowers.iter()) {
            // (L^{-1})ᵀ has shape N × N; columns of K map through it: Y = (L^{-1})ᵀ K.
            let y = linv.t_matmul(k)?;
            whitened_columns.push(y);
        }
        let shape = vec![n; kernels.len()];
        let mut s = DenseTensor::zeros(&shape);
        let weight = 1.0 / n as f64;
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); kernels.len()];
        for j in 0..n {
            for (p, y) in whitened_columns.iter().enumerate() {
                cols[p] = y.column(j);
            }
            let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
            s.add_rank_one(weight, &refs);
        }

        // Rank-r decomposition and back-mapping a_p = L_p^{-1} b_p.
        let cp = options.decompose(&s, options.rank)?;
        let mut coefficients = Vec::with_capacity(kernels.len());
        for (p, linv) in inv_lowers.iter().enumerate() {
            coefficients.push(linv.matmul(&cp.factors[p])?);
        }

        Ok(Self {
            coefficients,
            correlations: cp.weights,
            n_train: n,
        })
    }

    /// Fit KTCCA through a seeded Nyström landmark factorization of each kernel.
    ///
    /// The exact path is `O(N³)` per view (Cholesky of `K² + εK`) plus an `O(Nᵐ)`
    /// whitened Gram tensor. This path approximates each centered kernel as
    /// `K ≈ UΛUᵀ` from `landmarks ≪ N` seeded landmark columns
    /// ([`linalg::nystrom_eig`]), so `K² + εK ≈ U(Λ² + εΛ)Uᵀ` and the whitened view
    /// collapses to the `m × N` matrix `Z = (Λ² + εΛ)^{-1/2} Λ Uᵀ` — the Gram
    /// tensor shrinks from `O(Nᵐ)` to `O(mᵐ)` while the dual coefficients keep
    /// their exact-path shape (`N × r`, via `A_p = U (Λ² + εΛ)^{-1/2} B_p`), so
    /// transform and persistence are unchanged. Landmark selection and the
    /// factorization are bit-deterministic in `options.seed` (each view draws a
    /// distinct stream) and independent of the thread count.
    pub fn fit_nystrom(
        kernels: &[Matrix],
        options: &KtccaOptions,
        landmarks: usize,
    ) -> Result<Self> {
        if kernels.len() < 2 {
            return Err(TccaError::InvalidInput(
                "KTCCA needs at least two views".into(),
            ));
        }
        let n = kernels[0].rows();
        if n == 0 {
            return Err(TccaError::InvalidInput("kernels are empty".into()));
        }
        for (p, k) in kernels.iter().enumerate() {
            if !k.is_square() || k.rows() != n {
                return Err(TccaError::InvalidInput(format!(
                    "kernel {p} must be {n}x{n}, got {}x{}",
                    k.rows(),
                    k.cols()
                )));
            }
        }
        if options.rank == 0 {
            return Err(TccaError::InvalidInput("rank must be positive".into()));
        }
        if landmarks == 0 {
            return Err(TccaError::InvalidInput(
                "landmark count must be positive".into(),
            ));
        }
        let landmarks = landmarks.min(n);

        // Per view: K ≈ UΛUᵀ, whitening factor (K² + εK)^{1/2} ≈ U D^{1/2} Uᵀ with
        // D = Λ² + εΛ. Whitened columns y_n = U D^{-1/2} Λ Uᵀ e_n live in span(U),
        // so the Gram tensor can be accumulated in the m-dimensional coordinates
        // z_n = D^{-1/2} Λ Uᵀ e_n and its CP factors lifted back afterwards
        // (multiplying by the orthonormal U is an isometry).
        let mut bases = Vec::with_capacity(kernels.len()); // U (N × m)
        let mut inv_sqrts = Vec::with_capacity(kernels.len()); // D^{-1/2} diagonal
        let mut whitened = Vec::with_capacity(kernels.len()); // Z (m × N)
        for (p, k) in kernels.iter().enumerate() {
            let seed = options
                .seed
                .wrapping_add((p as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let eig = nystrom_eig(k, landmarks, seed)?;
            let m = eig.eigenvalues.len();
            let inv_sqrt: Vec<f64> = eig
                .eigenvalues
                .iter()
                .map(|&l| 1.0 / (l * l + options.epsilon * l).sqrt())
                .collect();
            // Z = D^{-1/2} Λ Uᵀ, built by scaling the rows of Uᵀ.
            let mut z = eig.eigenvectors.transpose();
            for (i, s) in inv_sqrt.iter().enumerate().take(m) {
                let scale = eig.eigenvalues[i] * s;
                for v in z.row_mut(i) {
                    *v *= scale;
                }
            }
            bases.push(eig.eigenvectors);
            inv_sqrts.push(inv_sqrt);
            whitened.push(z);
        }

        // Reduced whitened Gram tensor S̃ = (1/N) Σ_n z_1n ∘ … ∘ z_mn.
        let shape: Vec<usize> = whitened.iter().map(Matrix::rows).collect();
        let mut s = DenseTensor::zeros(&shape);
        let weight = 1.0 / n as f64;
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); kernels.len()];
        for j in 0..n {
            for (p, z) in whitened.iter().enumerate() {
                cols[p] = z.column(j);
            }
            let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
            s.add_rank_one(weight, &refs);
        }

        // Rank-r decomposition and lift-back: A_p = U D^{-1/2} B̃_p (N × r).
        let cp = options.decompose(&s, options.rank)?;
        let mut coefficients = Vec::with_capacity(kernels.len());
        for (p, u) in bases.iter().enumerate() {
            let mut b = cp.factors[p].clone();
            for (i, &scale) in inv_sqrts[p].iter().enumerate().take(b.rows()) {
                for v in b.row_mut(i) {
                    *v *= scale;
                }
            }
            coefficients.push(u.matmul(&b)?);
        }

        Ok(Self {
            coefficients,
            correlations: cp.weights,
            n_train: n,
        })
    }

    /// Rebuild a fitted model from its parts (the persistence path). Every dual
    /// coefficient matrix must have `n_train` rows.
    pub fn from_parts(
        coefficients: Vec<Matrix>,
        correlations: Vec<f64>,
        n_train: usize,
    ) -> Result<Self> {
        for (p, a) in coefficients.iter().enumerate() {
            if a.rows() != n_train {
                return Err(TccaError::InvalidInput(format!(
                    "coefficients {p} have {} rows but the model was trained on {n_train} \
                     instances",
                    a.rows()
                )));
            }
        }
        Ok(Self {
            coefficients,
            correlations,
            n_train,
        })
    }

    /// Canonical correlations of the fitted components.
    pub fn correlations(&self) -> &[f64] {
        &self.correlations
    }

    /// Dual coefficient matrices `A_p` (`N × r`).
    pub fn coefficients(&self) -> &[Matrix] {
        &self.coefficients
    }

    /// Number of training instances.
    pub fn num_train(&self) -> usize {
        self.n_train
    }

    /// Project one view given a kernel block between query instances and the training
    /// instances (`M × N`): `Z_p = K_p A_p` (Eq. 4.16, `M × r`).
    pub fn transform_view(&self, which: usize, kernel_block: &Matrix) -> Result<Matrix> {
        if which >= self.coefficients.len() {
            return Err(TccaError::InvalidInput(format!(
                "view index {which} out of range for {} views",
                self.coefficients.len()
            )));
        }
        if kernel_block.cols() != self.n_train {
            return Err(TccaError::InvalidInput(format!(
                "kernel block has {} columns but the model was trained on {} instances",
                kernel_block.cols(),
                self.n_train
            )));
        }
        Ok(kernel_block.matmul(&self.coefficients[which])?)
    }

    /// Project every view and concatenate the embeddings (`M × m·r`).
    pub fn transform(&self, kernel_blocks: &[Matrix]) -> Result<Matrix> {
        if kernel_blocks.len() != self.coefficients.len() {
            return Err(TccaError::InvalidInput(format!(
                "expected {} kernel blocks, got {}",
                self.coefficients.len(),
                kernel_blocks.len()
            )));
        }
        let mut out = self.transform_view(0, &kernel_blocks[0])?;
        for (p, k) in kernel_blocks.iter().enumerate().skip(1) {
            out = out.hstack(&self.transform_view(p, k)?)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tcca, TccaOptions};
    use datasets::{center_kernel, gram_matrix, GaussianRng, Kernel};

    /// Views sharing a skewed 1-D latent signal (the order-3 correlation is a third
    /// cross-moment, so a symmetric latent would make the planted signal invisible).
    fn shared_signal_views(n: usize, seed: u64, noise: f64) -> Vec<Matrix> {
        let mut rng = GaussianRng::new(seed);
        let dims = [5usize, 4, 3];
        let mut views: Vec<Matrix> = dims.iter().map(|&d| Matrix::zeros(d, n)).collect();
        for j in 0..n {
            let t = if rng.bernoulli(0.25) { 1.6 } else { -0.4 } + 0.05 * rng.standard_normal();
            for v in views.iter_mut() {
                for i in 0..v.rows() {
                    v[(i, j)] = t * (i as f64 + 1.0) + noise * rng.standard_normal();
                }
            }
        }
        views
    }

    fn linear_kernels(views: &[Matrix]) -> Vec<Matrix> {
        views
            .iter()
            .map(|v| center_kernel(&gram_matrix(v, Kernel::Linear)))
            .collect()
    }

    #[test]
    fn fits_and_transforms_with_expected_shapes() {
        let views = shared_signal_views(50, 81, 0.2);
        let kernels = linear_kernels(&views);
        let model = Ktcca::fit(&kernels, &KtccaOptions::with_rank(2).epsilon(1e-1)).unwrap();
        assert_eq!(model.coefficients().len(), 3);
        assert_eq!(model.num_train(), 50);
        let z = model.transform(&kernels).unwrap();
        assert_eq!(z.shape(), (50, 6));
        // A 7-row query block projects to 7 rows.
        let block = kernels[0].select_rows(&[0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(model.transform_view(0, &block).unwrap().shape(), (7, 2));
    }

    #[test]
    fn shared_signal_gives_dominant_component() {
        let views = shared_signal_views(60, 82, 0.15);
        let kernels = linear_kernels(&views);
        let model = Ktcca::fit(&kernels, &KtccaOptions::with_rank(2).epsilon(1e-1)).unwrap();
        let c = model.correlations();
        assert!(
            c[0].abs() > 3.0 * c[1].abs().max(1e-6),
            "expected a dominant component, got {c:?}"
        );
    }

    #[test]
    fn rbf_kernels_also_work() {
        let views = shared_signal_views(40, 83, 0.2);
        let kernels: Vec<Matrix> = views
            .iter()
            .map(|v| center_kernel(&gram_matrix(v, Kernel::ExpEuclidean)))
            .collect();
        let model = Ktcca::fit(&kernels, &KtccaOptions::with_rank(1).epsilon(1e-2)).unwrap();
        assert_eq!(model.transform(&kernels).unwrap().shape(), (40, 3));
        assert!(model.correlations()[0].abs() > 0.0);
    }

    #[test]
    fn linear_kernel_embedding_preserves_tcca_class_structure() {
        // KTCCA with linear kernels and linear TCCA both recover the shared subspace; we
        // check that the dominant KTCCA canonical variable correlates strongly with the
        // dominant TCCA canonical variable on the same data.
        let views = shared_signal_views(60, 84, 0.2);
        let kernels = linear_kernels(&views);
        let ktcca = Ktcca::fit(&kernels, &KtccaOptions::with_rank(1).epsilon(1e-3)).unwrap();
        let tcca = Tcca::fit(&views, &TccaOptions::with_rank(1).epsilon(1e-3)).unwrap();
        let zk = ktcca.transform_view(0, &kernels[0]).unwrap().column(0);
        let zl = tcca.transform_view(0, &views[0]).unwrap().column(0);
        let corr = pearson(&zk, &zl).abs();
        assert!(
            corr > 0.95,
            "correlation between KTCCA and TCCA variables: {corr}"
        );
    }

    fn pearson(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let mut num = 0.0;
        let mut da = 0.0;
        let mut db = 0.0;
        for (x, y) in a.iter().zip(b.iter()) {
            num += (x - ma) * (y - mb);
            da += (x - ma) * (x - ma);
            db += (y - mb) * (y - mb);
        }
        num / (da.sqrt() * db.sqrt()).max(1e-300)
    }

    #[test]
    fn nystrom_fit_matches_the_exact_fit_with_full_landmarks() {
        let views = shared_signal_views(50, 86, 0.15);
        let kernels = linear_kernels(&views);
        let opts = KtccaOptions::with_rank(1).epsilon(1e-1);
        let exact = Ktcca::fit(&kernels, &opts).unwrap();
        let nys = Ktcca::fit_nystrom(&kernels, &opts, 50).unwrap();
        // With every instance as a landmark the kernel factorization is exact, so
        // both paths recover the same dominant canonical variable. (The CP weight
        // *magnitudes* are not comparable: the exact path whitens with a
        // triangular factor whose jitter-level directions mix into the data
        // span, inflating its weights; the Nyström path's symmetric whitening
        // confines itself to the kernel's numerical range.)
        let ze = exact.transform_view(0, &kernels[0]).unwrap().column(0);
        let zn = nys.transform_view(0, &kernels[0]).unwrap().column(0);
        let corr = pearson(&ze, &zn).abs();
        assert!(corr > 0.95, "canonical variables diverge: {corr}");
    }

    #[test]
    fn nystrom_with_few_landmarks_still_finds_the_signal() {
        let views = shared_signal_views(60, 87, 0.15);
        let kernels = linear_kernels(&views);
        let opts = KtccaOptions::with_rank(1).epsilon(1e-1);
        // 12 landmarks out of 60: the planted 1-D signal dominates the spectrum.
        let nys = Ktcca::fit_nystrom(&kernels, &opts, 12).unwrap();
        let exact = Ktcca::fit(&kernels, &opts).unwrap();
        let ze = exact.transform_view(0, &kernels[0]).unwrap().column(0);
        let zn = nys.transform_view(0, &kernels[0]).unwrap().column(0);
        let corr = pearson(&ze, &zn).abs();
        assert!(corr > 0.9, "canonical variables diverge: {corr}");
    }

    #[test]
    fn nystrom_fit_is_bit_deterministic() {
        let views = shared_signal_views(40, 88, 0.2);
        let kernels = linear_kernels(&views);
        let opts = KtccaOptions::with_rank(2).epsilon(1e-1);
        let a = Ktcca::fit_nystrom(&kernels, &opts, 15).unwrap();
        let b = Ktcca::fit_nystrom(&kernels, &opts, 15).unwrap();
        assert_eq!(a.correlations(), b.correlations());
        for (x, y) in a.coefficients().iter().zip(b.coefficients()) {
            assert_eq!(x, y);
        }
        // A different seed draws different landmarks.
        let c = Ktcca::fit_nystrom(&kernels, &opts.clone().seed(99), 15).unwrap();
        assert_ne!(a.coefficients()[0], c.coefficients()[0]);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let views = shared_signal_views(20, 85, 0.3);
        let kernels = linear_kernels(&views);
        assert!(Ktcca::fit(&kernels[..1], &KtccaOptions::default()).is_err());
        assert!(Ktcca::fit(&kernels, &KtccaOptions::with_rank(0)).is_err());
        assert!(Ktcca::fit_nystrom(&kernels, &KtccaOptions::with_rank(1), 0).is_err());
        assert!(Ktcca::fit_nystrom(&kernels[..1], &KtccaOptions::with_rank(1), 5).is_err());
        let mut bad = kernels.clone();
        bad[1] = Matrix::zeros(20, 19);
        assert!(Ktcca::fit(&bad, &KtccaOptions::default()).is_err());
        let model = Ktcca::fit(&kernels, &KtccaOptions::with_rank(1).epsilon(0.1)).unwrap();
        assert!(model.transform(&kernels[..2]).is_err());
        assert!(model.transform_view(9, &kernels[0]).is_err());
        assert!(model.transform_view(0, &Matrix::zeros(5, 7)).is_err());
    }
}
