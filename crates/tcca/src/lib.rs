//! Tensor Canonical Correlation Analysis (TCCA) for multi-view dimension reduction.
//!
//! This crate implements the primary contribution of
//! *Luo, Tao, Wen, Ramamohanarao, Xu — Tensor Canonical Correlation Analysis for
//! Multi-view Dimension Reduction* (ICDE 2016):
//!
//! * [`Tcca`] — the linear method (paper §4.2–4.3). Given `m ≥ 2` views
//!   `X_p ∈ R^{d_p × N}`, it maximizes the high-order canonical correlation
//!   `ρ = corr(z₁, …, z_m)` over per-view canonical vectors `h_p`, which (Theorems 1–2)
//!   equals the multilinear form of the covariance tensor and is solved as the best
//!   rank-1/rank-r approximation of the whitened covariance tensor
//!   `M = C₁₂…ₘ ×₁ C̃₁₁^{-1/2} … ×ₘ C̃ₘₘ^{-1/2}`.
//! * [`Ktcca`] — the kernel extension (paper §4.4), which works on the per-view Gram
//!   matrices with the PLS-style `(K_p² + εK_p)` whitening and supports `d_p ≫ N`.
//!
//! The rank-r decomposition is delegated to the `tensor` crate; the paper's default is
//! ALS ([`DecompositionMethod::Als`]), with HOPM and the greedy tensor power method
//! available for the ablation experiments.
//!
//! ```
//! use linalg::Matrix;
//! use tcca::{Tcca, TccaOptions};
//!
//! // Three tiny views of 40 instances sharing a *skewed* 1-D latent signal. (The
//! // order-3 canonical correlation is a third cross-moment, so a symmetric latent
//! // would be invisible to it — the paper's binary/histogram features are skewed.)
//! let n = 40;
//! let mut v1 = Matrix::zeros(3, n);
//! let mut v2 = Matrix::zeros(4, n);
//! let mut v3 = Matrix::zeros(2, n);
//! for j in 0..n {
//!     let t = if j % 4 == 0 { 1.5 } else { -0.4 };
//!     for i in 0..3 { v1[(i, j)] = t * (i as f64 + 1.0); }
//!     for i in 0..4 { v2[(i, j)] = -t * (i as f64 + 0.5); }
//!     for i in 0..2 { v3[(i, j)] = t; }
//! }
//! let model = Tcca::fit(&[v1.clone(), v2.clone(), v3.clone()], &TccaOptions::with_rank(1)).unwrap();
//! let z = model.transform(&[v1, v2, v3]).unwrap();
//! assert_eq!(z.shape(), (40, 3)); // m views × rank 1, concatenated
//! assert!(model.correlations()[0].abs() > 0.3);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod config;
mod error;
mod kernel;
mod linear;

pub use config::{DecompositionMethod, TccaOptions};
pub use error::TccaError;
pub use kernel::{Ktcca, KtccaOptions};
pub use linear::{covariance_tensor, whitened_covariance_tensor, Tcca};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, TccaError>;
