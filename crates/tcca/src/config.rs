//! Configuration of the TCCA estimators.

use tensor::CpDecomposition;
use tensor::{CpAls, CpOptions, DenseTensor, Hopm, RankRDecomposition, TensorPowerMethod};

/// Which tensor decomposition algorithm solves the rank-r subproblem (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompositionMethod {
    /// Alternating least squares (Kroonenberg & De Leeuw 1980) — the paper's choice,
    /// which fits all `r` components simultaneously.
    Als,
    /// Higher-order power method (De Lathauwer et al. 2000b) with greedy deflation.
    Hopm,
    /// Greedy tensor power method with random restarts (Allen 2012).
    PowerMethod,
}

/// Options shared by [`crate::Tcca`] and reused by [`crate::Ktcca`].
#[derive(Debug, Clone)]
pub struct TccaOptions {
    /// Dimension `r` of the learned common subspace (per view).
    pub rank: usize,
    /// Regularizer ε added to every view covariance (`C̃_pp = C_pp + εI`, Eq. 4.8).
    pub epsilon: f64,
    /// Decomposition algorithm for the whitened covariance tensor.
    pub method: DecompositionMethod,
    /// Maximum decomposition iterations.
    pub max_iterations: usize,
    /// Decomposition convergence tolerance.
    pub tolerance: f64,
    /// RNG seed for the decomposition initialization.
    pub seed: u64,
}

impl Default for TccaOptions {
    fn default() -> Self {
        Self {
            rank: 10,
            epsilon: 1e-2,
            method: DecompositionMethod::Als,
            max_iterations: 60,
            tolerance: 1e-7,
            seed: 7,
        }
    }
}

impl TccaOptions {
    /// Default options with the given subspace dimension.
    pub fn with_rank(rank: usize) -> Self {
        Self {
            rank,
            ..Self::default()
        }
    }

    /// Builder-style setter for the regularizer ε.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Builder-style setter for the decomposition method.
    pub fn method(mut self, method: DecompositionMethod) -> Self {
        self.method = method;
        self
    }

    /// Builder-style setter for the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Run the configured decomposition on a tensor.
    pub(crate) fn decompose(
        &self,
        tensor: &DenseTensor,
        rank: usize,
    ) -> tensor::Result<CpDecomposition> {
        match self.method {
            DecompositionMethod::Als => CpAls::new(CpOptions {
                max_iterations: self.max_iterations,
                tolerance: self.tolerance,
                seed: self.seed,
                hosvd_init: true,
            })
            .decompose(tensor, rank),
            DecompositionMethod::Hopm => {
                Hopm::new(self.max_iterations, self.tolerance).decompose(tensor, rank)
            }
            DecompositionMethod::PowerMethod => TensorPowerMethod {
                max_iterations: self.max_iterations,
                tolerance: self.tolerance,
                restarts: 3,
                seed: self.seed,
            }
            .decompose(tensor, rank),
        }
    }

    /// Run the configured decomposition, optionally warm-started from a previous
    /// model's factor matrices, reporting the number of sweeps executed.
    ///
    /// Warm starting and sweep reporting are supported for ALS (the paper's choice);
    /// the other methods fall back to a cold run and report 0 sweeps.
    pub(crate) fn decompose_sweeps(
        &self,
        tensor: &DenseTensor,
        rank: usize,
        warm_start: Option<&[linalg::Matrix]>,
    ) -> tensor::Result<(CpDecomposition, usize)> {
        if self.method == DecompositionMethod::Als {
            let als = CpAls::new(CpOptions {
                max_iterations: self.max_iterations,
                tolerance: self.tolerance,
                seed: self.seed,
                hosvd_init: true,
            });
            let (cp, sweeps, _) = match warm_start {
                Some(init) => als.decompose_warm(tensor, rank, init)?,
                None => als.decompose_detailed(tensor, rank)?,
            };
            Ok((cp, sweeps))
        } else {
            self.decompose(tensor, rank).map(|cp| (cp, 0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let opts = TccaOptions::with_rank(5)
            .epsilon(0.5)
            .method(DecompositionMethod::Hopm)
            .seed(99);
        assert_eq!(opts.rank, 5);
        assert_eq!(opts.epsilon, 0.5);
        assert_eq!(opts.method, DecompositionMethod::Hopm);
        assert_eq!(opts.seed, 99);
    }

    #[test]
    fn all_methods_decompose_a_small_tensor() {
        let mut t = DenseTensor::zeros(&[3, 3, 3]);
        t.add_rank_one(2.0, &[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
        for method in [
            DecompositionMethod::Als,
            DecompositionMethod::Hopm,
            DecompositionMethod::PowerMethod,
        ] {
            let opts = TccaOptions::with_rank(1).method(method);
            let cp = opts.decompose(&t, 1).unwrap();
            assert!((cp.weights[0].abs() - 2.0).abs() < 1e-6, "{method:?}");
        }
    }

    #[test]
    fn default_is_als_rank_10() {
        let opts = TccaOptions::default();
        assert_eq!(opts.method, DecompositionMethod::Als);
        assert_eq!(opts.rank, 10);
    }
}
