//! Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//!
//! The paper's whitening step needs `C̃pp^{-1/2}` for every view, PCA needs the top
//! eigenvectors of a covariance matrix, and DSE needs the bottom eigenvectors of a graph
//! Laplacian. All of these are symmetric (semi-)definite problems of moderate size
//! (a few hundred rows), for which the cyclic Jacobi method is simple, numerically
//! robust and accurate to machine precision.

use crate::{LinalgError, Matrix, Result};

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
///
/// Eigenvalues are sorted in **descending** order and `eigenvectors.column(k)` is the
/// unit-norm eigenvector paired with `eigenvalues[k]`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in descending order.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors stored as columns.
    pub eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Compute the eigendecomposition of a symmetric matrix.
    ///
    /// The input is symmetrized internally (numerical asymmetry from accumulated
    /// covariance sums is tolerated); an error is returned if the matrix is not square
    /// or the sweep budget is exhausted before off-diagonal mass vanishes.
    pub fn new(matrix: &Matrix) -> Result<Self> {
        Self::with_max_sweeps(matrix, 100)
    }

    /// Same as [`SymmetricEigen::new`] with an explicit bound on Jacobi sweeps.
    pub fn with_max_sweeps(matrix: &Matrix, max_sweeps: usize) -> Result<Self> {
        if !matrix.is_square() {
            return Err(LinalgError::NotSquare {
                rows: matrix.rows(),
                cols: matrix.cols(),
            });
        }
        let n = matrix.rows();
        if n == 0 {
            return Ok(Self {
                eigenvalues: Vec::new(),
                eigenvectors: Matrix::zeros(0, 0),
            });
        }
        let mut a = matrix.clone();
        a.symmetrize();
        let mut v = Matrix::identity(n);

        let tol = 1e-14 * a.frobenius_norm().max(1e-300);
        let mut converged = false;
        for _ in 0..max_sweeps {
            let off = off_diagonal_norm(&a);
            if off <= tol {
                converged = true;
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a[(p, q)];
                    if apq.abs() <= tol / (n as f64) {
                        continue;
                    }
                    let app = a[(p, p)];
                    let aqq = a[(q, q)];
                    // Compute the Jacobi rotation that zeroes a[(p, q)].
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    apply_rotation(&mut a, p, q, c, s);
                    rotate_columns(&mut v, p, q, c, s);
                }
            }
        }
        if !converged && off_diagonal_norm(&a) > tol * 10.0 {
            return Err(LinalgError::DidNotConverge {
                routine: "jacobi eigendecomposition",
                iterations: max_sweeps,
            });
        }

        let mut order: Vec<usize> = (0..n).collect();
        let diag: Vec<f64> = (0..n).map(|i| a[(i, i)]).collect();
        order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("finite eigenvalues"));

        let eigenvalues: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
        let eigenvectors = v.select_columns(&order);
        Ok(Self {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Reconstruct `V diag(f(λ)) Vᵀ` for an arbitrary spectral function `f`.
    ///
    /// This is how the crate computes matrix powers: `f = sqrt` gives the square root,
    /// `f = 1/sqrt(max(λ, floor))` the inverse square root, etc.
    pub fn spectral_map<F: Fn(f64) -> f64>(&self, f: F) -> Matrix {
        let n = self.eigenvalues.len();
        let mut scaled = self.eigenvectors.clone();
        for j in 0..n {
            let fj = f(self.eigenvalues[j]);
            for i in 0..n {
                scaled[(i, j)] *= fj;
            }
        }
        scaled
            .matmul_t(&self.eigenvectors)
            .expect("spectral_map: shapes agree")
    }

    /// Reconstruct the original matrix `V diag(λ) Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        self.spectral_map(|l| l)
    }

    /// Number of eigenvalues.
    pub fn len(&self) -> usize {
        self.eigenvalues.len()
    }

    /// True when the decomposition is empty.
    pub fn is_empty(&self) -> bool {
        self.eigenvalues.is_empty()
    }
}

impl Matrix {
    /// Symmetric positive semi-definite inverse square root `A^{-1/2}`.
    ///
    /// Eigenvalues below `floor` are clamped to `floor` before inversion, which is the
    /// numerically safe way to whiten a regularized covariance `C + εI` whose smallest
    /// eigenvalues can underflow to slightly negative values.
    pub fn inverse_sqrt_spd(&self, floor: f64) -> Result<Matrix> {
        let eig = SymmetricEigen::new(self)?;
        Ok(eig.spectral_map(|l| 1.0 / l.max(floor).sqrt()))
    }

    /// Symmetric positive semi-definite square root `A^{1/2}` with eigenvalue flooring.
    pub fn sqrt_spd(&self, floor: f64) -> Result<Matrix> {
        let eig = SymmetricEigen::new(self)?;
        Ok(eig.spectral_map(|l| l.max(floor).sqrt()))
    }

    /// Inverse of a symmetric positive definite matrix via its eigendecomposition.
    pub fn inverse_spd(&self, floor: f64) -> Result<Matrix> {
        let eig = SymmetricEigen::new(self)?;
        Ok(eig.spectral_map(|l| 1.0 / l.max(floor)))
    }
}

fn off_diagonal_norm(a: &Matrix) -> f64 {
    let n = a.rows();
    let mut sum = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            sum += 2.0 * a[(i, j)] * a[(i, j)];
        }
    }
    sum.sqrt()
}

/// Apply the two-sided Jacobi rotation `JᵀAJ` where `J` rotates the (p, q) plane.
fn apply_rotation(a: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = a.rows();
    for k in 0..n {
        let akp = a[(k, p)];
        let akq = a[(k, q)];
        a[(k, p)] = c * akp - s * akq;
        a[(k, q)] = s * akp + c * akq;
    }
    for k in 0..n {
        let apk = a[(p, k)];
        let aqk = a[(q, k)];
        a[(p, k)] = c * apk - s * aqk;
        a[(q, k)] = s * apk + c * aqk;
    }
}

/// Apply the rotation to the eigenvector accumulator (columns p and q).
fn rotate_columns(v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = v.rows();
    for k in 0..n {
        let vkp = v[(k, p)];
        let vkq = v[(k, q)];
        v[(k, p)] = c * vkp - s * vkq;
        v[(k, q)] = s * vkp + c * vkq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn eigen_of_diagonal() {
        let m = Matrix::from_diagonal(&[3.0, 1.0, 2.0]);
        let eig = SymmetricEigen::new(&m).unwrap();
        assert!(approx(eig.eigenvalues[0], 3.0, 1e-12));
        assert!(approx(eig.eigenvalues[1], 2.0, 1e-12));
        assert!(approx(eig.eigenvalues[2], 1.0, 1e-12));
    }

    #[test]
    fn eigen_known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let eig = SymmetricEigen::new(&m).unwrap();
        assert!(approx(eig.eigenvalues[0], 3.0, 1e-12));
        assert!(approx(eig.eigenvalues[1], 1.0, 1e-12));
        // Eigenvector for λ=3 is (1, 1)/sqrt(2) up to sign.
        let v0 = eig.eigenvectors.column(0);
        assert!(approx(v0[0].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-10));
        assert!(approx(v0[0], v0[1], 1e-10));
    }

    #[test]
    fn reconstruction_matches_original() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, -2.0, 0.5],
            vec![1.0, 3.0, 0.0, 1.0],
            vec![-2.0, 0.0, 5.0, -1.0],
            vec![0.5, 1.0, -1.0, 2.0],
        ])
        .unwrap();
        let eig = SymmetricEigen::new(&m).unwrap();
        let r = eig.reconstruct();
        assert!(r.sub(&m).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = Matrix::from_rows(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ])
        .unwrap();
        let eig = SymmetricEigen::new(&m).unwrap();
        let vtv = eig.eigenvectors.t_matmul(&eig.eigenvectors).unwrap();
        assert!(vtv.sub(&Matrix::identity(3)).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn inverse_sqrt_whitens() {
        let m = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let w = m.inverse_sqrt_spd(1e-12).unwrap();
        // W * M * W should be the identity.
        let prod = w.matmul(&m).unwrap().matmul(&w).unwrap();
        assert!(prod.sub(&Matrix::identity(2)).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn sqrt_and_inverse_consistency() {
        let m = Matrix::from_rows(&[vec![5.0, 2.0], vec![2.0, 3.0]]).unwrap();
        let s = m.sqrt_spd(0.0).unwrap();
        assert!(s.matmul(&s).unwrap().sub(&m).unwrap().max_abs() < 1e-10);
        let inv = m.inverse_spd(1e-15).unwrap();
        assert!(
            inv.matmul(&m)
                .unwrap()
                .sub(&Matrix::identity(2))
                .unwrap()
                .max_abs()
                < 1e-10
        );
    }

    #[test]
    fn rejects_non_square() {
        assert!(SymmetricEigen::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn empty_matrix() {
        let eig = SymmetricEigen::new(&Matrix::zeros(0, 0)).unwrap();
        assert!(eig.is_empty());
        assert_eq!(eig.len(), 0);
    }

    #[test]
    fn handles_psd_with_zero_eigenvalue() {
        // Rank-1 matrix: eigenvalues {2, 0}.
        let m = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let eig = SymmetricEigen::new(&m).unwrap();
        assert!(approx(eig.eigenvalues[0], 2.0, 1e-12));
        assert!(approx(eig.eigenvalues[1], 0.0, 1e-12));
    }
}
