//! Statistics helpers: centering, means, covariance and cross-covariance.
//!
//! The paper assumes every view matrix `X_p ∈ R^{d_p × N}` (features in rows,
//! instances in columns) has been centered, and builds the per-view variance matrices
//! `C_pp = (1/N) Σ_n x_pn x_pnᵀ` and the cross-covariance `C_pq = (1/N) X_p X_qᵀ`.
//! These helpers operate on that `d × N` layout.

use crate::{LinalgError, Matrix, Result};

/// Mean of every row (i.e. mean over instances when the matrix is `d × N`).
pub fn row_means(x: &Matrix) -> Vec<f64> {
    let n = x.cols().max(1);
    (0..x.rows())
        .map(|i| x.row(i).iter().sum::<f64>() / n as f64)
        .collect()
}

/// Mean of every column (i.e. mean over instances when the matrix is `N × d`).
pub fn column_means(x: &Matrix) -> Vec<f64> {
    let n = x.rows().max(1);
    let mut means = vec![0.0; x.cols()];
    for i in 0..x.rows() {
        for (j, &v) in x.row(i).iter().enumerate() {
            means[j] += v;
        }
    }
    for m in &mut means {
        *m /= n as f64;
    }
    means
}

/// Subtract the row mean from every row, returning the centered matrix and the means.
///
/// Use this for the paper's `d × N` view layout: every feature ends up with zero mean
/// across instances.
pub fn center_rows(x: &Matrix) -> (Matrix, Vec<f64>) {
    let means = row_means(x);
    let mut out = x.clone();
    for i in 0..out.rows() {
        let m = means[i];
        for v in out.row_mut(i) {
            *v -= m;
        }
    }
    (out, means)
}

/// Subtract the column mean from every column, returning the centered matrix and means.
pub fn center_columns(x: &Matrix) -> (Matrix, Vec<f64>) {
    let means = column_means(x);
    let mut out = x.clone();
    for i in 0..out.rows() {
        for (j, v) in out.row_mut(i).iter_mut().enumerate() {
            *v -= means[j];
        }
    }
    (out, means)
}

/// Covariance `C = (1/N) X Xᵀ` of a `d × N` (already centered) data matrix.
pub fn covariance(x: &Matrix) -> Matrix {
    let n = x.cols().max(1) as f64;
    x.gram().scale(1.0 / n)
}

/// Cross-covariance `C₁₂ = (1/N) X₁ X₂ᵀ` of two centered `d × N` data matrices sharing
/// the same instance axis.
pub fn cross_covariance(x1: &Matrix, x2: &Matrix) -> Result<Matrix> {
    if x1.cols() != x2.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "cross_covariance",
            lhs: x1.shape(),
            rhs: x2.shape(),
        });
    }
    let n = x1.cols().max(1) as f64;
    Ok(x1.matmul_t(x2)?.scale(1.0 / n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_and_column_means() {
        let x = Matrix::from_rows(&[vec![1.0, 3.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(row_means(&x), vec![2.0, 3.0]);
        assert_eq!(column_means(&x), vec![1.5, 3.5]);
    }

    #[test]
    fn center_rows_zeroes_means() {
        let x = Matrix::from_rows(&[vec![1.0, 3.0, 5.0], vec![2.0, 2.0, 2.0]]).unwrap();
        let (c, means) = center_rows(&x);
        assert_eq!(means, vec![3.0, 2.0]);
        for i in 0..2 {
            let sum: f64 = c.row(i).iter().sum();
            assert!(sum.abs() < 1e-12);
        }
    }

    #[test]
    fn center_columns_zeroes_means() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 20.0]]).unwrap();
        let (c, means) = center_columns(&x);
        assert_eq!(means, vec![2.0, 15.0]);
        for j in 0..2 {
            let sum: f64 = c.column(j).iter().sum();
            assert!(sum.abs() < 1e-12);
        }
    }

    #[test]
    fn covariance_of_known_data() {
        // Two features, three samples, already centered.
        let x = Matrix::from_rows(&[vec![-1.0, 0.0, 1.0], vec![-2.0, 0.0, 2.0]]).unwrap();
        let c = covariance(&x);
        assert!((c[(0, 0)] - 2.0 / 3.0).abs() < 1e-12);
        assert!((c[(0, 1)] - 4.0 / 3.0).abs() < 1e-12);
        assert!((c[(1, 1)] - 8.0 / 3.0).abs() < 1e-12);
        assert!((c[(0, 1)] - c[(1, 0)]).abs() < 1e-12);
    }

    #[test]
    fn cross_covariance_checks_shapes() {
        let a = Matrix::zeros(2, 5);
        let b = Matrix::zeros(3, 4);
        assert!(cross_covariance(&a, &b).is_err());
        let b_ok = Matrix::zeros(3, 5);
        let c = cross_covariance(&a, &b_ok).unwrap();
        assert_eq!(c.shape(), (2, 3));
    }

    #[test]
    fn empty_matrix_means() {
        let x = Matrix::zeros(0, 0);
        assert!(row_means(&x).is_empty());
        assert!(column_means(&x).is_empty());
    }
}
