//! Cholesky factorization of symmetric positive definite matrices.
//!
//! Kernel TCCA whitens the Gram tensor with the Cholesky factor of `K² + εK`
//! (paper Eq. 4.14–4.15), and the regularized least squares learner solves
//! `(XXᵀ + γI) w = Xy` — both are SPD systems handled here.

use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    lower: Matrix,
}

impl Cholesky {
    /// Factorize a symmetric positive definite matrix.
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] when a pivot is not strictly
    /// positive; callers that only have a positive *semi*-definite matrix should add a
    /// small ridge (`add_diagonal`) first, mirroring the paper's `ε` regularizers.
    pub fn new(matrix: &Matrix) -> Result<Self> {
        if !matrix.is_square() {
            return Err(LinalgError::NotSquare {
                rows: matrix.rows(),
                cols: matrix.cols(),
            });
        }
        let n = matrix.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = matrix[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite {
                            pivot: i,
                            value: sum,
                        });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Self { lower: l })
    }

    /// Borrow the lower-triangular factor `L`.
    pub fn lower(&self) -> &Matrix {
        &self.lower
    }

    /// Consume the factorization and return `L`.
    pub fn into_lower(self) -> Matrix {
        self.lower
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lower.rows()
    }

    /// Solve `A x = b` for a single right-hand side using forward/backward substitution.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.lower[(i, k)] * y[k];
            }
            y[i] = sum / self.lower[(i, i)];
        }
        // Backward: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.lower[(k, i)] * x[k];
            }
            x[i] = sum / self.lower[(i, i)];
        }
        Ok(x)
    }

    /// Solve `A X = B` column-by-column.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.column(j);
            let x = self.solve_vec(&col)?;
            out.set_column(j, &x);
        }
        Ok(out)
    }

    /// Inverse of the lower-triangular factor, `L^{-1}`.
    ///
    /// Kernel TCCA needs `L^{-1}` explicitly because the whitened Gram tensor is
    /// `S = K ×₁ (L₁^{-1})ᵀ … ×ₘ (Lₘ^{-1})ᵀ`.
    pub fn inverse_lower(&self) -> Matrix {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        // Solve L * col_j(inv) = e_j, exploiting lower-triangularity.
        for j in 0..n {
            inv[(j, j)] = 1.0 / self.lower[(j, j)];
            for i in (j + 1)..n {
                let mut sum = 0.0;
                for k in j..i {
                    sum -= self.lower[(i, k)] * inv[(k, j)];
                }
                inv[(i, j)] = sum / self.lower[(i, i)];
            }
        }
        inv
    }

    /// Inverse of the factored matrix, `A^{-1} = L^{-T} L^{-1}`.
    pub fn inverse(&self) -> Matrix {
        let linv = self.inverse_lower();
        linv.t_matmul(&linv).expect("inverse: shapes agree")
    }

    /// Log-determinant of the factored matrix, `log det A = 2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim())
            .map(|i| self.lower[(i, i)].ln())
            .sum::<f64>()
            * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_example() -> Matrix {
        Matrix::from_rows(&[
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.0],
            vec![0.6, 1.0, 3.0],
        ])
        .unwrap()
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd_example();
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.lower();
        let rec = l.matmul_t(l).unwrap();
        assert!(rec.sub(&a).unwrap().max_abs() < 1e-12);
        // L is lower-triangular.
        assert_eq!(l[(0, 1)], 0.0);
        assert_eq!(l[(0, 2)], 0.0);
        assert_eq!(l[(1, 2)], 0.0);
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd_example();
        let chol = Cholesky::new(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5];
        let x = chol.solve_vec(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (ai, bi) in ax.iter().zip(b.iter()) {
            assert!((ai - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_matrix_rhs() {
        let a = spd_example();
        let chol = Cholesky::new(&a).unwrap();
        let b = Matrix::identity(3);
        let x = chol.solve(&b).unwrap();
        let prod = a.matmul(&x).unwrap();
        assert!(prod.sub(&Matrix::identity(3)).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn inverse_lower_and_full_inverse() {
        let a = spd_example();
        let chol = Cholesky::new(&a).unwrap();
        let linv = chol.inverse_lower();
        let should_be_identity = linv.matmul(chol.lower()).unwrap();
        assert!(
            should_be_identity
                .sub(&Matrix::identity(3))
                .unwrap()
                .max_abs()
                < 1e-10
        );
        let ainv = chol.inverse();
        assert!(
            a.matmul(&ainv)
                .unwrap()
                .sub(&Matrix::identity(3))
                .unwrap()
                .max_abs()
                < 1e-9
        );
    }

    #[test]
    fn log_det_matches_product_of_pivots() {
        let a = Matrix::from_diagonal(&[2.0, 3.0, 4.0]);
        let chol = Cholesky::new(&a).unwrap();
        assert!((chol.log_det() - (24.0_f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite_and_non_square() {
        let indef = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&indef),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        assert!(Cholesky::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn solve_shape_errors() {
        let chol = Cholesky::new(&spd_example()).unwrap();
        assert!(chol.solve_vec(&[1.0, 2.0]).is_err());
        assert!(chol.solve(&Matrix::zeros(2, 2)).is_err());
    }
}
