//! Thin singular value decomposition.
//!
//! Two-view CCA reduces to the SVD of the whitened cross-covariance
//! `T = C̃₁₁^{-1/2} C₁₂ C̃₂₂^{-1/2}` (Hardoon et al. 2004), CCA-MAXVAR needs the SVD of
//! the stacked canonical variables, and PCA is the SVD of the centered data matrix.
//!
//! The implementation computes the eigendecomposition of the smaller Gram matrix
//! (`AᵀA` or `AAᵀ`) with the Jacobi solver and recovers the other side's singular
//! vectors by projection, which is accurate for the well-conditioned, moderately sized
//! matrices that appear in these experiments.

use crate::{Matrix, Result, SymmetricEigen};

/// Thin SVD `A = U diag(σ) Vᵀ` with singular values sorted in descending order.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, one per column (`rows × k`).
    pub u: Matrix,
    /// Singular values in descending order (`k` entries, `k = min(rows, cols)`).
    pub singular_values: Vec<f64>,
    /// Right singular vectors, one per column (`cols × k`).
    pub v: Matrix,
}

impl Svd {
    /// Compute the thin SVD of an arbitrary rectangular matrix.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        let k = m.min(n);
        if k == 0 {
            return Ok(Self {
                u: Matrix::zeros(m, 0),
                singular_values: Vec::new(),
                v: Matrix::zeros(n, 0),
            });
        }
        if n <= m {
            // Eigen-decompose AᵀA (n × n), recover U = A V Σ⁻¹.
            let gram = a.gram_t();
            let eig = SymmetricEigen::new(&gram)?;
            let singular_values: Vec<f64> = eig
                .eigenvalues
                .iter()
                .take(k)
                .map(|&l| l.max(0.0).sqrt())
                .collect();
            let v = eig.eigenvectors.leading_columns(k);
            let av = a.matmul(&v)?;
            let mut u = Matrix::zeros(m, k);
            for j in 0..k {
                let s = singular_values[j];
                let col = av.column(j);
                if s > 1e-300 {
                    let scaled: Vec<f64> = col.iter().map(|x| x / s).collect();
                    u.set_column(j, &scaled);
                } else {
                    u.set_column(j, &vec![0.0; m]);
                }
            }
            Ok(Self {
                u,
                singular_values,
                v,
            })
        } else {
            // Wide matrix: decompose Aᵀ and swap factors.
            let svd_t = Svd::new(&a.transpose())?;
            Ok(Self {
                u: svd_t.v,
                singular_values: svd_t.singular_values,
                v: svd_t.u,
            })
        }
    }

    /// Number of singular values.
    pub fn len(&self) -> usize {
        self.singular_values.len()
    }

    /// True when the decomposition is empty.
    pub fn is_empty(&self) -> bool {
        self.singular_values.is_empty()
    }

    /// Reconstruct the (thin) matrix `U diag(σ) Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let k = self.len();
        let mut us = self.u.clone();
        for j in 0..k {
            for i in 0..us.rows() {
                us[(i, j)] *= self.singular_values[j];
            }
        }
        us.matmul_t(&self.v).expect("reconstruct: shapes agree")
    }

    /// Best rank-`r` approximation of the original matrix.
    pub fn truncate(&self, r: usize) -> Matrix {
        let r = r.min(self.len());
        let mut us = self.u.leading_columns(r);
        for j in 0..r {
            for i in 0..us.rows() {
                us[(i, j)] *= self.singular_values[j];
            }
        }
        us.matmul_t(&self.v.leading_columns(r))
            .expect("truncate: shapes agree")
    }

    /// Numerical rank: the number of singular values above `tol * σ_max`.
    pub fn rank(&self, tol: f64) -> usize {
        let max = self.singular_values.first().copied().unwrap_or(0.0);
        self.singular_values
            .iter()
            .filter(|&&s| s > tol * max)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svd_of_diagonal() {
        let a = Matrix::from_diagonal(&[3.0, 1.0, 2.0]);
        let svd = Svd::new(&a).unwrap();
        assert_eq!(svd.len(), 3);
        assert!((svd.singular_values[0] - 3.0).abs() < 1e-10);
        assert!((svd.singular_values[1] - 2.0).abs() < 1e-10);
        assert!((svd.singular_values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_tall() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
            vec![-1.0, 0.5],
        ])
        .unwrap();
        let svd = Svd::new(&a).unwrap();
        assert!(svd.reconstruct().sub(&a).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn reconstruction_wide() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0], vec![0.0, -1.0, 1.0, 2.0]]).unwrap();
        let svd = Svd::new(&a).unwrap();
        assert_eq!(svd.u.shape(), (2, 2));
        assert_eq!(svd.v.shape(), (4, 2));
        assert!(svd.reconstruct().sub(&a).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn singular_vectors_are_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![2.0, 0.0, 1.0],
            vec![-1.0, 1.0, 0.0],
            vec![0.0, 3.0, 1.0],
            vec![1.0, 1.0, 1.0],
        ])
        .unwrap();
        let svd = Svd::new(&a).unwrap();
        let utu = svd.u.t_matmul(&svd.u).unwrap();
        let vtv = svd.v.t_matmul(&svd.v).unwrap();
        assert!(utu.sub(&Matrix::identity(3)).unwrap().max_abs() < 1e-8);
        assert!(vtv.sub(&Matrix::identity(3)).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn truncation_error_bounded_by_dropped_singular_value() {
        let a = Matrix::from_rows(&[
            vec![10.0, 0.0, 0.0],
            vec![0.0, 5.0, 0.0],
            vec![0.0, 0.0, 0.1],
        ])
        .unwrap();
        let svd = Svd::new(&a).unwrap();
        let approx = svd.truncate(2);
        let err = approx.sub(&a).unwrap().frobenius_norm();
        assert!((err - 0.1).abs() < 1e-10);
    }

    #[test]
    fn rank_detection() {
        // Rank-1 matrix.
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let svd = Svd::new(&a).unwrap();
        assert_eq!(svd.rank(1e-9), 1);
    }

    #[test]
    fn empty_matrix() {
        let svd = Svd::new(&Matrix::zeros(0, 3)).unwrap();
        assert!(svd.is_empty());
    }
}
