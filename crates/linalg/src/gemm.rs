//! The blocked, packed GEMM engine behind every dense product kernel.
//!
//! All of `matmul`, `t_matmul`, `matmul_t`, `t_matmul_acc`, `syrk`/`syrk_t` (and
//! through them `gram`, covariance/whitening, PCA and the CP-ALS solvers) funnel into
//! `gemm`, a single BLIS-style driver:
//!
//! * the reduction dimension is split into blocks of [`KC`] values;
//! * panels of `B` ([`KC`]`×NRV`) are **packed once per k-block** into a shared
//!   arena, and micro-panels of `A` ([`KC`]`×`[`MR`]) into per-band scratch, laid
//!   out exactly as the inner loop consumes them (one `MR`-lane and one `NRV`-lane
//!   row per reduction step);
//! * the `microkernel` computes an `MR×NRV` output tile with all `MR·NRV`
//!   accumulators live in registers, reading each packed value once. Its body indexes
//!   fixed-size arrays only (`&[E; MR]` / `&[E; NRV]` obtained via `chunks_exact`),
//!   so there are **no bounds checks inside the tile loop** and the `NRV`-wide lane
//!   arithmetic autovectorizes.
//!
//! `NRV` is the *instantiated* tile width: the driver is const-generic over it and
//! the dispatcher picks [`NR`]` = 8` for general shapes or the skinny
//! specialization `NR/2 = 4` when the whole output is at most `NR/2` columns wide
//! (the `t_matmul_proj`-shaped serving projections), so narrow projections stop
//! padding half the register file. The packed B-panel of one k-block is
//! `KC·NRV·sizeof(E)` bytes — 16 KiB for the `NR=8` f64 tile, and proportionally
//! smaller for the skinny and f32 instantiations — always L1-resident while each
//! A micro-panel streams against it. The tile-width choice **never changes
//! results**: each output element's reduction order depends only on `k`, not on
//! which tile column the element lands in.
//!
//! Edge tiles are handled by zero-padding the packed panels to full `MR`/`NRV` width
//! and copying back only the valid lanes, so the hot loop never branches on tile
//! validity.
//!
//! ## Shared B packing
//!
//! The k-block loop sits *outside* the row-band parallelism: the driver walks the
//! reduction dimension in super-blocks of k-blocks sized to a fixed arena budget
//! (`B_ARENA_BUDGET`), packs every B panel of the super-block **once** (itself
//! fanned out over the worker threads), then lets all row bands consume the
//! read-only arena. Thread bands therefore no longer duplicate the O(k·n) packing
//! work — bit-identical by construction, since the packed bytes and every band's
//! consumption schedule (k-blocks ascending) are unchanged. [`shared_pack_hits`]
//! counts the panel reuses for observability.
//!
//! ## Skinny direct-A
//!
//! When the output is a single panel wide (`n ≤ NRV`), each packed A value is
//! read back exactly once — and for the `Aᵀ` operand of `t_matmul` the source
//! already *is* in microkernel order (`MR` contiguous lanes per reduction step,
//! stride = the row length). Packing would be a pure copy tax on a
//! bandwidth-bound shape, so `ASource::Strided` lets the band loop stream those
//! operands straight from the caller's buffer (edge tiles still go through the
//! packer). Same values in the same order — bit-identical to the packed path.
//!
//! ## Kernel modes and the determinism contract
//!
//! Every output element accumulates its reduction in **ascending index order**: the
//! k-blocks are visited in ascending order, each micro-tile accumulates ascending
//! within a block, and the per-element partial sums are added onto the output in
//! k-block order. That schedule depends only on the problem shape — never on the
//! thread count, which partitions output *rows* exclusively — so results are
//! bit-identical for every `threads >= 1` (the invariant `crates/parallel` documents
//! and `crates/linalg/tests/properties.rs` pins down). The packing source is
//! abstracted over closures, which is what lets the zero-copy
//! [`ColsView`](crate::ColsView) serving path reuse the exact same schedule — and
//! therefore produce the exact same bits — as a materialized matrix would.
//!
//! Two kernel modes share that schedule (see [`KernelMode`]):
//!
//! * **Strict** (default): multiply and add stay separate instructions, so SIMD and
//!   scalar builds produce the same bits on every host.
//! * **Fma** (opt-in via `TCCA_KERNEL_MODE=fma` or [`set_kernel_mode`]): the
//!   microkernel contracts each `a·b + acc` into a fused multiply-add
//!   (`vfmadd` under AVX2+FMA) — roughly twice the multiply throughput, but the
//!   single rounding per FMA **changes bits relative to strict mode**. FMA results
//!   are still deterministic *within the mode*: the contraction is applied
//!   uniformly at every reduction step, so FMA output is bit-identical across
//!   thread counts and runs — it just needs its **own** checksum baseline. CI
//!   diffs each mode against its own baseline, never across modes.
//!
//! The mode is process-wide and fixed at first use (a per-call switch would let two
//! replicas of one logical request disagree bit-wise mid-flight). Requesting FMA on
//! a host without AVX2+FMA silently resolves to strict — the fallback must never
//! masquerade as the FMA baseline.

use crate::Matrix;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Micro-tile rows: output rows whose accumulators stay live in registers.
pub const MR: usize = 4;
/// Widest micro-tile column count: the autovectorized lane width of the inner loop
/// for general shapes. The dispatcher instantiates `NR/2`-wide tiles for outputs
/// that are at most `NR/2` columns wide.
pub const NR: usize = 8;
/// Reduction block depth: one packed `KC×NRV` B-panel (`KC·NRV·sizeof(E)` bytes —
/// at most 16 KiB for the widest f64 tile) stays L1-resident while each A
/// micro-panel streams against it.
pub const KC: usize = 256;
/// Rows of `A` packed per block: `MC×KC` doubles (128 KiB) sit in L2 while the
/// packed micro-panels are re-read once per B panel.
pub const MC: usize = 64;

/// The skinny tile width the dispatcher picks when `n <= NR/2`.
const NR_SKINNY: usize = NR / 2;

/// Byte budget for the shared packed-B arena: k-blocks are grouped into
/// super-blocks whose packed panels fit this budget, so one pack fan-out and one
/// band fan-out cover many k-blocks without the arena outgrowing the cache
/// hierarchy (or, for tall operands, the heap).
const B_ARENA_BUDGET: usize = 4 << 20;

/// Process-wide floating-point contraction mode of the GEMM microkernel.
///
/// Fixed at first kernel use and never changed afterwards — see the module docs
/// for why FMA is opt-in and how its separate checksum baseline works. The
/// discriminants are stable (`Strict = 0`, `Fma = 1`) and surfaced as the
/// `kernel/mode` stats gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum KernelMode {
    /// Separate multiply and add instructions: bit-identical across SIMD/scalar
    /// builds and every host. The default.
    Strict = 0,
    /// Fused multiply-add contraction (`avx2,fma`): ~2× multiply throughput,
    /// different bits than strict, deterministic within the mode.
    Fma = 1,
}

static MODE: OnceLock<KernelMode> = OnceLock::new();
static SHARED_PACK_HITS: AtomicU64 = AtomicU64::new(0);

/// Environment variable selecting the kernel mode (`strict` or `fma`), read once
/// per process at first kernel use. Takes precedence over [`set_kernel_mode`].
pub const ENV_KERNEL_MODE: &str = "TCCA_KERNEL_MODE";

fn mode_from_env() -> Option<KernelMode> {
    match std::env::var(ENV_KERNEL_MODE)
        .ok()?
        .trim()
        .to_ascii_lowercase()
        .as_str()
    {
        "fma" => Some(KernelMode::Fma),
        "strict" => Some(KernelMode::Strict),
        _ => None,
    }
}

/// Clamp a requested mode to what the host can actually run: FMA without
/// AVX2+FMA hardware resolves to strict rather than producing strict bits under
/// an FMA label.
fn clamp_to_host(mode: KernelMode) -> KernelMode {
    match mode {
        KernelMode::Strict => KernelMode::Strict,
        KernelMode::Fma => {
            #[cfg(target_arch = "x86_64")]
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return KernelMode::Fma;
            }
            KernelMode::Strict
        }
    }
}

/// The process-wide [`KernelMode`], resolving it on first call: the
/// [`ENV_KERNEL_MODE`] environment variable if set, else whatever
/// [`set_kernel_mode`] requested before first use, else [`KernelMode::Strict`].
pub fn kernel_mode() -> KernelMode {
    *MODE.get_or_init(|| clamp_to_host(mode_from_env().unwrap_or(KernelMode::Strict)))
}

/// Explicitly opt in to a kernel mode (the builder-API counterpart of
/// `TCCA_KERNEL_MODE`). Returns the mode the process actually ends up in, which
/// may differ from the request when the environment variable overrides it, the
/// mode was already fixed by an earlier kernel call, or the host lacks FMA.
pub fn set_kernel_mode(requested: KernelMode) -> KernelMode {
    *MODE.get_or_init(|| clamp_to_host(mode_from_env().unwrap_or(requested)))
}

/// Lifetime count of packed B-panels a row band consumed without having packed
/// them itself — the duplicated O(k·n) packing work the shared arena eliminated.
/// Surfaced as the `engine/shared_pack_hits` serving counter.
pub fn shared_pack_hits() -> u64 {
    SHARED_PACK_HITS.load(Ordering::Relaxed)
}

/// The scalar element type the engine is instantiated over: `f64` everywhere, and
/// `f32` for the opt-in reduced-precision serving path. `madd` keeps multiply and
/// add as separate roundings (strict mode); `fmadd` contracts them into one
/// (`mul_add` compiles to a fused instruction inside the `avx2,fma` band).
pub(crate) trait Element:
    Copy + Send + Sync + PartialEq + std::ops::Add<Output = Self> + 'static
{
    /// Additive identity, used to zero accumulators and pad edge tiles.
    const ZERO: Self;
    /// `self + a * b` with two roundings (strict mode).
    fn madd(self, a: Self, b: Self) -> Self;
    /// `self + a * b` with a single rounding (FMA mode).
    fn fmadd(self, a: Self, b: Self) -> Self;
}

impl Element for f64 {
    const ZERO: Self = 0.0;
    #[inline(always)]
    fn madd(self, a: Self, b: Self) -> Self {
        self + a * b
    }
    #[inline(always)]
    fn fmadd(self, a: Self, b: Self) -> Self {
        a.mul_add(b, self)
    }
}

impl Element for f32 {
    const ZERO: Self = 0.0;
    #[inline(always)]
    fn madd(self, a: Self, b: Self) -> Self {
        self + a * b
    }
    #[inline(always)]
    fn fmadd(self, a: Self, b: Self) -> Self {
        a.mul_add(b, self)
    }
}

/// Packing callback: `pack(dst, first, valid, p0, kc)` fills `dst` (length
/// `kc * MR` for A sources, `kc * NRV` for B sources — B packers derive the lane
/// width from `dst.len() / kc` so one packer serves every tile instantiation)
/// with the operand values for lanes `first..first + valid` over reduction
/// indices `p0..p0 + kc`, laid out lane-fastest (`dst[step * LANES + lane]`).
/// Lanes `>= valid` must be zeroed.
pub(crate) type Pack<'a, E> = &'a (dyn Fn(&mut [E], usize, usize, usize, usize) + Sync);

/// How the band loop obtains the left operand's micro-panels.
#[derive(Clone, Copy)]
pub(crate) enum ASource<'a, E> {
    /// Copy micro-panels through the packer — the general case.
    Packed(Pack<'a, E>),
    /// The operand is already lane-fastest in memory: lanes `first..first + MR`
    /// at reduction step `p` live at `data[p * stride + first..][..MR]` (the
    /// `Aᵀ` operand of `t_matmul`, where `stride` is the row length ≥ `m`).
    /// Single-panel outputs stream it directly and skip the pack copy; `pack`
    /// still serves edge tiles and the multi-panel shapes where packed reuse
    /// wins.
    Strided {
        /// The operand's backing storage in step-major, lane-fastest layout.
        data: &'a [E],
        /// Elements between consecutive reduction steps.
        stride: usize,
        /// Fallback packer describing the same operand.
        pack: Pack<'a, E>,
    },
}

/// One reduction step of an `MR×NRV` tile: `acc[i][j] (+)= a[i] · b[j]`, where
/// `(+)` is a separate multiply-and-add in strict mode (`FMA = false`) and a
/// fused contraction in FMA mode. Fixed-size array inputs keep the body free of
/// bounds checks; the `j` loop vectorizes over the element lanes.
#[inline(always)]
fn tile_step<E: Element, const NRV: usize, const FMA: bool>(
    a: &[E; MR],
    b: &[E; NRV],
    acc: &mut [[E; NRV]; MR],
) {
    for i in 0..MR {
        let ai = a[i];
        for j in 0..NRV {
            acc[i][j] = if FMA {
                acc[i][j].fmadd(ai, b[j])
            } else {
                acc[i][j].madd(ai, b[j])
            };
        }
    }
}

/// Compute one `MR×NRV` tile from packed panels: `kc` ascending reduction steps
/// of [`tile_step`]. `inline(always)` so the caller's target features (the AVX
/// bands below) apply to the body — that is what turns the `NRV` lanes into ymm
/// `vmulpd`/`vaddpd` (strict) or `vfmadd` (FMA) arithmetic.
#[inline(always)]
fn microkernel<E: Element, const NRV: usize, const FMA: bool>(
    kc: usize,
    ap: &[E],
    bp: &[E],
    acc: &mut [[E; NRV]; MR],
) {
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NRV)).take(kc) {
        let a: &[E; MR] = a.try_into().expect("packed A lane width");
        let b: &[E; NRV] = b.try_into().expect("packed B lane width");
        tile_step::<E, NRV, FMA>(a, b, acc);
    }
}

/// [`microkernel`] reading the A operand in place at `a[p * stride..][..MR]`
/// instead of from a packed micro-panel — the direct path for
/// `ASource::Strided` operands. Identical values in identical order, so the
/// bits match the packed variant exactly.
#[inline(always)]
fn microkernel_strided<E: Element, const NRV: usize, const FMA: bool>(
    kc: usize,
    a: &[E],
    stride: usize,
    bp: &[E],
    acc: &mut [[E; NRV]; MR],
) {
    for (p, b) in bp.chunks_exact(NRV).take(kc).enumerate() {
        let a: &[E; MR] = a[p * stride..p * stride + MR]
            .try_into()
            .expect("strided A lane width");
        let b: &[E; NRV] = b.try_into().expect("packed B lane width");
        tile_step::<E, NRV, FMA>(a, b, acc);
    }
}

/// Blocked GEMM driver: `out[m×n] += Aᵒᵖ[m×k] · Bᵒᵖ[k×n]`, with the operands
/// supplied as packing closures (see [`Pack`]) so normal, transposed and
/// multi-part zero-copy sources all share one engine.
///
/// With `upper_only` set, micro-tiles strictly below the main diagonal are
/// skipped — the symmetric rank-k callers mirror the upper triangle afterwards.
/// Rows are partitioned over `threads` in multiples of [`MR`]; the accumulation
/// schedule is independent of the partition (see module docs).
// The argument list mirrors the BLAS gemm surface (shape triple, output, threading,
// triangle restriction, two operand sources); a param struct would only rename it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm(
    m: usize,
    n: usize,
    k: usize,
    out: &mut Matrix,
    threads: usize,
    upper_only: bool,
    pack_a: Pack<'_, f64>,
    pack_b: Pack<'_, f64>,
) {
    gemm_a(
        m,
        n,
        k,
        out,
        threads,
        upper_only,
        ASource::Packed(pack_a),
        pack_b,
    );
}

/// [`gemm`] with an explicit [`ASource`], letting `t_matmul`-shaped callers hand
/// over the operand's in-place layout for the skinny direct path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_a(
    m: usize,
    n: usize,
    k: usize,
    out: &mut Matrix,
    threads: usize,
    upper_only: bool,
    a: ASource<'_, f64>,
    pack_b: Pack<'_, f64>,
) {
    debug_assert_eq!(out.shape(), (m, n));
    gemm_slice::<f64>(m, n, k, out.as_mut_slice(), threads, upper_only, a, pack_b);
}

/// The element-generic entry point (the f32 serving path calls this directly with
/// an `f32` output slice). Resolves the process kernel mode and dispatches to the
/// tile instantiation matching the output width.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_slice<E: Element>(
    m: usize,
    n: usize,
    k: usize,
    out: &mut [E],
    threads: usize,
    upper_only: bool,
    a: ASource<'_, E>,
    pack_b: Pack<'_, E>,
) {
    let fma = kernel_mode() == KernelMode::Fma;
    gemm_slice_mode(m, n, k, out, threads, upper_only, fma, a, pack_b);
}

/// [`gemm_slice`] with the contraction mode passed explicitly — the seam the unit
/// tests use to exercise the FMA build regardless of the process-wide mode.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_slice_mode<E: Element>(
    m: usize,
    n: usize,
    k: usize,
    out: &mut [E],
    threads: usize,
    upper_only: bool,
    fma: bool,
    a: ASource<'_, E>,
    pack_b: Pack<'_, E>,
) {
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Skinny-tile dispatch: when the whole output fits in half the widest tile,
    // instantiate NR/2-wide tiles instead of padding. Never affects bits — each
    // element's reduction order is a function of k alone.
    if n <= NR_SKINNY {
        gemm_driver::<E, NR_SKINNY>(m, n, k, out, threads, upper_only, fma, a, pack_b);
    } else {
        gemm_driver::<E, NR>(m, n, k, out, threads, upper_only, fma, a, pack_b);
    }
}

/// One tile-width instantiation of the driver. The reduction loop is the
/// outermost: k-blocks are grouped into arena-budget super-blocks, each
/// super-block's B panels are packed once into the shared arena (fanned out over
/// the worker threads), then the row bands consume it in parallel, walking the
/// super-block's k-blocks in ascending order.
#[allow(clippy::too_many_arguments)]
fn gemm_driver<E: Element, const NRV: usize>(
    m: usize,
    n: usize,
    k: usize,
    out: &mut [E],
    threads: usize,
    upper_only: bool,
    fma: bool,
    a: ASource<'_, E>,
    pack_b: Pack<'_, E>,
) {
    // Whole MR-blocks per thread band (a couple per thread for load balance); the
    // band boundary never splits a micro-tile, so each band is an independent
    // sub-problem of the same schedule.
    let mr_blocks = m.div_ceil(MR);
    let blocks_per_band = mr_blocks.div_ceil(threads.max(1) * 2).max(1);
    let band_rows = blocks_per_band * MR;
    let n_bands = m.div_ceil(band_rows);
    let n_panels = n.div_ceil(NRV);
    let kc_max = KC.min(k);
    let total_blocks = k.div_ceil(KC);

    // Packed A reuse only pays off when several panels re-read each micro-panel;
    // single-panel outputs stream a lane-fastest operand in place instead.
    let a = match a {
        ASource::Strided { pack, .. } if n_panels > 1 => ASource::Packed(pack),
        src => src,
    };

    // Arena geometry: every k-block slot is stride-allocated at full KC depth so
    // panel offsets are uniform; the last (shorter) block just leaves its tail
    // unread.
    let block_stride = n_panels * NRV * kc_max;
    let sb_blocks =
        (B_ARENA_BUDGET / (block_stride * std::mem::size_of::<E>()).max(1)).clamp(1, total_blocks);
    let mut bp = vec![E::ZERO; sb_blocks * block_stride];

    let mut b0 = 0;
    while b0 < total_blocks {
        let nb = sb_blocks.min(total_blocks - b0);
        let sb_p0 = b0 * KC;
        // Pack every B panel of this super-block exactly once, splitting the
        // panels over the same worker budget the bands get.
        let fill = &mut bp[..nb * block_stride];
        parallel::for_each_chunk_mut(fill, NRV * kc_max, threads, |c, panel| {
            let (bi, jp) = (c / n_panels, c % n_panels);
            let p0 = sb_p0 + bi * KC;
            let kc = KC.min(k - p0);
            let j0 = jp * NRV;
            pack_b(&mut panel[..NRV * kc], j0, NRV.min(n - j0), p0, kc);
        });
        if n_bands > 1 {
            // Every band beyond the first consumes panels it did not pack.
            SHARED_PACK_HITS.fetch_add((nb * n_panels * (n_bands - 1)) as u64, Ordering::Relaxed);
        }
        let arena: &[E] = &bp[..nb * block_stride];
        parallel::for_each_chunk_mut(out, band_rows * n, threads, |band, chunk| {
            let mut ap = vec![E::ZERO; MC * kc_max];
            for bi in 0..nb {
                let p0 = sb_p0 + bi * KC;
                let kc = KC.min(k - p0);
                band_kblock::<E, NRV>(
                    fma,
                    band * band_rows,
                    chunk,
                    n,
                    p0,
                    kc,
                    upper_only,
                    a,
                    &arena[bi * block_stride..(bi + 1) * block_stride],
                    &mut ap,
                );
            }
        });
        b0 += nb;
    }
}

/// One thread band's share of one k-block: rows `band_i0..band_i0 + c.len() / n`
/// against the shared packed B arena (`bp`, panel `jp` at offset
/// `jp * NRV * KC.min(k)`). Dispatches once to the widest SIMD build of the loop
/// the host supports; every strict build runs the identical accumulation schedule
/// (vector lanes are independent output elements), so the strict dispatch never
/// affects a single bit. The FMA build is only reachable when the process mode
/// resolved to [`KernelMode::Fma`] (which implies AVX2+FMA hardware).
#[allow(clippy::too_many_arguments)]
fn band_kblock<E: Element, const NRV: usize>(
    fma: bool,
    band_i0: usize,
    c: &mut [E],
    n: usize,
    p0: usize,
    kc: usize,
    upper_only: bool,
    a: ASource<'_, E>,
    bp: &[E],
    ap: &mut [E],
) {
    #[cfg(target_arch = "x86_64")]
    {
        static HAS_AVX2: OnceLock<bool> = OnceLock::new();
        if fma {
            // SAFETY: `fma == true` only after `clamp_to_host` (or the unit tests)
            // verified AVX2+FMA at runtime.
            unsafe {
                band_kblock_fma::<E, NRV>(band_i0, c, n, p0, kc, upper_only, a, bp, ap);
            }
            return;
        }
        if *HAS_AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2")) {
            // SAFETY: AVX2 support was verified at runtime just above.
            unsafe {
                band_kblock_avx2::<E, NRV>(band_i0, c, n, p0, kc, upper_only, a, bp, ap);
            }
            return;
        }
    }
    let _ = fma; // non-x86 hosts always resolve to the strict scalar build
    band_kblock_impl::<E, NRV, false>(band_i0, c, n, p0, kc, upper_only, a, bp, ap);
}

/// The band loop recompiled with 256-bit vectors enabled: the `inline(always)`
/// body below (microkernels included) picks up the target feature, so the `NRV`
/// lanes become ymm arithmetic. No FMA contraction — mul and add stay separate —
/// so the results are bit-identical to the scalar build.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn band_kblock_avx2<E: Element, const NRV: usize>(
    band_i0: usize,
    c: &mut [E],
    n: usize,
    p0: usize,
    kc: usize,
    upper_only: bool,
    a: ASource<'_, E>,
    bp: &[E],
    ap: &mut [E],
) {
    band_kblock_impl::<E, NRV, false>(band_i0, c, n, p0, kc, upper_only, a, bp, ap);
}

/// The band loop recompiled with AVX2 **and** FMA enabled, instantiating the
/// contracted microkernel: each `a·b + acc` becomes one `vfmadd`. Different bits
/// than strict mode, deterministic within the mode (see module docs).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn band_kblock_fma<E: Element, const NRV: usize>(
    band_i0: usize,
    c: &mut [E],
    n: usize,
    p0: usize,
    kc: usize,
    upper_only: bool,
    a: ASource<'_, E>,
    bp: &[E],
    ap: &mut [E],
) {
    band_kblock_impl::<E, NRV, true>(band_i0, c, n, p0, kc, upper_only, a, bp, ap);
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn band_kblock_impl<E: Element, const NRV: usize, const FMA: bool>(
    band_i0: usize,
    c: &mut [E],
    n: usize,
    p0: usize,
    kc: usize,
    upper_only: bool,
    a: ASource<'_, E>,
    bp: &[E],
    ap: &mut [E],
) {
    let band_m = c.len() / n;
    let n_panels = n.div_ceil(NRV);
    // Panels sit at a fixed kc_max stride in the arena slot even when this
    // (trailing) k-block is shorter; only the first NRV*kc values of each are
    // live.
    let panel_stride = bp.len() / n_panels;
    let mut i0 = 0;
    while i0 < band_m {
        let mc = MC.min(band_m - i0);
        let a_blocks = mc.div_ceil(MR);
        match a {
            ASource::Packed(pack_a) => {
                for ib in 0..a_blocks {
                    let i = i0 + ib * MR;
                    pack_a(
                        &mut ap[ib * MR * kc..(ib + 1) * MR * kc],
                        band_i0 + i,
                        MR.min(mc - ib * MR),
                        p0,
                        kc,
                    );
                }
            }
            ASource::Strided { pack, .. } => {
                // Full tiles stream straight from the source; only a trailing
                // edge tile (fewer than MR valid lanes) needs the zero-padded
                // packed form.
                let last = a_blocks - 1;
                let mv = mc - last * MR;
                if mv < MR {
                    pack(
                        &mut ap[last * MR * kc..(last + 1) * MR * kc],
                        band_i0 + i0 + last * MR,
                        mv,
                        p0,
                        kc,
                    );
                }
            }
        }
        for jp in 0..n_panels {
            let j0 = jp * NRV;
            let nv = NRV.min(n - j0);
            let bp_panel = &bp[jp * panel_stride..jp * panel_stride + NRV * kc];
            for ib in 0..a_blocks {
                let row0 = i0 + ib * MR;
                // Tiles whose every column lies strictly below the diagonal
                // contribute nothing to the upper triangle; the caller's mirror
                // pass fills those entries.
                if upper_only && j0 + nv <= band_i0 + row0 {
                    continue;
                }
                let mv = MR.min(mc - ib * MR);
                let mut acc = [[E::ZERO; NRV]; MR];
                match a {
                    ASource::Strided { data, stride, .. } if mv == MR => {
                        let first = band_i0 + row0;
                        microkernel_strided::<E, NRV, FMA>(
                            kc,
                            &data[p0 * stride + first..],
                            stride,
                            bp_panel,
                            &mut acc,
                        );
                    }
                    _ => microkernel::<E, NRV, FMA>(
                        kc,
                        &ap[ib * MR * kc..(ib + 1) * MR * kc],
                        bp_panel,
                        &mut acc,
                    ),
                }
                for (ii, acc_row) in acc.iter().enumerate().take(mv) {
                    let base = (row0 + ii) * n + j0;
                    let row = &mut c[base..base + nv];
                    for (o, v) in row.iter_mut().zip(acc_row[..nv].iter()) {
                        *o = *o + *v;
                    }
                }
            }
        }
        i0 += mc;
    }
}

/// Pack lanes of `A` itself (`lane i`, `step p` → `a[i][p]`): the `C = A·B` and
/// `C = A·Bᵀ` left operand.
pub(crate) fn pack_rows(a: &Matrix) -> impl Fn(&mut [f64], usize, usize, usize, usize) + Sync + '_ {
    move |dst, i0, valid, p0, kc| {
        if valid < MR {
            dst.fill(0.0);
        }
        for ii in 0..valid {
            let row = &a.row(i0 + ii)[p0..p0 + kc];
            for (p, &v) in row.iter().enumerate() {
                dst[p * MR + ii] = v;
            }
        }
    }
}

/// Pack lanes of `Aᵀ` (`lane i`, `step p` → `a[p][i]`): the `C = Aᵀ·B` left
/// operand. Reads stream along the rows of `a`.
pub(crate) fn pack_cols(a: &Matrix) -> impl Fn(&mut [f64], usize, usize, usize, usize) + Sync + '_ {
    move |dst, i0, valid, p0, kc| {
        if valid < MR {
            dst.fill(0.0);
        }
        for p in 0..kc {
            let seg = &a.row(p0 + p)[i0..i0 + valid];
            let lane = &mut dst[p * MR..p * MR + valid];
            lane.copy_from_slice(seg);
        }
    }
}

/// Pack row panels of `B` (`step p`, `lane j` → `b[p][j]`): the `C = A·B` and
/// `C = Aᵀ·B` right operand. Copies are contiguous row segments. The lane width
/// comes from the destination slice, so the same packer serves the wide and
/// skinny tile instantiations.
pub(crate) fn pack_panel_rows(
    b: &Matrix,
) -> impl Fn(&mut [f64], usize, usize, usize, usize) + Sync + '_ {
    move |dst, j0, valid, p0, kc| {
        let w = dst.len() / kc;
        if valid < w {
            dst.fill(0.0);
        }
        for p in 0..kc {
            let seg = &b.row(p0 + p)[j0..j0 + valid];
            dst[p * w..p * w + valid].copy_from_slice(seg);
        }
    }
}

/// Pack panels of `Bᵀ` (`step p`, `lane j` → `b[j][p]`): the `C = A·Bᵀ` right
/// operand. Reads stream along the rows of `b`; lane width from the destination.
pub(crate) fn pack_panel_cols(
    b: &Matrix,
) -> impl Fn(&mut [f64], usize, usize, usize, usize) + Sync + '_ {
    move |dst, j0, valid, p0, kc| {
        let w = dst.len() / kc;
        if valid < w {
            dst.fill(0.0);
        }
        for jj in 0..valid {
            let row = &b.row(j0 + jj)[p0..p0 + kc];
            for (p, &v) in row.iter().enumerate() {
                dst[p * w + jj] = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize, seed: f64) -> Matrix {
        let data = (0..rows * cols)
            .map(|i| ((i as f64) * 0.37 + seed).sin())
            .collect();
        Matrix::from_vec(rows, cols, data).unwrap()
    }

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.row(i)[p] * b.row(p)[j];
                }
                out.row_mut(i)[j] = acc;
            }
        }
        out
    }

    fn run_mode(a: &Matrix, b: &Matrix, threads: usize, fma: bool) -> Matrix {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Matrix::zeros(m, n);
        gemm_slice_mode(
            m,
            n,
            k,
            out.as_mut_slice(),
            threads,
            false,
            fma,
            ASource::Packed(&pack_rows(a)),
            &pack_panel_rows(b),
        );
        out
    }

    /// `aᵀ·b` through the strided direct-A path (the `t_matmul` layout).
    fn run_t_strided(a: &Matrix, b: &Matrix, threads: usize) -> Matrix {
        let (m, k, n) = (a.cols(), a.rows(), b.cols());
        let mut out = Matrix::zeros(m, n);
        gemm_slice_mode(
            m,
            n,
            k,
            out.as_mut_slice(),
            threads,
            false,
            false,
            ASource::Strided {
                data: a.as_slice(),
                stride: a.cols(),
                pack: &pack_cols(a),
            },
            &pack_panel_rows(b),
        );
        out
    }

    #[test]
    fn fma_mode_matches_strict_within_tolerance_and_is_thread_deterministic() {
        #[cfg(target_arch = "x86_64")]
        {
            if !(std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma"))
            {
                return;
            }
            let a = sample(2 * MC + 3, KC + 5, 0.3);
            let b = sample(KC + 5, 2 * NR + 1, 0.7);
            let strict = run_mode(&a, &b, 1, false);
            let fma1 = run_mode(&a, &b, 1, true);
            let fma4 = run_mode(&a, &b, 4, true);
            // FMA is deterministic within the mode: thread counts never change bits.
            assert_eq!(fma1, fma4);
            // And it computes the same product up to the contraction's rounding.
            for (x, y) in strict.as_slice().iter().zip(fma1.as_slice()) {
                let scale = (KC + 5) as f64;
                assert!(
                    (x - y).abs() <= 1e-12 * scale * x.abs().max(1.0),
                    "strict {x} vs fma {y}"
                );
            }
        }
    }

    #[test]
    fn skinny_tile_dispatch_is_bit_identical_to_wide() {
        // n <= NR/2 takes the skinny driver; padding the same operand out to a
        // wide shape and slicing back must give the exact same bits, because the
        // per-element reduction order is independent of the tile width.
        let a = sample(3 * MR + 2, KC + 3, 0.1);
        let b_narrow = sample(KC + 3, NR_SKINNY, 0.2);
        let narrow = run_mode(&a, &b_narrow, 2, false);
        // Same columns through the wide tile: append extra columns, then compare
        // only the original ones.
        let mut wide_data = Vec::new();
        for p in 0..b_narrow.rows() {
            wide_data.extend_from_slice(b_narrow.row(p));
            for j in 0..NR {
                wide_data.push(((p * NR + j) as f64).cos());
            }
        }
        let b_wide = Matrix::from_vec(b_narrow.rows(), NR_SKINNY + NR, wide_data).unwrap();
        let wide = run_mode(&a, &b_wide, 2, false);
        for i in 0..narrow.rows() {
            assert_eq!(
                narrow.row(i),
                &wide.row(i)[..NR_SKINNY],
                "row {i} differs between tile widths"
            );
        }
        // Within a single k-block the blocked schedule degenerates to the naive
        // ascending loop, so strict mode matches the triple loop bit for bit.
        let a1 = sample(3 * MR + 2, KC - 5, 0.1);
        let b1 = sample(KC - 5, NR_SKINNY, 0.2);
        assert_eq!(run_mode(&a1, &b1, 2, false), naive(&a1, &b1));
    }

    #[test]
    fn strided_direct_a_is_bit_identical_to_packed() {
        // Shapes straddling the MR/skinny edges, plus a k spanning two k-blocks.
        for (k, m, n) in [
            (64, 4 * MR, NR_SKINNY),
            (KC + 9, 3 * MR + 2, NR_SKINNY - 1),
            (33, 2 * MC + 1, 2),
        ] {
            let a = sample(k, m, 0.4); // k×m: the t_matmul left operand
            let b = sample(k, n, 0.8);
            let direct = run_t_strided(&a, &b, 2);
            // Packed reference through the same packer the fallback uses.
            let mut packed = Matrix::zeros(m, n);
            gemm_slice_mode(
                m,
                n,
                k,
                packed.as_mut_slice(),
                2,
                false,
                false,
                ASource::Packed(&pack_cols(&a)),
                &pack_panel_rows(&b),
            );
            assert_eq!(direct, packed, "direct vs packed at {k}x{m}x{n}");
        }
    }

    #[test]
    fn shared_pack_hits_advance_with_multiple_bands() {
        let before = shared_pack_hits();
        let a = sample(8 * MR * 4, 64, 0.5);
        let b = sample(64, 2 * NR, 0.9);
        let multi = run_mode(&a, &b, 4, false);
        assert!(
            shared_pack_hits() > before,
            "multi-band run must reuse shared panels"
        );
        // And sharing the arena never changes bits vs a single band.
        assert_eq!(multi, run_mode(&a, &b, 1, false));
    }

    #[test]
    fn f32_instantiation_tracks_f64_within_tolerance() {
        let a64 = sample(37, 129, 0.2);
        let b64 = sample(129, 3, 0.6);
        let a32: Vec<f32> = a64.as_slice().iter().map(|&v| v as f32).collect();
        let b32: Vec<f32> = b64.as_slice().iter().map(|&v| v as f32).collect();
        let (m, k, n) = (37, 129, 3);
        let mut out32 = vec![0.0f32; m * n];
        let pack_a = move |dst: &mut [f32], i0: usize, valid: usize, p0: usize, kc: usize| {
            if valid < MR {
                dst.fill(0.0);
            }
            for ii in 0..valid {
                for p in 0..kc {
                    dst[p * MR + ii] = a32[(i0 + ii) * 129 + p0 + p];
                }
            }
        };
        let pack_b = move |dst: &mut [f32], j0: usize, valid: usize, p0: usize, kc: usize| {
            let w = dst.len() / kc;
            if valid < w {
                dst.fill(0.0);
            }
            for p in 0..kc {
                for jj in 0..valid {
                    dst[p * w + jj] = b32[(p0 + p) * n + j0 + jj];
                }
            }
        };
        gemm_slice_mode(
            m,
            n,
            k,
            &mut out32,
            2,
            false,
            false,
            ASource::Packed(&pack_a),
            &pack_b,
        );
        let reference = naive(&a64, &b64);
        for (i, (&got, &want)) in out32.iter().zip(reference.as_slice().iter()).enumerate() {
            let tol = 4.0 * k as f64 * f64::from(f32::EPSILON);
            assert!(
                (f64::from(got) - want).abs() <= tol * want.abs().max(1.0),
                "element {i}: f32 {got} vs f64 {want}"
            );
        }
    }

    #[test]
    fn kernel_mode_resolves_once() {
        let first = kernel_mode();
        // Whatever the process resolved to, later requests cannot change it.
        assert_eq!(set_kernel_mode(KernelMode::Fma), first);
        assert_eq!(kernel_mode(), first);
    }
}
