//! The blocked, packed GEMM engine behind every dense product kernel.
//!
//! All of `matmul`, `t_matmul`, `matmul_t`, `t_matmul_acc`, `syrk`/`syrk_t` (and
//! through them `gram`, covariance/whitening, PCA and the CP-ALS solvers) funnel into
//! `gemm`, a single BLIS-style driver:
//!
//! * the reduction dimension is split into blocks of [`KC`] values;
//! * for each k-block, panels of `B` ([`KC`]`×`[`NR`]) and micro-panels of `A`
//!   ([`KC`]`×`[`MR`]) are **packed** into dense, cache-resident scratch buffers laid
//!   out exactly as the inner loop consumes them (one `MR`-lane and one `NR`-lane row
//!   per reduction step);
//! * the `microkernel` computes an `MR×NR` output tile with all `MR·NR`
//!   accumulators live in registers, reading each packed value once. Its body indexes
//!   fixed-size arrays only (`&[f64; MR]` / `&[f64; NR]` obtained via
//!   `chunks_exact`), so there are **no bounds checks inside the tile loop** and the
//!   `NR`-wide lane arithmetic autovectorizes.
//!
//! Edge tiles are handled by zero-padding the packed panels to full `MR`/`NR` width
//! and copying back only the valid lanes, so the hot loop never branches on tile
//! validity.
//!
//! ## Determinism contract
//!
//! Every output element accumulates its reduction in **ascending index order**: the
//! k-blocks are visited in ascending order, each micro-tile accumulates ascending
//! within a block, and the per-element partial sums are added onto the output in
//! k-block order. That schedule depends only on the problem shape — never on the
//! thread count, which partitions output *rows* exclusively — so results are
//! bit-identical for every `threads >= 1` (the invariant `crates/parallel` documents
//! and `crates/linalg/tests/properties.rs` pins down). The packing source is
//! abstracted over closures, which is what lets the zero-copy
//! [`ColsView`](crate::ColsView) serving path reuse the exact same schedule — and
//! therefore produce the exact same bits — as a materialized matrix would.

use crate::Matrix;

/// Micro-tile rows: output rows whose accumulators stay live in registers.
pub const MR: usize = 4;
/// Micro-tile columns: the autovectorized f64 lane width of the inner loop.
pub const NR: usize = 8;
/// Reduction block depth: one packed `KC×NR` B-panel (16 KiB) stays L1-resident
/// while each A micro-panel streams against it.
pub const KC: usize = 256;
/// Rows of `A` packed per block: `MC×KC` doubles (128 KiB) sit in L2 while the
/// packed micro-panels are re-read once per B panel.
pub const MC: usize = 64;

/// Packing callback: `pack(dst, first, valid, p0, kc)` fills `dst` (length
/// `kc * MR` for A sources, `kc * NR` for B sources) with the operand values for
/// lanes `first..first + valid` over reduction indices `p0..p0 + kc`, laid out
/// lane-fastest (`dst[step * LANES + lane]`). Lanes `>= valid` must be zeroed.
type Pack<'a> = &'a (dyn Fn(&mut [f64], usize, usize, usize, usize) + Sync);

/// Compute one `MR×NR` tile: `acc[i][j] += Σ_p ap[p][i] · bp[p][j]` over `kc`
/// ascending reduction steps of the packed panels. The only loop bounds are the
/// compile-time `MR`/`NR` and the exact-chunk iterator, so the body is free of
/// bounds checks and the `j` loop vectorizes over the f64 lanes.
///
/// `inline(always)` so the caller's target features (the AVX band below) apply to
/// this body — that is what turns the `NR` lanes into 256-bit `vmulpd`/`vaddpd`.
#[inline(always)]
fn microkernel(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        let a: &[f64; MR] = a.try_into().expect("packed A lane width");
        let b: &[f64; NR] = b.try_into().expect("packed B lane width");
        for i in 0..MR {
            let ai = a[i];
            for j in 0..NR {
                acc[i][j] += ai * b[j];
            }
        }
    }
}

/// Blocked GEMM driver: `out[m×n] += Aᵒᵖ[m×k] · Bᵒᵖ[k×n]`, with the operands
/// supplied as packing closures (see [`Pack`]) so normal, transposed and
/// multi-part zero-copy sources all share one engine.
///
/// With `upper_only` set, micro-tiles strictly below the main diagonal are
/// skipped — the symmetric rank-k callers mirror the upper triangle afterwards.
/// Rows are partitioned over `threads` in multiples of [`MR`]; the accumulation
/// schedule is independent of the partition (see module docs).
// The argument list mirrors the BLAS gemm surface (shape triple, output, threading,
// triangle restriction, two operand sources); a param struct would only rename it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm(
    m: usize,
    n: usize,
    k: usize,
    out: &mut Matrix,
    threads: usize,
    upper_only: bool,
    pack_a: Pack<'_>,
    pack_b: Pack<'_>,
) {
    debug_assert_eq!(out.shape(), (m, n));
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Whole MR-blocks per thread band (a couple per thread for load balance); the
    // band boundary never splits a micro-tile, so each band is an independent
    // sub-problem of the same schedule.
    let mr_blocks = m.div_ceil(MR);
    let blocks_per_band = mr_blocks.div_ceil(threads.max(1) * 2).max(1);
    let band_rows = blocks_per_band * MR;
    parallel::for_each_chunk_mut(out.as_mut_slice(), band_rows * n, threads, |band, chunk| {
        gemm_band(band * band_rows, chunk, n, k, upper_only, pack_a, pack_b);
    });
}

/// One thread's share of the output: rows `band_i0..band_i0 + c.len() / n`.
/// Dispatches once per band to the widest SIMD build of the loop the host
/// supports; every build runs the identical accumulation schedule (vector lanes
/// are independent output elements), so the dispatch never affects a single bit.
fn gemm_band(
    band_i0: usize,
    c: &mut [f64],
    n: usize,
    k: usize,
    upper_only: bool,
    pack_a: Pack<'_>,
    pack_b: Pack<'_>,
) {
    #[cfg(target_arch = "x86_64")]
    {
        static HAS_AVX2: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        if *HAS_AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2")) {
            // SAFETY: AVX2 support was verified at runtime just above.
            unsafe { gemm_band_avx2(band_i0, c, n, k, upper_only, pack_a, pack_b) };
            return;
        }
    }
    gemm_band_impl(band_i0, c, n, k, upper_only, pack_a, pack_b);
}

/// The band loop recompiled with 256-bit vectors enabled: the `inline(always)`
/// body below (microkernel included) picks up the target feature, so the `NR`
/// f64 lanes become ymm arithmetic. No FMA contraction — Rust keeps mul and add
/// separate — so the results are bit-identical to the scalar build.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_band_avx2(
    band_i0: usize,
    c: &mut [f64],
    n: usize,
    k: usize,
    upper_only: bool,
    pack_a: Pack<'_>,
    pack_b: Pack<'_>,
) {
    gemm_band_impl(band_i0, c, n, k, upper_only, pack_a, pack_b);
}

#[inline(always)]
fn gemm_band_impl(
    band_i0: usize,
    c: &mut [f64],
    n: usize,
    k: usize,
    upper_only: bool,
    pack_a: Pack<'_>,
    pack_b: Pack<'_>,
) {
    let band_m = c.len() / n;
    let n_panels = n.div_ceil(NR);
    let kc_max = KC.min(k);
    let mut bp = vec![0.0f64; n_panels * NR * kc_max];
    let mut ap = vec![0.0f64; MC * kc_max];

    let mut p0 = 0;
    while p0 < k {
        let kc = KC.min(k - p0);
        for jp in 0..n_panels {
            let j0 = jp * NR;
            pack_b(
                &mut bp[jp * NR * kc..(jp + 1) * NR * kc],
                j0,
                NR.min(n - j0),
                p0,
                kc,
            );
        }
        let mut i0 = 0;
        while i0 < band_m {
            let mc = MC.min(band_m - i0);
            let a_blocks = mc.div_ceil(MR);
            for ib in 0..a_blocks {
                let i = i0 + ib * MR;
                pack_a(
                    &mut ap[ib * MR * kc..(ib + 1) * MR * kc],
                    band_i0 + i,
                    MR.min(mc - ib * MR),
                    p0,
                    kc,
                );
            }
            for jp in 0..n_panels {
                let j0 = jp * NR;
                let nv = NR.min(n - j0);
                let bp_panel = &bp[jp * NR * kc..(jp + 1) * NR * kc];
                for ib in 0..a_blocks {
                    let row0 = i0 + ib * MR;
                    // Tiles whose every column lies strictly below the diagonal
                    // contribute nothing to the upper triangle; the caller's mirror
                    // pass fills those entries.
                    if upper_only && j0 + nv <= band_i0 + row0 {
                        continue;
                    }
                    let mut acc = [[0.0f64; NR]; MR];
                    microkernel(
                        kc,
                        &ap[ib * MR * kc..(ib + 1) * MR * kc],
                        bp_panel,
                        &mut acc,
                    );
                    let mv = MR.min(mc - ib * MR);
                    for (ii, acc_row) in acc.iter().enumerate().take(mv) {
                        let base = (row0 + ii) * n + j0;
                        let row = &mut c[base..base + nv];
                        for (o, v) in row.iter_mut().zip(acc_row[..nv].iter()) {
                            *o += v;
                        }
                    }
                }
            }
            i0 += mc;
        }
        p0 += kc;
    }
}

/// Pack lanes of `A` itself (`lane i`, `step p` → `a[i][p]`): the `C = A·B` and
/// `C = A·Bᵀ` left operand.
pub(crate) fn pack_rows(a: &Matrix) -> impl Fn(&mut [f64], usize, usize, usize, usize) + Sync + '_ {
    move |dst, i0, valid, p0, kc| {
        if valid < MR {
            dst.fill(0.0);
        }
        for ii in 0..valid {
            let row = &a.row(i0 + ii)[p0..p0 + kc];
            for (p, &v) in row.iter().enumerate() {
                dst[p * MR + ii] = v;
            }
        }
    }
}

/// Pack lanes of `Aᵀ` (`lane i`, `step p` → `a[p][i]`): the `C = Aᵀ·B` left
/// operand. Reads stream along the rows of `a`.
pub(crate) fn pack_cols(a: &Matrix) -> impl Fn(&mut [f64], usize, usize, usize, usize) + Sync + '_ {
    move |dst, i0, valid, p0, kc| {
        if valid < MR {
            dst.fill(0.0);
        }
        for p in 0..kc {
            let seg = &a.row(p0 + p)[i0..i0 + valid];
            let lane = &mut dst[p * MR..p * MR + valid];
            lane.copy_from_slice(seg);
        }
    }
}

/// Pack `NR`-wide row panels of `B` (`step p`, `lane j` → `b[p][j]`): the `C = A·B`
/// and `C = Aᵀ·B` right operand. Copies are contiguous row segments.
pub(crate) fn pack_panel_rows(
    b: &Matrix,
) -> impl Fn(&mut [f64], usize, usize, usize, usize) + Sync + '_ {
    move |dst, j0, valid, p0, kc| {
        if valid < NR {
            dst.fill(0.0);
        }
        for p in 0..kc {
            let seg = &b.row(p0 + p)[j0..j0 + valid];
            dst[p * NR..p * NR + valid].copy_from_slice(seg);
        }
    }
}

/// Pack `NR`-wide panels of `Bᵀ` (`step p`, `lane j` → `b[j][p]`): the `C = A·Bᵀ`
/// right operand. Reads stream along the rows of `b`.
pub(crate) fn pack_panel_cols(
    b: &Matrix,
) -> impl Fn(&mut [f64], usize, usize, usize, usize) + Sync + '_ {
    move |dst, j0, valid, p0, kc| {
        if valid < NR {
            dst.fill(0.0);
        }
        for jj in 0..valid {
            let row = &b.row(j0 + jj)[p0..p0 + kc];
            for (p, &v) in row.iter().enumerate() {
                dst[p * NR + jj] = v;
            }
        }
    }
}
