//! Error type shared by all linear-algebra routines.

use std::fmt;

/// Errors reported by the dense linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: (usize, usize),
        /// Shape of the right/second operand.
        rhs: (usize, usize),
    },
    /// The matrix was expected to be square but was not.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// A factorization requiring positive definiteness encountered a non-positive pivot.
    NotPositiveDefinite {
        /// Index of the pivot that failed.
        pivot: usize,
        /// Value of the failing pivot.
        value: f64,
    },
    /// An iterative routine failed to converge within its iteration budget.
    DidNotConverge {
        /// Name of the routine.
        routine: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// An argument was outside its valid range.
    InvalidArgument(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} has value {value}"
            ),
            LinalgError::DidNotConverge {
                routine,
                iterations,
            } => write!(
                f,
                "{routine} did not converge after {iterations} iterations"
            ),
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let err = LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let msg = err.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));
    }

    #[test]
    fn display_not_positive_definite() {
        let err = LinalgError::NotPositiveDefinite {
            pivot: 3,
            value: -1.0,
        };
        assert!(err.to_string().contains("pivot 3"));
    }

    #[test]
    fn display_did_not_converge() {
        let err = LinalgError::DidNotConverge {
            routine: "jacobi",
            iterations: 100,
        };
        assert!(err.to_string().contains("jacobi"));
        assert!(err.to_string().contains("100"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&LinalgError::NotSquare { rows: 2, cols: 3 });
    }
}
