//! Exact (Kulisch-style) `f64` accumulation and mergeable joint moments.
//!
//! Streaming fits are only trustworthy if chunking is *invisible*: `partial_fit`
//! over one chunk, k chunks, or a shuffled chunk order must finalize to the same
//! model bit for bit. Floating-point addition is not associative, so an ordinary
//! `f64` running sum cannot deliver that. [`ExactSum`] can: every addend is
//! decomposed into its exact integer significand and exponent and added into a
//! wide fixed-point accumulator (34 × 128-bit limbs spanning the entire `f64`
//! range, subnormals included). Integer addition is associative and commutative,
//! so the accumulated value — and therefore [`ExactSum::round`], the correctly
//! rounded (nearest-even) `f64` of the exact total — is independent of the order
//! and grouping of `add`/`merge` calls.
//!
//! [`JointMoments`] builds on that: exact first and second moments of the
//! *concatenation* of all views, updated chunk by chunk and merged associatively.
//! Every mean and covariance block derived from it is a deterministic function of
//! the exact sums, which is what lets the streaming estimators reproduce a
//! one-shot fit bit-identically from any chunking of the same samples.

use crate::{LinalgError, Matrix, Result};

/// Number of 128-bit limbs in the accumulator. The scaled integer value of any
/// finite `f64` spans bit positions `[0, 2098)` (value × 2¹⁰⁷⁴); 64-bit limb
/// bases cover that with index ≤ 32, plus headroom for carries.
const LIMBS: usize = 34;

/// How many raw adds a limb can absorb before carries must be propagated:
/// a single addend contributes at most 2¹¹⁶ to one limb, so 2¹¹ adds stay
/// safely below the `i128` limit; 1024 leaves a factor-2 margin.
const NORMALIZE_EVERY: u32 = 1024;

/// An exact accumulator for `f64` sums.
///
/// `add` and `merge` are exact: the internal state represents the mathematical
/// sum of every finite addend with no rounding at all. `round` produces the
/// nearest-even `f64` of that exact value (±∞ on overflow). Non-finite addends
/// are tracked separately and dominate the result, mirroring `f64` addition.
#[derive(Clone, Debug)]
pub struct ExactSum {
    /// Fixed-point limbs: the value is `Σ limbs[k] · 2^(64k) · 2^-1074`.
    /// Between normalizations limbs may exceed 64 bits; after normalization
    /// limbs `0..LIMBS-1` lie in `[0, 2^64)` and the top limb carries the sign.
    limbs: [i128; LIMBS],
    /// Adds since the last carry propagation.
    pending: u32,
    /// Sum of the non-finite addends (0.0 when none were seen).
    special: f64,
}

impl Default for ExactSum {
    fn default() -> Self {
        Self::new()
    }
}

impl ExactSum {
    /// The empty sum (rounds to `0.0`).
    pub fn new() -> Self {
        Self {
            limbs: [0; LIMBS],
            pending: 0,
            special: 0.0,
        }
    }

    /// Add one value exactly.
    pub fn add(&mut self, x: f64) {
        let bits = x.to_bits();
        let exp = ((bits >> 52) & 0x7FF) as i32;
        let frac = bits & ((1u64 << 52) - 1);
        if exp == 0x7FF {
            // ±∞ / NaN: accumulate separately, dominating `round`.
            self.special += x;
            return;
        }
        let mant = if exp == 0 {
            if frac == 0 {
                return; // ±0 contributes nothing
            }
            frac // subnormal: value = frac · 2^-1074
        } else {
            frac | (1u64 << 52) // normal: value = mant · 2^(exp - 1075)
        };
        // Scaled exponent: value = mant · 2^(s) · 2^-1074 with s ∈ [0, 2045].
        let s = if exp == 0 { 0 } else { (exp - 1) as u32 };
        let limb = (s >> 6) as usize;
        let shift = s & 63;
        let contribution = (mant as i128) << shift;
        self.limbs[limb] += if bits >> 63 == 1 {
            -contribution
        } else {
            contribution
        };
        self.pending += 1;
        if self.pending >= NORMALIZE_EVERY {
            self.normalize();
        }
    }

    /// Fold another sum into this one. Exact and associative: any merge tree over
    /// the same addends yields the same state.
    pub fn merge(&mut self, other: &ExactSum) {
        self.special += other.special;
        if self.pending > 0 {
            self.normalize();
        }
        for k in 0..LIMBS {
            self.limbs[k] += other.limbs[k];
        }
        self.normalize();
    }

    /// Propagate carries so limbs `0..LIMBS-1` lie in `[0, 2^64)`; the top limb
    /// absorbs the residue (and the sign).
    fn normalize(&mut self) {
        for k in 0..LIMBS - 1 {
            let carry = self.limbs[k] >> 64; // arithmetic shift = floor division
            self.limbs[k] -= carry << 64;
            self.limbs[k + 1] += carry;
        }
        self.pending = 0;
    }

    /// The exact total, rounded to the nearest `f64` (ties to even; ±∞ on
    /// overflow). Any non-finite addend dominates.
    pub fn round(&self) -> f64 {
        if self.special != 0.0 || self.special.is_nan() {
            return self.special;
        }
        let mut l = self.limbs;
        carry_propagate(&mut l);
        let negative = l[LIMBS - 1] < 0;
        if negative {
            for v in l.iter_mut() {
                *v = -*v;
            }
            carry_propagate(&mut l);
        }
        // All limbs now lie in [0, 2^64); find the most significant set bit.
        let top = match (0..LIMBS).rev().find(|&k| l[k] != 0) {
            Some(k) => k,
            None => return 0.0,
        };
        let h = top as i64 * 64 + (127 - l[top].leading_zeros() as i64);
        let sign = if negative { -1.0 } else { 1.0 };
        if h <= 52 {
            // Fits the significand exactly; the bit pattern IS the scaled value.
            return sign * f64::from_bits(l[0] as u64);
        }
        let mut mant = extract_53(&l, h - 52);
        let round_bit = bit(&l, h - 53);
        let sticky = any_below(&l, h - 53);
        let mut h = h;
        if round_bit && (sticky || mant & 1 == 1) {
            mant += 1;
            if mant == 1 << 53 {
                mant >>= 1;
                h += 1;
            }
        }
        let e = h - 52 - 1074; // value = mant · 2^e, mant ∈ [2^52, 2^53)
        if e > 971 {
            return sign * f64::INFINITY;
        }
        sign * (mant as f64) * pow2(e as i32)
    }

    /// Whether any non-finite value was added.
    pub fn is_finite(&self) -> bool {
        self.special == 0.0 && !self.special.is_nan()
    }
}

/// Full carry propagation over a limb array (same contract as `normalize`).
fn carry_propagate(l: &mut [i128; LIMBS]) {
    for k in 0..LIMBS - 1 {
        let carry = l[k] >> 64;
        l[k] -= carry << 64;
        l[k + 1] += carry;
    }
}

/// Bit `pos` (≥ 0) of the canonical limb array.
fn bit(l: &[i128; LIMBS], pos: i64) -> bool {
    if pos < 0 {
        return false;
    }
    let k = (pos / 64) as usize;
    if k >= LIMBS {
        return false;
    }
    (l[k] >> (pos % 64)) & 1 == 1
}

/// Whether any bit strictly below `pos` is set.
fn any_below(l: &[i128; LIMBS], pos: i64) -> bool {
    if pos <= 0 {
        return false;
    }
    let k = (pos / 64) as usize;
    let o = pos % 64;
    for limb in l.iter().take(k.min(LIMBS)) {
        if *limb != 0 {
            return true;
        }
    }
    if k < LIMBS && o > 0 && (l[k] as u64) & ((1u64 << o) - 1) != 0 {
        return true;
    }
    false
}

/// The 53 bits `[lo, lo + 53)` of the canonical limb array as an integer.
fn extract_53(l: &[i128; LIMBS], lo: i64) -> u64 {
    debug_assert!(lo >= 0);
    let k = (lo / 64) as usize;
    let o = (lo % 64) as u32;
    let mut v = (l[k] as u64) >> o;
    if o > 64 - 53 && k + 1 < LIMBS {
        v |= (l[k + 1] as u64) << (64 - o);
    }
    v & ((1u64 << 53) - 1)
}

/// `2^e` for `e ∈ [-1074, 1023]`, exact (subnormal powers included).
fn pow2(e: i32) -> f64 {
    if e >= -1022 {
        f64::from_bits(((e + 1023) as u64) << 52)
    } else {
        f64::from_bits(1u64 << (e + 1074))
    }
}

/// Exact, mergeable first and second moments of concatenated views.
///
/// Views are the paper's `d_p × N` layout (features in rows, instances in
/// columns). The moments are taken over the concatenated feature vector
/// `x = [x_1; …; x_m] ∈ R^D`: exact sums `Σ x` and the upper triangle of
/// `Σ x xᵀ` (each per-sample product `x_i·x_j` is one rounded `f64` multiply —
/// identical for every chunking — and the *sums* are exact). Any chunking or
/// merge order over the same samples therefore produces bit-identical means and
/// covariance blocks.
#[derive(Clone, Debug)]
pub struct JointMoments {
    dims: Vec<usize>,
    offsets: Vec<usize>,
    n: u64,
    s1: Vec<ExactSum>,
    /// Upper triangle of the raw second-moment matrix, row-major by `tri(i, j)`.
    s2: Vec<ExactSum>,
}

impl JointMoments {
    /// Empty moments for views of the given feature dimensions.
    pub fn new(dims: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(dims.len());
        let mut total = 0usize;
        for &d in dims {
            offsets.push(total);
            total += d;
        }
        Self {
            dims: dims.to_vec(),
            offsets,
            n: 0,
            s1: vec![ExactSum::new(); total],
            s2: vec![ExactSum::new(); total * (total + 1) / 2],
        }
    }

    /// Moments of one batch of views (`new` + `update`).
    pub fn from_views<B: std::borrow::Borrow<Matrix>>(views: &[B]) -> Result<Self> {
        let dims: Vec<usize> = views.iter().map(|v| v.borrow().rows()).collect();
        let mut m = Self::new(&dims);
        m.update(views)?;
        Ok(m)
    }

    /// Total feature dimension `D = Σ d_p`.
    fn total_dim(&self) -> usize {
        self.s1.len()
    }

    /// Per-view feature dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of accumulated samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    fn tri(&self, i: usize, j: usize) -> usize {
        let (i, j) = if i <= j { (i, j) } else { (j, i) };
        let d = self.total_dim();
        i * d - (i * i - i) / 2 + (j - i)
    }

    /// Absorb one chunk of samples (one matrix per view, shared instance axis).
    pub fn update<B: std::borrow::Borrow<Matrix>>(&mut self, views: &[B]) -> Result<()> {
        if views.len() != self.dims.len() {
            return Err(LinalgError::InvalidArgument(format!(
                "moments track {} views, chunk has {}",
                self.dims.len(),
                views.len()
            )));
        }
        let n = views.first().map_or(0, |v| v.borrow().cols());
        for (p, v) in views.iter().enumerate() {
            let v = v.borrow();
            if v.rows() != self.dims[p] {
                return Err(LinalgError::InvalidArgument(format!(
                    "view {p} has {} features, moments expect {}",
                    v.rows(),
                    self.dims[p]
                )));
            }
            if v.cols() != n {
                return Err(LinalgError::InvalidArgument(format!(
                    "view {p} has {} instances, view 0 has {n}",
                    v.cols()
                )));
            }
        }
        let d = self.total_dim();
        let mut x = vec![0.0; d];
        for j in 0..n {
            for (p, v) in views.iter().enumerate() {
                let v = v.borrow();
                let base = self.offsets[p];
                for i in 0..v.rows() {
                    x[base + i] = v[(i, j)];
                }
            }
            for i in 0..d {
                self.s1[i].add(x[i]);
                let row = i * d - (i * i - i) / 2 - i;
                for k in i..d {
                    self.s2[row + k].add(x[i] * x[k]);
                }
            }
        }
        self.n += n as u64;
        Ok(())
    }

    /// Fold another accumulator over the *same* view dimensions into this one.
    pub fn merge(&mut self, other: &JointMoments) -> Result<()> {
        if other.dims != self.dims {
            return Err(LinalgError::InvalidArgument(format!(
                "cannot merge moments over dims {:?} into dims {:?}",
                other.dims, self.dims
            )));
        }
        self.n += other.n;
        for (a, b) in self.s1.iter_mut().zip(&other.s1) {
            a.merge(b);
        }
        for (a, b) in self.s2.iter_mut().zip(&other.s2) {
            a.merge(b);
        }
        Ok(())
    }

    /// The exact sub-accumulator over a subset of views (e.g. one pair). Equal,
    /// bit for bit, to having accumulated only those views from the start.
    pub fn select_views(&self, which: &[usize]) -> JointMoments {
        let dims: Vec<usize> = which.iter().map(|&p| self.dims[p]).collect();
        let mut out = JointMoments::new(&dims);
        out.n = self.n;
        let mut map = Vec::with_capacity(out.total_dim());
        for &p in which {
            for i in 0..self.dims[p] {
                map.push(self.offsets[p] + i);
            }
        }
        for (new_i, &old_i) in map.iter().enumerate() {
            out.s1[new_i] = self.s1[old_i].clone();
            for (new_j, &old_j) in map.iter().enumerate().skip(new_i) {
                let dst = out.tri(new_i, new_j);
                out.s2[dst] = self.s2[self.tri(old_i, old_j)].clone();
            }
        }
        out
    }

    /// Mean vector of view `p`: `round(Σ x_p) / n`.
    pub fn mean(&self, p: usize) -> Vec<f64> {
        let n = self.n as f64;
        let base = self.offsets[p];
        (0..self.dims[p])
            .map(|i| self.s1[base + i].round() / n)
            .collect()
    }

    /// Raw second-moment block `E[x_p x_qᵀ] = round(Σ x_p x_qᵀ) / n` (`d_p × d_q`).
    pub fn raw_second_moment(&self, p: usize, q: usize) -> Matrix {
        let n = self.n as f64;
        let (bp, bq) = (self.offsets[p], self.offsets[q]);
        let mut out = Matrix::zeros(self.dims[p], self.dims[q]);
        for i in 0..self.dims[p] {
            for j in 0..self.dims[q] {
                out[(i, j)] = self.s2[self.tri(bp + i, bq + j)].round() / n;
            }
        }
        out
    }

    /// Covariance block `C_pq = E[x_p x_qᵀ] − μ_p μ_qᵀ` (`d_p × d_q`).
    ///
    /// This is the raw-moment (non-centering) covariance formula: it trades the
    /// two-pass centered computation for one that is derivable from mergeable
    /// sums. It is deterministic for any chunking; for data whose magnitude
    /// dwarfs its spread it loses accuracy to cancellation like any one-pass
    /// estimator — center such data upstream.
    pub fn covariance(&self, p: usize, q: usize) -> Matrix {
        let mut out = self.raw_second_moment(p, q);
        let mp = self.mean(p);
        let mq = self.mean(q);
        for i in 0..self.dims[p] {
            for j in 0..self.dims[q] {
                out[(i, j)] -= mp[i] * mq[j];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bits_eq(a: f64, b: f64) {
        assert_eq!(a.to_bits(), b.to_bits(), "{a} != {b}");
    }

    #[test]
    fn sums_exactly_and_ignores_order() {
        // A sum that plain f64 addition gets wrong in most orders.
        let xs = [1e16, 1.0, -1e16, 1e-300, 3.5, -1e-300, -3.5];
        let mut forward = ExactSum::new();
        for &x in &xs {
            forward.add(x);
        }
        let mut backward = ExactSum::new();
        for &x in xs.iter().rev() {
            backward.add(x);
        }
        assert_bits_eq(forward.round(), 1.0);
        assert_bits_eq(backward.round(), 1.0);
    }

    #[test]
    fn merge_equals_sequential_accumulation() {
        let xs: Vec<f64> = (0..2000)
            .map(|i| {
                let t = i as f64;
                (t * 0.7).sin() * 10f64.powi((i % 60) - 30)
            })
            .collect();
        let mut whole = ExactSum::new();
        for &x in &xs {
            whole.add(x);
        }
        // Three uneven chunks merged in a shuffled order.
        let mut a = ExactSum::new();
        let mut b = ExactSum::new();
        let mut c = ExactSum::new();
        for (i, &x) in xs.iter().enumerate() {
            match i % 7 {
                0..=1 => a.add(x),
                2..=5 => b.add(x),
                _ => c.add(x),
            }
        }
        let mut merged = ExactSum::new();
        merged.merge(&c);
        merged.merge(&a);
        merged.merge(&b);
        assert_bits_eq(merged.round(), whole.round());
    }

    #[test]
    fn handles_subnormals_negatives_and_cancellation() {
        let tiny = f64::from_bits(3); // subnormal
        let mut s = ExactSum::new();
        s.add(tiny);
        s.add(tiny);
        s.add(-tiny);
        assert_bits_eq(s.round(), tiny);

        let mut s = ExactSum::new();
        s.add(f64::MAX);
        s.add(-f64::MAX);
        s.add(-0.0);
        assert_bits_eq(s.round(), 0.0);

        let mut s = ExactSum::new();
        s.add(-2.5);
        s.add(1.25);
        assert_bits_eq(s.round(), -1.25);
    }

    #[test]
    fn rounds_to_nearest_even_and_overflows_to_infinity() {
        // 2^53 + 1 is exactly representable as a sum but not as one f64:
        // nearest-even rounds down to 2^53.
        let mut s = ExactSum::new();
        s.add(9007199254740992.0); // 2^53
        s.add(1.0);
        assert_bits_eq(s.round(), 9007199254740992.0);
        // 2^53 + 3 rounds up to 2^53 + 4.
        let mut s = ExactSum::new();
        s.add(9007199254740992.0);
        s.add(3.0);
        assert_bits_eq(s.round(), 9007199254740996.0);

        let mut s = ExactSum::new();
        for _ in 0..3 {
            s.add(f64::MAX);
        }
        assert!(s.round().is_infinite() && s.round() > 0.0);

        let mut s = ExactSum::new();
        s.add(f64::NEG_INFINITY);
        s.add(1.0);
        assert!(s.round().is_infinite() && s.round() < 0.0);
        assert!(!s.is_finite());
    }

    #[test]
    fn many_adds_trigger_internal_normalization() {
        let mut s = ExactSum::new();
        let mut plain = 0.0f64;
        for i in 0..5000 {
            s.add(i as f64);
            plain += i as f64;
        }
        // Integer sums below 2^53 are exact in plain f64 too.
        assert_bits_eq(s.round(), plain);
    }

    #[test]
    fn joint_moments_are_chunking_invariant() {
        let n = 23;
        let views: Vec<Matrix> = [3usize, 2]
            .iter()
            .enumerate()
            .map(|(p, &d)| {
                let mut m = Matrix::zeros(d, n);
                for i in 0..d {
                    for j in 0..n {
                        m[(i, j)] = ((p * 31 + i * 7 + j) as f64 * 0.37).sin() * 1e3
                            + (j as f64).cos() * 1e-6;
                    }
                }
                m
            })
            .collect();

        let one_shot = JointMoments::from_views(&views).unwrap();

        // Split into 3 uneven chunks, accumulate in shuffled order via merge.
        let cuts = [0usize, 9, 10, n];
        let chunk = |a: usize, b: usize| -> Vec<Matrix> {
            views
                .iter()
                .map(|v| v.select_columns(&(a..b).collect::<Vec<_>>()))
                .collect()
        };
        let mut parts: Vec<JointMoments> = (0..3)
            .map(|c| JointMoments::from_views(&chunk(cuts[c], cuts[c + 1])).unwrap())
            .collect();
        let mut merged = parts.remove(2);
        merged.merge(&parts[0]).unwrap();
        merged.merge(&parts[1]).unwrap();

        assert_eq!(merged.count(), one_shot.count());
        for p in 0..2 {
            for (a, b) in merged.mean(p).iter().zip(one_shot.mean(p)) {
                assert_bits_eq(*a, b);
            }
            for q in 0..2 {
                let ca = merged.covariance(p, q);
                let cb = one_shot.covariance(p, q);
                assert_eq!(ca, cb, "covariance block ({p},{q})");
            }
        }

        // A pair selection equals accumulating only that pair.
        let pair = one_shot.select_views(&[1, 0]);
        let direct = JointMoments::from_views(&[views[1].clone(), views[0].clone()]).unwrap();
        assert_eq!(pair.covariance(0, 1), direct.covariance(0, 1));
        for (a, b) in pair.mean(0).iter().zip(direct.mean(0)) {
            assert_bits_eq(*a, b);
        }
    }

    #[test]
    fn moments_validate_shapes() {
        let mut m = JointMoments::new(&[2, 3]);
        assert!(m.update(&[Matrix::zeros(2, 4)]).is_err());
        assert!(m
            .update(&[Matrix::zeros(2, 4), Matrix::zeros(3, 5)])
            .is_err());
        assert!(m
            .update(&[Matrix::zeros(3, 4), Matrix::zeros(3, 4)])
            .is_err());
        assert!(m.merge(&JointMoments::new(&[2, 2])).is_err());
        assert!(m
            .update(&[Matrix::zeros(2, 4), Matrix::zeros(3, 4)])
            .is_ok());
    }
}
