//! The dense row-major [`Matrix`] type and its fundamental operations.

use crate::{LinalgError, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64` values.
///
/// This is the workhorse container of the whole reproduction: data matrices
/// (`d × N` views, `N × d` embeddings), covariance matrices, whiteners, kernel matrices
/// and factor matrices are all `Matrix` values.
///
/// The storage is a single contiguous `Vec<f64>` with `rows * cols` entries where the
/// element at row `i`, column `j` lives at `data[i * cols + j]`.
#[derive(PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Clone for Matrix {
    /// Deep-copies the buffer and bumps the process-wide clone counter
    /// ([`crate::matrix_clones`]) so zero-copy code paths can *assert* they never
    /// duplicate input matrices instead of merely claiming it.
    fn clone(&self) -> Self {
        crate::view::note_matrix_clone();
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.clone(),
        }
    }
}

impl Matrix {
    /// Create a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix of the given shape where every entry equals `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument(format!(
                "data length {} does not match shape {}x{}",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Build a matrix from a slice of rows; every row must have the same length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Self::zeros(0, 0));
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::InvalidArgument(format!(
                    "row {i} has length {} but expected {cols}",
                    r.len()
                )));
            }
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Build a diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &v) in diag.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Build a column vector (an `n × 1` matrix) from a slice.
    pub fn column_vector(values: &[f64]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Build a row vector (a `1 × n` matrix) from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix and return its row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn column(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrite column `j` with the provided values.
    pub fn set_column(&mut self, j: usize, values: &[f64]) {
        debug_assert_eq!(values.len(), self.rows);
        for (i, &v) in values.iter().enumerate() {
            self[(i, j)] = v;
        }
    }

    /// Overwrite row `i` with the provided values.
    pub fn set_row(&mut self, i: usize, values: &[f64]) {
        debug_assert_eq!(values.len(), self.cols);
        self.row_mut(i).copy_from_slice(values);
    }

    /// Return a new matrix containing only the listed columns, in the given order.
    pub fn select_columns(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, indices.len());
        for i in 0..self.rows {
            for (k, &j) in indices.iter().enumerate() {
                out[(i, k)] = self[(i, j)];
            }
        }
        out
    }

    /// Return a new matrix containing only the listed rows, in the given order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Return the leading `k` columns as a new matrix.
    pub fn leading_columns(&self, k: usize) -> Matrix {
        let k = k.min(self.cols);
        let mut out = Matrix::zeros(self.rows, k);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[..k]);
        }
        out
    }

    /// Stack two matrices horizontally (`[self | other]`).
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        Ok(out)
    }

    /// Stack two matrices vertically.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, v| acc.max(v.abs()))
    }

    /// Sum of the diagonal entries. The matrix does not need to be square; the sum runs
    /// over `min(rows, cols)` entries.
    pub fn trace(&self) -> f64 {
        (0..self.rows.min(self.cols)).map(|i| self[(i, i)]).sum()
    }

    /// Apply a function to every entry, returning a new matrix.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Apply a function to every entry in place.
    pub fn map_inplace<F: Fn(f64) -> f64>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// True when every entry is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for i in 0..max_rows {
            write!(f, "  [")?;
            let max_cols = 8.min(self.cols);
            for j in 0..max_cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            if self.cols > max_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// A dense, row-major matrix of `f32` values — the storage behind the opt-in
/// reduced-precision serving path.
///
/// Models and on-disk formats stay `f64`; an `MatrixF32` only ever exists as a
/// narrowed *shadow* of an `f64` factor matrix (see `ModelStore`'s f32 shadow
/// cache) or as the intermediate output of the f32 GEMM instantiation, and every
/// value served from it is governed by the documented f32 tolerance contract.
#[derive(Clone, PartialEq)]
pub struct MatrixF32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl MatrixF32 {
    /// Narrow an `f64` matrix to `f32`, rounding each entry to nearest.
    pub fn from_f64(src: &Matrix) -> Self {
        Self {
            rows: src.rows,
            cols: src.cols,
            data: src.data.iter().map(|&v| v as f32).collect(),
        }
    }

    /// Build from a row-major `f32` vector; errors if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument(format!(
                "data length {} does not match shape {}x{}",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Row `i` as a contiguous slice.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The whole backing buffer in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Widen back to an `f64` [`Matrix`] (exact — every `f32` is representable).
    pub fn to_f64(&self) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f64::from(v)).collect(),
        }
    }

    /// Heap bytes held by the backing buffer.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        assert!(!m.is_empty());
        assert!(!m.is_square());
    }

    #[test]
    fn identity_diagonal() {
        let m = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
        assert!(m.is_square());
        assert_eq!(m.trace(), 3.0);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn from_rows_checks_lengths() {
        let ok = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(ok[(0, 1)], 2.0);
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let empty = Matrix::from_rows(&[]).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn indexing_and_rows() {
        let mut m = Matrix::zeros(2, 3);
        m[(0, 1)] = 5.0;
        m[(1, 2)] = -2.0;
        assert_eq!(m.row(0), &[0.0, 5.0, 0.0]);
        assert_eq!(m.row(1), &[0.0, 0.0, -2.0]);
        assert_eq!(m.column(2), vec![0.0, -2.0]);
    }

    #[test]
    fn set_row_and_column() {
        let mut m = Matrix::zeros(2, 2);
        m.set_row(0, &[1.0, 2.0]);
        m.set_column(1, &[7.0, 8.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 7.0);
        assert_eq!(m[(1, 1)], 8.0);
    }

    #[test]
    fn select_columns_and_rows() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let c = m.select_columns(&[2, 0]);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c[(0, 0)], 3.0);
        assert_eq!(c[(1, 1)], 4.0);
        let r = m.select_rows(&[1]);
        assert_eq!(r.shape(), (1, 3));
        assert_eq!(r[(0, 0)], 4.0);
        let lead = m.leading_columns(2);
        assert_eq!(lead.shape(), (2, 2));
        assert_eq!(lead[(1, 1)], 5.0);
    }

    #[test]
    fn hstack_vstack() {
        let a = Matrix::identity(2);
        let b = Matrix::filled(2, 1, 3.0);
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h[(0, 2)], 3.0);
        let v = a.vstack(&a).unwrap();
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v[(3, 1)], 1.0);
        assert!(a.hstack(&Matrix::zeros(3, 1)).is_err());
        assert!(a.vstack(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn norms_and_map() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
        let doubled = m.map(|v| 2.0 * v);
        assert_eq!(doubled[(1, 1)], 8.0);
        let mut m2 = m.clone();
        m2.map_inplace(|v| v + 1.0);
        assert_eq!(m2[(0, 1)], 1.0);
        assert!(m.all_finite());
        let mut bad = m;
        bad[(0, 0)] = f64::NAN;
        assert!(!bad.all_finite());
    }

    #[test]
    fn vectors() {
        let c = Matrix::column_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(c.shape(), (3, 1));
        let r = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(r.shape(), (1, 3));
        let d = Matrix::from_diagonal(&[2.0, 5.0]);
        assert_eq!(d[(0, 0)], 2.0);
        assert_eq!(d[(1, 1)], 5.0);
        assert_eq!(d[(0, 1)], 0.0);
    }
}
