//! Dense linear-algebra substrate for the TCCA reproduction.
//!
//! The paper's method (and every baseline it is compared against) is built on a small
//! set of dense linear-algebra primitives:
//!
//! * a column-major-agnostic dense [`Matrix`] type with the usual arithmetic,
//! * symmetric eigendecomposition (cyclic Jacobi) used for inverse square roots,
//!   PCA and spectral embedding,
//! * Cholesky factorization and triangular solves used for ridge/RLS systems and the
//!   kernel-TCCA whitening `(K² + εK) = LᵀL`,
//! * a thin SVD used by two-view CCA, CCA-MAXVAR and PCA,
//! * statistics helpers (centering, covariance, cross-covariance).
//!
//! Everything is implemented from scratch on `f64` so the whole reproduction has no
//! external linear-algebra dependency. The dense products all route through one
//! blocked, packed GEMM engine ([`gemm`]) with an explicitly register-tiled
//! microkernel; the borrowed [`MatrixView`]/[`ColsView`] types let the serving path
//! feed that engine straight from request payloads with zero input copies.

#![warn(missing_docs)]
#![warn(clippy::all)]
// Dense numerical kernels deliberately use explicit index loops over several arrays at
// once (rotations, factorizations); iterator rewrites of these obscure the math.
#![allow(clippy::needless_range_loop)]

mod cholesky;
mod eigen;
mod error;
pub mod exact;
pub mod gemm;
mod matrix;
mod ops;
mod qr;
mod sketch;
mod solve;
mod stats;
mod svd;
mod view;

pub use cholesky::Cholesky;
pub use eigen::SymmetricEigen;
pub use error::LinalgError;
pub use exact::{ExactSum, JointMoments};
pub use matrix::{Matrix, MatrixF32};
pub use ops::{dot, norm2, normalize};
pub use qr::thin_qr;
pub use sketch::{gaussian_matrix, nystrom_eig, randomized_covariance_eig, LowRankEig, SketchRng};
pub use solve::{ridge_solve, solve_spd};
pub use stats::{
    center_columns, center_rows, column_means, covariance, cross_covariance, row_means,
};
pub use svd::Svd;
pub use view::{input_stitches, matrix_clones, note_input_stitch, ColsView, MatrixView};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
