//! Linear system solvers built on the Cholesky factorization.

use crate::{Cholesky, LinalgError, Matrix, Result};

/// Solve the symmetric positive definite system `A X = B`.
///
/// A thin wrapper over [`Cholesky`] that keeps call sites readable. Fails if `A` is not
/// square, shapes do not agree, or `A` is not positive definite.
pub fn solve_spd(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    Cholesky::new(a)?.solve(b)
}

/// Solve the ridge-regularized normal equations `(A + γ I) X = B`.
///
/// This is the regularized least squares (RLS) primitive used by the paper's base
/// learner (§5.1): `argmin_w Σ (wᵀx_n − y_n)² + γ‖w‖²` reduces to
/// `(X Xᵀ + γ N I) w = X y` which callers pass in as `A = X Xᵀ`, `B = X y`.
///
/// If the ridge-augmented matrix is still not positive definite (e.g. `γ = 0` and `A`
/// rank-deficient), the ridge is grown by factors of 10 up to `1e6 ×` the initial value
/// before giving up, mirroring the pragmatic behaviour of the MATLAB reference code.
pub fn ridge_solve(a: &Matrix, b: &Matrix, gamma: f64) -> Result<Matrix> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let base = if gamma > 0.0 { gamma } else { 1e-10 };
    let mut ridge = if gamma > 0.0 { gamma } else { 0.0 };
    for _ in 0..8 {
        let mut reg = a.clone();
        if ridge > 0.0 {
            reg.add_diagonal(ridge);
        }
        match Cholesky::new(&reg) {
            Ok(chol) => return chol.solve(b),
            Err(_) => {
                ridge = if ridge == 0.0 { base } else { ridge * 10.0 };
            }
        }
    }
    Err(LinalgError::NotPositiveDefinite {
        pivot: 0,
        value: ridge,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_spd_roundtrip() {
        let a = Matrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let x_true = Matrix::from_rows(&[vec![1.0], vec![-1.0]]).unwrap();
        let b = a.matmul(&x_true).unwrap();
        let x = solve_spd(&a, &b).unwrap();
        assert!(x.sub(&x_true).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn ridge_solve_handles_singular_matrix() {
        // Rank-deficient A: plain Cholesky fails, ridge succeeds.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap();
        assert!(solve_spd(&a, &b).is_err());
        let x = ridge_solve(&a, &b, 1e-6).unwrap();
        assert!(x.all_finite());
        // Solution should be approximately [0.5, 0.5].
        assert!((x[(0, 0)] - 0.5).abs() < 1e-3);
        assert!((x[(1, 0)] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn ridge_solve_zero_gamma_falls_back() {
        let a = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 0.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![2.0], vec![0.0]]).unwrap();
        let x = ridge_solve(&a, &b, 0.0).unwrap();
        assert!((x[(0, 0)] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn ridge_solve_rejects_non_square() {
        assert!(ridge_solve(&Matrix::zeros(2, 3), &Matrix::zeros(2, 1), 0.1).is_err());
    }

    #[test]
    fn ridge_matches_exact_solution() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let gamma = 0.5;
        let x = ridge_solve(&a, &b, gamma).unwrap();
        let mut reg = a.clone();
        reg.add_diagonal(gamma);
        let residual = reg.matmul(&x).unwrap().sub(&b).unwrap();
        assert!(residual.max_abs() < 1e-10);
    }
}
