//! Matrix arithmetic: products, transposes, element-wise operations.
//!
//! Every dense product routes through the blocked, packed GEMM engine in
//! [`crate::gemm`]: operand panels are packed into cache-resident tiles and an
//! `MR×NR` register-tiled microkernel does the arithmetic with no bounds checks in
//! the tile body. The symmetric rank-k kernels (`syrk`/`syrk_t`) run the same engine
//! restricted to the upper triangle and mirror.
//!
//! Products are parallelized over **row blocks of the output**: each band of output
//! rows is an independent sub-problem with a fixed per-element accumulation order
//! (the reduction index always ascends, k-blocks are visited in ascending order), so
//! results are bit-identical across thread counts — including the serial fallback
//! that [`parallel::threads_for_work`] selects for small operands. The
//! `*_with_threads` variants expose the thread count explicitly for the determinism
//! property tests and for tuning; the plain methods pick it from the flop count and
//! the `TCCA_NUM_THREADS` override.

use crate::{gemm, LinalgError, Matrix, Result};

/// Edge length of the tiles used by the blocked transpose: 32×32 f64 tiles (8 KiB for
/// source + destination) sit comfortably in L1 while amortizing the column-strided
/// writes of a naive transpose.
const TRANSPOSE_TILE: usize = 32;

impl Matrix {
    /// Matrix transpose (blocked/tiled so both source reads and destination writes stay
    /// within cache-resident tiles).
    pub fn transpose(&self) -> Matrix {
        let (rows, cols) = self.shape();
        let mut out = Matrix::zeros(cols, rows);
        let b = TRANSPOSE_TILE;
        for ib in (0..rows).step_by(b) {
            let i_end = (ib + b).min(rows);
            for jb in (0..cols).step_by(b) {
                let j_end = (jb + b).min(cols);
                for i in ib..i_end {
                    let row = &self.row(i)[jb..j_end];
                    for (j, &v) in row.iter().enumerate() {
                        out[(jb + j, i)] = v;
                    }
                }
            }
        }
        out
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        let flops = self.rows() * self.cols() * other.cols();
        self.matmul_with_threads(other, parallel::threads_for_work(flops))
    }

    /// [`Matrix::matmul`] with an explicit thread count. The result is bit-identical
    /// for every `threads >= 1`.
    pub fn matmul_with_threads(&self, other: &Matrix, threads: usize) -> Result<Matrix> {
        if self.cols() != other.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (k, n) = (self.cols(), other.cols());
        let mut out = Matrix::zeros(self.rows(), n);
        gemm::gemm(
            self.rows(),
            n,
            k,
            &mut out,
            threads,
            false,
            &gemm::pack_rows(self),
            &gemm::pack_panel_rows(other),
        );
        Ok(out)
    }

    /// Product `selfᵀ * other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Result<Matrix> {
        let flops = self.rows() * self.cols() * other.cols();
        self.t_matmul_with_threads(other, parallel::threads_for_work(flops))
    }

    /// [`Matrix::t_matmul`] with an explicit thread count. The result is bit-identical
    /// for every `threads >= 1`: each output row accumulates over the shared dimension
    /// in ascending order exactly as the serial kernel does.
    pub fn t_matmul_with_threads(&self, other: &Matrix, threads: usize) -> Result<Matrix> {
        if self.rows() != other.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "t_matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.cols(), other.cols());
        // The left operand is already lane-fastest in memory (MR contiguous
        // output rows per reduction step), so skinny products can stream it in
        // place instead of packing.
        gemm::gemm_a(
            self.cols(),
            other.cols(),
            self.rows(),
            &mut out,
            threads,
            false,
            gemm::ASource::Strided {
                data: self.as_slice(),
                stride: self.cols(),
                pack: &gemm::pack_cols(self),
            },
            &gemm::pack_panel_rows(other),
        );
        Ok(out)
    }

    /// Accumulating product `out += selfᵀ * other`, used by the chunked covariance
    /// tensor build to avoid a temporary per chunk. Keeps the same ascending reduction
    /// order as [`Matrix::t_matmul`].
    pub fn t_matmul_acc(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.rows() != other.rows() || out.rows() != self.cols() || out.cols() != other.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "t_matmul_acc",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let flops = self.rows() * self.cols() * other.cols();
        gemm::gemm_a(
            self.cols(),
            other.cols(),
            self.rows(),
            out,
            parallel::threads_for_work(flops),
            false,
            gemm::ASource::Strided {
                data: self.as_slice(),
                stride: self.cols(),
                pack: &gemm::pack_cols(self),
            },
            &gemm::pack_panel_rows(other),
        );
        Ok(())
    }

    /// Product `self * otherᵀ` without materializing the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Result<Matrix> {
        let flops = self.rows() * self.cols() * other.rows();
        self.matmul_t_with_threads(other, parallel::threads_for_work(flops))
    }

    /// [`Matrix::matmul_t`] with an explicit thread count. The result is bit-identical
    /// for every `threads >= 1`.
    pub fn matmul_t_with_threads(&self, other: &Matrix, threads: usize) -> Result<Matrix> {
        if self.cols() != other.cols() {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_t",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let n = other.rows();
        let mut out = Matrix::zeros(self.rows(), n);
        gemm::gemm(
            self.rows(),
            n,
            self.cols(),
            &mut out,
            threads,
            false,
            &gemm::pack_rows(self),
            &gemm::pack_panel_cols(other),
        );
        Ok(out)
    }

    /// Gram matrix `self * selfᵀ` (rows treated as observations of a `rows`-dim object).
    ///
    /// Routed through the symmetric rank-k update [`Matrix::syrk`], which computes only
    /// the upper triangle and mirrors — the covariance / whitening paths pay half the
    /// flops of the general product.
    pub fn gram(&self) -> Matrix {
        let flops = self.rows() * self.rows() * self.cols() / 2;
        self.syrk_with_threads(parallel::threads_for_work(flops))
    }

    /// Gram matrix `selfᵀ * self`. Routed through [`Matrix::syrk_t`] (symmetric rank-k:
    /// upper triangle + mirror; see there for the non-finite-input caveat).
    pub fn gram_t(&self) -> Matrix {
        let flops = self.cols() * self.cols() * self.rows() / 2;
        self.syrk_t_with_threads(parallel::threads_for_work(flops))
    }

    /// Symmetric rank-k update `self * selfᵀ` (`m × m`): only the upper triangle is
    /// computed, the lower is mirrored. Bit-identical to `self.matmul_t(self)` — each
    /// entry is the dot product of two rows accumulated in ascending index order, and
    /// multiplication is commutative, so the mirrored entry carries the exact bits the
    /// general kernel would produce.
    pub fn syrk(&self) -> Matrix {
        let flops = self.rows() * self.rows() * self.cols() / 2;
        self.syrk_with_threads(parallel::threads_for_work(flops))
    }

    /// [`Matrix::syrk`] with an explicit thread count (bit-identical for every
    /// `threads >= 1`).
    pub fn syrk_with_threads(&self, threads: usize) -> Matrix {
        let m = self.rows();
        let mut out = Matrix::zeros(m, m);
        gemm::gemm(
            m,
            m,
            self.cols(),
            &mut out,
            threads,
            true,
            &gemm::pack_rows(self),
            &gemm::pack_panel_cols(self),
        );
        mirror_upper(&mut out);
        out
    }

    /// Symmetric rank-k update `selfᵀ * self` (`n × n`): only the upper triangle's
    /// micro-tiles run through the blocked engine, the lower is mirrored. For finite
    /// inputs this is bit-identical to `self.t_matmul(self)` — every computed entry
    /// follows the exact blocked schedule of the general kernel, and the mirrored
    /// entries equal their transposes because multiplication is commutative.
    pub fn syrk_t(&self) -> Matrix {
        let flops = self.cols() * self.cols() * self.rows() / 2;
        self.syrk_t_with_threads(parallel::threads_for_work(flops))
    }

    /// [`Matrix::syrk_t`] with an explicit thread count (bit-identical for every
    /// `threads >= 1`).
    pub fn syrk_t_with_threads(&self, threads: usize) -> Matrix {
        let (k, n) = self.shape();
        let mut out = Matrix::zeros(n, n);
        gemm::gemm(
            n,
            n,
            k,
            &mut out,
            threads,
            true,
            &gemm::pack_cols(self),
            &gemm::pack_panel_rows(self),
        );
        mirror_upper(&mut out);
        out
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols() != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows()];
        for i in 0..self.rows() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v.iter()) {
                acc += a * b;
            }
            out[i] = acc;
        }
        Ok(out)
    }

    /// Vector–matrix product `selfᵀ * v` (i.e. `vᵀ * self` transposed).
    pub fn t_matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.rows() != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "t_matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols()];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (j, &a) in row.iter().enumerate() {
                out[j] += vi * a;
            }
        }
        Ok(out)
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    /// Multiply every entry by a scalar, returning a new matrix.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Add `value` to every diagonal entry in place (used for ridge/Tikhonov terms).
    pub fn add_diagonal(&mut self, value: f64) {
        let n = self.rows().min(self.cols());
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Frobenius inner product `⟨self, other⟩`.
    pub fn dot(&self, other: &Matrix) -> Result<f64> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "dot",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Symmetrize in place: `self ← (self + selfᵀ) / 2`. Useful to clean up numerical
    /// asymmetry of covariance matrices before eigendecomposition.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        for i in 0..self.rows() {
            for j in (i + 1)..self.cols() {
                let v = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = v;
                self[(j, i)] = v;
            }
        }
    }

    fn zip_with<F: Fn(f64, f64) -> f64>(
        &self,
        other: &Matrix,
        op: &'static str,
        f: F,
    ) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let data = self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| f(*a, *b))
            .collect();
        Matrix::from_vec(self.rows(), self.cols(), data)
    }
}

/// Copy the strict upper triangle of a square matrix onto the lower triangle.
fn mirror_upper(m: &mut Matrix) {
    for i in 1..m.rows() {
        for j in 0..i {
            m[(i, j)] = m[(j, i)];
        }
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Normalize a slice to unit Euclidean norm in place; returns the original norm.
///
/// Vectors with norm below `1e-300` are left untouched (and the tiny norm is returned)
/// so callers can detect degenerate directions in ALS/power iterations.
pub fn normalize(a: &mut [f64]) -> f64 {
    let n = norm2(a);
    if n > 1e-300 {
        for v in a.iter_mut() {
            *v /= n;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert!(approx(c[(0, 0)], 19.0));
        assert!(approx(c[(0, 1)], 22.0));
        assert!(approx(c[(1, 0)], 43.0));
        assert!(approx(c[(1, 1)], 50.0));
        assert!(a.matmul(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn transposed_products_agree_with_explicit_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, -1.0], vec![0.5, -3.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![2.0, 1.0], vec![0.0, -1.0], vec![1.0, 4.0]]).unwrap();
        // t_matmul: aᵀ (2x3)ᵀ=3x2 times b would mismatch; use same-row shapes instead.
        let c1 = a.t_matmul(&a).unwrap();
        let c2 = a.transpose().matmul(&a).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!(approx(c1[(i, j)], c2[(i, j)]));
            }
        }
        let d1 = a.matmul_t(&b.transpose()).unwrap();
        let d2 = a.matmul(&b).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!(approx(d1[(i, j)], d2[(i, j)]));
            }
        }
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, -1.0], vec![0.0, 1.0]]).unwrap();
        let g = a.gram_t();
        assert_eq!(g.shape(), (2, 2));
        assert!(approx(g[(0, 1)], g[(1, 0)]));
        assert!(g[(0, 0)] >= 0.0 && g[(1, 1)] >= 0.0);
        let g2 = a.gram();
        assert_eq!(g2.shape(), (3, 3));
    }

    #[test]
    fn matvec_products() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(a.t_matvec(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.t_matvec(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::identity(2);
        assert_eq!(a.add(&b).unwrap()[(0, 0)], 2.0);
        assert_eq!(a.sub(&b).unwrap()[(1, 1)], 3.0);
        assert_eq!(a.hadamard(&b).unwrap()[(0, 1)], 0.0);
        assert_eq!(a.scale(2.0)[(1, 0)], 6.0);
        assert!(approx(a.dot(&b).unwrap(), 5.0));
        let mut c = a.clone();
        c.axpy(-1.0, &a).unwrap();
        assert_eq!(c.frobenius_norm(), 0.0);
        let mut d = a.clone();
        d.add_diagonal(10.0);
        assert_eq!(d[(0, 0)], 11.0);
        assert_eq!(d[(1, 1)], 14.0);
        assert!(a.add(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn symmetrize_cleans_asymmetry() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![4.0, 3.0]]).unwrap();
        m.symmetrize();
        assert!(approx(m[(0, 1)], 3.0));
        assert!(approx(m[(1, 0)], 3.0));
    }

    #[test]
    fn slice_helpers() {
        assert!(approx(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0));
        assert!(approx(norm2(&[3.0, 4.0]), 5.0));
    }
}
