//! Borrowed matrix views: [`MatrixView`] over one matrix, [`ColsView`] over the
//! horizontal concatenation of several — the zero-copy input types of the serving
//! path.
//!
//! A coalesced `transform_view` batch is logically one wide `d × Σnⱼ` matrix whose
//! column blocks live in the individual request payloads. [`ColsView`] represents
//! that concatenation without materializing it: the blocked GEMM engine
//! ([`crate::gemm`]) packs its panels directly from the borrowed parts (applying an
//! optional per-feature shift — i.e. mean-centering — during the pack), so the only
//! copies ever made are the cache-resident packing buffers the kernel would fill for
//! a materialized matrix anyway.
//!
//! ## Zero-copy contract
//!
//! [`ColsView::shifted_t_matmul`] is **bit-identical** to centering a stitched copy
//! and calling [`Matrix::t_matmul`]: both run the same blocked schedule over the
//! same shapes, and `part[p][j] - shift[p]` computed during packing is the same f64
//! the stitched path would pack. Tests pin this down.
//!
//! ## Copy accounting
//!
//! Two process-wide counters make "zero-copy" assertable in tests rather than
//! aspirational: [`matrix_clones`] counts deep [`Matrix`] buffer clones (the
//! `Clone` impl increments it), and [`input_stitches`] counts every materialization
//! of request data into a stitched matrix ([`ColsView::to_matrix`] and the serving
//! fallback paths call [`note_input_stitch`]). Both are monotone; tests assert
//! deltas across the path under test.

use crate::{gemm, LinalgError, Matrix, MatrixF32, Result};
use std::sync::atomic::{AtomicUsize, Ordering};

static MATRIX_CLONES: AtomicUsize = AtomicUsize::new(0);
static INPUT_STITCHES: AtomicUsize = AtomicUsize::new(0);

/// Total deep [`Matrix`] clones performed by this process so far.
pub fn matrix_clones() -> usize {
    MATRIX_CLONES.load(Ordering::Relaxed)
}

pub(crate) fn note_matrix_clone() {
    MATRIX_CLONES.fetch_add(1, Ordering::Relaxed);
}

/// Total input-stitch materializations performed by this process so far.
pub fn input_stitches() -> usize {
    INPUT_STITCHES.load(Ordering::Relaxed)
}

/// Record that borrowed input data was materialized into a stitched matrix.
/// Called by [`ColsView::to_matrix`] and by serving-layer fallback paths.
pub fn note_input_stitch() {
    INPUT_STITCHES.fetch_add(1, Ordering::Relaxed);
}

/// A borrowed, row-major, dense view of a matrix: shape plus a data slice. The
/// cheap (`Copy`) currency for passing sub-problems around without owning them.
#[derive(Clone, Copy, Debug)]
pub struct MatrixView<'a> {
    rows: usize,
    cols: usize,
    data: &'a [f64],
}

impl<'a> MatrixView<'a> {
    /// View over raw row-major storage. `data.len()` must equal `rows * cols`.
    pub fn new(rows: usize, cols: usize, data: &'a [f64]) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument(format!(
                "view data length {} does not match shape {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &'a [f64] {
        self.data
    }
}

impl<'a> From<&'a Matrix> for MatrixView<'a> {
    fn from(m: &'a Matrix) -> Self {
        Self {
            rows: m.rows(),
            cols: m.cols(),
            data: m.as_slice(),
        }
    }
}

impl Matrix {
    /// Borrow the whole matrix as a [`MatrixView`].
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView::from(self)
    }
}

/// The horizontal concatenation `[X₀ | X₁ | … ]` of borrowed matrix parts, all with
/// the same row count — a `rows × Σ colsⱼ` matrix that is never materialized.
#[derive(Clone, Debug)]
pub struct ColsView<'a> {
    rows: usize,
    parts: Vec<MatrixView<'a>>,
    /// Prefix column offsets: `offsets[j]` is the first global column of part `j`;
    /// the final entry is the total column count.
    offsets: Vec<usize>,
}

impl<'a> ColsView<'a> {
    /// Build a view over `parts` (left to right). All parts must share a row count;
    /// at least one part is required so the row count is well-defined.
    pub fn new(parts: impl IntoIterator<Item = MatrixView<'a>>) -> Result<Self> {
        let parts: Vec<MatrixView<'a>> = parts.into_iter().collect();
        let Some(first) = parts.first() else {
            return Err(LinalgError::InvalidArgument(
                "ColsView needs at least one part".into(),
            ));
        };
        let rows = first.rows();
        let mut offsets = Vec::with_capacity(parts.len() + 1);
        let mut total = 0usize;
        for (j, p) in parts.iter().enumerate() {
            if p.rows() != rows {
                return Err(LinalgError::InvalidArgument(format!(
                    "ColsView part {j} has {} rows, part 0 has {rows}",
                    p.rows()
                )));
            }
            offsets.push(total);
            total += p.cols();
        }
        offsets.push(total);
        Ok(Self {
            rows,
            parts,
            offsets,
        })
    }

    /// Convenience constructor from whole borrowed matrices.
    pub fn from_matrices(parts: impl IntoIterator<Item = &'a Matrix>) -> Result<Self> {
        Self::new(parts.into_iter().map(MatrixView::from))
    }

    /// Number of rows (shared by every part).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of columns across all parts.
    #[inline]
    pub fn cols(&self) -> usize {
        *self.offsets.last().expect("offsets always non-empty")
    }

    /// The borrowed parts, left to right.
    pub fn parts(&self) -> &[MatrixView<'a>] {
        &self.parts
    }

    /// Index of the part containing global column `col`, and the column's offset
    /// inside it.
    #[inline]
    fn locate(&self, col: usize) -> (usize, usize) {
        debug_assert!(col < self.cols());
        // partition_point returns the first offset > col; its predecessor's part
        // holds the column (zero-width parts are skipped by the strict compare).
        let j = self.offsets.partition_point(|&o| o <= col) - 1;
        (j, col - self.offsets[j])
    }

    /// Materialize the concatenation into an owned matrix. This is the *non*
    /// zero-copy fallback: it counts as an input stitch (see [`input_stitches`]).
    pub fn to_matrix(&self) -> Matrix {
        note_input_stitch();
        let mut out = Matrix::zeros(self.rows, self.cols());
        for (part, &off) in self.parts.iter().zip(self.offsets.iter()) {
            for i in 0..self.rows {
                out.row_mut(i)[off..off + part.cols()].copy_from_slice(part.row(i));
            }
        }
        out
    }

    /// `(X − shift·1ᵀ)ᵀ · B` where `X` is this view (`d × N`), `shift` an optional
    /// per-row (per-feature) offset of length `d`, and `B` is `d × r` — producing
    /// the `N × r` projection the `transform_view` serving path needs, without ever
    /// materializing `X` or a centered copy of it: the shift is applied while
    /// packing. Bit-identical to `stitched_centered.t_matmul(b)`.
    pub fn shifted_t_matmul(&self, shift: Option<&[f64]>, b: &Matrix) -> Result<Matrix> {
        if self.rows != b.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "shifted_t_matmul",
                lhs: (self.rows, self.cols()),
                rhs: b.shape(),
            });
        }
        if let Some(s) = shift {
            if s.len() != self.rows {
                return Err(LinalgError::InvalidArgument(format!(
                    "shift has {} entries but the view has {} rows",
                    s.len(),
                    self.rows
                )));
            }
        }
        let (m, n, k) = (self.cols(), b.cols(), self.rows);
        let mut out = Matrix::zeros(m, n);
        let flops = m * n * k;
        let pack_a = self.packer(shift);
        gemm::gemm(
            m,
            n,
            k,
            &mut out,
            parallel::threads_for_work(flops),
            false,
            &pack_a,
            &gemm::pack_panel_rows(b),
        );
        Ok(out)
    }

    /// The reduced-precision counterpart of [`ColsView::shifted_t_matmul`]: the
    /// same zero-copy projection, but narrowing each borrowed input value to
    /// `f32` during the pack and running the `f32` instantiation of the blocked
    /// engine against a pre-narrowed factor matrix (the model's cached f32
    /// shadow). The result is widened back to `f64` for the wire.
    ///
    /// ## Tolerance contract
    ///
    /// Outputs are **not** bit-identical to the f64 path. Each output element is
    /// a `k`-term f32 dot product of narrowed operands, so its relative error
    /// against the f64 reference is bounded by the standard recursive-summation
    /// bound — conservatively `4·k·ε₃₂` of the accumulated magnitude, with
    /// `ε₃₂ = f32::EPSILON ≈ 1.19e-7` (property-tested in
    /// `crates/linalg/tests/properties.rs`). Callers opt in per request; the
    /// default serving path stays f64 and bit-exact.
    pub fn shifted_t_matmul_f32(&self, shift: Option<&[f32]>, b: &MatrixF32) -> Result<Matrix> {
        if self.rows != b.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "shifted_t_matmul_f32",
                lhs: (self.rows, self.cols()),
                rhs: b.shape(),
            });
        }
        if let Some(s) = shift {
            if s.len() != self.rows {
                return Err(LinalgError::InvalidArgument(format!(
                    "shift has {} entries but the view has {} rows",
                    s.len(),
                    self.rows
                )));
            }
        }
        let (m, n, k) = (self.cols(), b.cols(), self.rows);
        let mut out = vec![0.0f32; m * n];
        let flops = m * n * k;
        let pack_a = self.packer_f32(shift);
        gemm::gemm_slice::<f32>(
            m,
            n,
            k,
            &mut out,
            parallel::threads_for_work(flops),
            false,
            gemm::ASource::Packed(&pack_a),
            &pack_panel_rows_f32(b),
        );
        Matrix::from_vec(m, n, out.into_iter().map(f64::from).collect())
    }

    /// Packing closure for the transposed left operand `(X − shift·1ᵀ)ᵀ`: lane `i`
    /// (a global column of the view) at step `p` (a feature row) reads
    /// `part[p][local] − shift[p]` straight from the borrowed part.
    fn packer<'s>(
        &'s self,
        shift: Option<&'s [f64]>,
    ) -> impl Fn(&mut [f64], usize, usize, usize, usize) + Sync + 's {
        move |dst, i0, valid, p0, kc| {
            if valid < gemm::MR {
                dst.fill(0.0);
            }
            // The MR lanes of one micro-panel may straddle part boundaries; resolve
            // each lane to (part, local column) once, then stream the k-range.
            let mut lanes = [(0usize, 0usize); gemm::MR];
            for (ii, lane) in lanes.iter_mut().enumerate().take(valid) {
                *lane = self.locate(i0 + ii);
            }
            for p in 0..kc {
                let s = shift.map_or(0.0, |s| s[p0 + p]);
                let dst_row = &mut dst[p * gemm::MR..p * gemm::MR + valid];
                for (ii, d) in dst_row.iter_mut().enumerate() {
                    let (part, local) = lanes[ii];
                    *d = self.parts[part].row(p0 + p)[local] - s;
                }
            }
        }
    }

    /// [`ColsView::packer`] narrowed to `f32`: each borrowed f64 value is rounded
    /// to nearest once, then the (pre-narrowed) shift is subtracted in f32.
    fn packer_f32<'s>(
        &'s self,
        shift: Option<&'s [f32]>,
    ) -> impl Fn(&mut [f32], usize, usize, usize, usize) + Sync + 's {
        move |dst, i0, valid, p0, kc| {
            if valid < gemm::MR {
                dst.fill(0.0);
            }
            let mut lanes = [(0usize, 0usize); gemm::MR];
            for (ii, lane) in lanes.iter_mut().enumerate().take(valid) {
                *lane = self.locate(i0 + ii);
            }
            for p in 0..kc {
                let s = shift.map_or(0.0, |s| s[p0 + p]);
                let dst_row = &mut dst[p * gemm::MR..p * gemm::MR + valid];
                for (ii, d) in dst_row.iter_mut().enumerate() {
                    let (part, local) = lanes[ii];
                    *d = (self.parts[part].row(p0 + p)[local] as f32) - s;
                }
            }
        }
    }
}

/// B-panel packer over an [`MatrixF32`] — the f32 twin of
/// [`gemm::pack_panel_rows`], with the lane width likewise derived from the
/// destination slice.
fn pack_panel_rows_f32(
    b: &MatrixF32,
) -> impl Fn(&mut [f32], usize, usize, usize, usize) + Sync + '_ {
    move |dst, j0, valid, p0, kc| {
        let w = dst.len() / kc;
        if valid < w {
            dst.fill(0.0);
        }
        for p in 0..kc {
            let seg = &b.row(p0 + p)[j0..j0 + valid];
            dst[p * w..p * w + valid].copy_from_slice(seg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize, seed: f64) -> Matrix {
        let data = (0..rows * cols)
            .map(|i| ((i as f64) * 0.37 + seed).sin())
            .collect();
        Matrix::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn view_accessors() {
        let m = sample(3, 4, 0.0);
        let v = m.view();
        assert_eq!(v.shape(), (3, 4));
        assert_eq!(v.row(1), m.row(1));
        assert!(MatrixView::new(2, 2, &[0.0; 3]).is_err());
    }

    #[test]
    fn cols_view_concatenates() {
        let a = sample(3, 2, 0.1);
        let b = sample(3, 5, 0.2);
        let c = sample(3, 1, 0.3);
        let view = ColsView::from_matrices([&a, &b, &c]).unwrap();
        assert_eq!(view.rows(), 3);
        assert_eq!(view.cols(), 8);
        let stitched = view.to_matrix();
        let expected = a.hstack(&b).unwrap().hstack(&c).unwrap();
        assert_eq!(stitched, expected);
        assert!(ColsView::from_matrices([&a, &sample(2, 2, 0.0)]).is_err());
        assert!(ColsView::from_matrices(std::iter::empty::<&Matrix>()).is_err());
    }

    #[test]
    fn shifted_t_matmul_matches_stitched_bit_for_bit() {
        let a = sample(6, 3, 1.0);
        let b = sample(6, 4, 2.0);
        let proj = sample(6, 2, 3.0);
        let shift: Vec<f64> = (0..6).map(|i| (i as f64) * 0.11 - 0.3).collect();
        let view = ColsView::from_matrices([&a, &b]).unwrap();

        let zero_copy = view.shifted_t_matmul(Some(&shift), &proj).unwrap();
        let mut stitched = view.to_matrix();
        for i in 0..stitched.rows() {
            let s = shift[i];
            for v in stitched.row_mut(i) {
                *v -= s;
            }
        }
        assert_eq!(zero_copy, stitched.t_matmul(&proj).unwrap());

        // Unshifted case too.
        let plain = view.shifted_t_matmul(None, &proj).unwrap();
        assert_eq!(plain, view.to_matrix().t_matmul(&proj).unwrap());

        // Shape errors are reported.
        assert!(view.shifted_t_matmul(Some(&[0.0]), &proj).is_err());
        assert!(view.shifted_t_matmul(None, &sample(5, 2, 0.0)).is_err());
    }

    #[test]
    fn counters_are_monotone() {
        let before = input_stitches();
        let a = sample(2, 2, 0.0);
        let _ = ColsView::from_matrices([&a]).unwrap().to_matrix();
        assert_eq!(input_stitches(), before + 1);
        let c0 = matrix_clones();
        let _copy = a.clone();
        assert!(matrix_clones() > c0);
    }
}
