//! Randomized sketching primitives: the seeded Gaussian sketch, the randomized
//! range-finder for covariance eigenproblems, and the Nyström low-rank
//! eigendecomposition for kernel matrices.
//!
//! The exact whitening preamble of TCCA forms the `d × d` covariance and takes its
//! inverse square root — `O(d²)` memory and an `O(d³)` Jacobi eigensolve, which is
//! infeasible at `d ≈ 100k`. The primitives here never materialize the covariance:
//! [`randomized_covariance_eig`] touches `C = XXᵀ/N` only through the two-GEMM
//! product `C·Ω = X(XᵀΩ)/N`, riding the existing blocked engine ([`crate::gemm`]),
//! plus a thin QR ([`crate::thin_qr`]) of the `d × ℓ` range and one `ℓ × ℓ`
//! eigensolve. [`nystrom_eig`] is the kernel-matrix analogue: a seeded landmark
//! subset replaces the Gaussian sketch, so `N × N` Gram matrices factor through
//! `N × m` blocks.
//!
//! ## Determinism
//!
//! Everything here is bit-deterministic in the seed and independent of
//! `TCCA_NUM_THREADS`: the sketch is generated sequentially by a [`SketchRng`]
//! (SplitMix64 + Box–Muller, no shared state), the QR and small eigensolves are
//! sequential, and every large product runs through the blocked GEMM engine whose
//! accumulation schedule is already pinned across thread counts (CI diffs a
//! `randomized_whiten` kernel checksum under 1 vs 4 threads).

use crate::{LinalgError, Matrix, Result, SymmetricEigen};

/// A tiny, self-contained, sequentially deterministic Gaussian generator
/// (SplitMix64 bit stream, Box–Muller transform). Two instances with the same seed
/// produce the same stream on every platform and thread count.
#[derive(Debug, Clone)]
pub struct SketchRng {
    state: u64,
    spare: Option<f64>,
}

impl SketchRng {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed,
            spare: None,
        }
    }

    /// Next raw 64-bit value of the SplitMix64 stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in the open interval `(0, 1)`.
    fn uniform_open(&mut self) -> f64 {
        // 53 mantissa bits, then shift off zero so ln() below is always finite.
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u + f64::EPSILON
    }

    /// Standard normal draw via Box–Muller (caches the second value of each pair).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        let u1 = self.uniform_open();
        let u2 = self.uniform_open();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }
}

/// A `rows × cols` matrix of i.i.d. standard normal entries, filled row-major from
/// one sequential [`SketchRng`] stream — the seeded Gaussian sketch `Ω`.
pub fn gaussian_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SketchRng::new(seed);
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.standard_normal()).collect();
    Matrix::from_vec(rows, cols, data).expect("shape matches data")
}

/// A truncated symmetric eigendecomposition `A ≈ U diag(λ) Uᵀ` with orthonormal
/// columns in `U` and eigenvalues in decreasing order — the common return type of
/// the randomized low-rank factorizations in this module.
#[derive(Debug, Clone)]
pub struct LowRankEig {
    /// Approximate leading eigenvalues, decreasing.
    pub eigenvalues: Vec<f64>,
    /// The matching eigenvectors as orthonormal columns (`d × k`).
    pub eigenvectors: Matrix,
}

/// `C·Q` for the implicit covariance `C = XXᵀ/N` of a centered `d × N` view,
/// computed as two GEMMs without ever forming `C`.
fn covariance_times(x: &Matrix, q: &Matrix) -> Result<Matrix> {
    let inv_n = 1.0 / x.cols().max(1) as f64;
    Ok(x.matmul(&x.t_matmul(q)?)?.scale(inv_n))
}

/// Approximate the top-`rank` eigenpairs of the covariance `C = XXᵀ/N` of a
/// **centered** `d × N` view via a randomized range-finder with subspace iteration
/// (Halko, Martinsson & Tropp 2011), without ever materializing `C`:
///
/// 1. sketch `Y = C·Ω` with a seeded `d × ℓ` Gaussian `Ω`, `ℓ = rank + oversample`,
///    each application of `C` costing two `d × N` GEMMs,
/// 2. `power_iters` rounds of `Y ← C·orth(Y)` (thin QR between multiplies keeps the
///    basis from collapsing onto the dominant eigenvector),
/// 3. project: `T = QᵀCQ = BᵀB/N` with `B = XᵀQ` — an `ℓ × ℓ` symmetric
///    eigenproblem — and rotate the small eigenvectors back up through `Q`.
///
/// The returned basis spans the dominant eigenspace up to the usual randomized
/// error bound; with 1–2 power iterations and a modest oversample the principal
/// angles against the exact leading eigenvectors are small whenever the spectrum
/// decays (property-tested against the Jacobi eigensolver at small `d`).
pub fn randomized_covariance_eig(
    x: &Matrix,
    rank: usize,
    oversample: usize,
    power_iters: usize,
    seed: u64,
) -> Result<LowRankEig> {
    let (d, n) = x.shape();
    if rank == 0 {
        return Err(LinalgError::InvalidArgument(
            "randomized eig rank must be positive".into(),
        ));
    }
    if d == 0 || n == 0 {
        return Err(LinalgError::InvalidArgument(
            "cannot sketch an empty view".into(),
        ));
    }
    let k = rank.min(d).min(n);
    let l = (k + oversample).min(d);

    let omega = gaussian_matrix(d, l, seed);
    let mut y = covariance_times(x, &omega)?;
    for _ in 0..power_iters {
        let (q, _) = crate::thin_qr(&y)?;
        y = covariance_times(x, &q)?;
    }
    let (q, _) = crate::thin_qr(&y)?;

    // T = QᵀCQ = (XᵀQ)ᵀ(XᵀQ)/N: the ℓ × ℓ shadow of C in the recovered range.
    let b = x.t_matmul(&q)?;
    let t = b.gram_t().scale(1.0 / n as f64);
    let eig = SymmetricEigen::new(&t)?;
    let eigenvectors = q.matmul(&eig.eigenvectors.leading_columns(k))?;
    Ok(LowRankEig {
        eigenvalues: eig.eigenvalues[..k].to_vec(),
        eigenvectors,
    })
}

/// Approximate the top eigenpairs of a symmetric PSD `N × N` kernel matrix from
/// `landmarks` seeded landmark columns (the Nyström method): with `J` the landmark
/// set, `C = K[:, J]` and `W = K[J, J]`,
///
/// ```text
/// K ≈ C W⁺ Cᵀ = M Mᵀ,   M = C W^{-1/2}
/// ```
///
/// so the eigenpairs of the rank-`m` approximation come from the `m × m`
/// eigenproblem of `MᵀM`. Only `N × m` blocks are ever multiplied — the kernel
/// methods' whitening stops scaling with `N²·N` and kernel TCCA becomes tractable
/// beyond toy `N`. Directions whose landmark-block eigenvalue falls below
/// `1e-10 · λ₁` are dropped (pseudo-inverse), so the returned width can be below
/// `landmarks` for rank-deficient kernels.
pub fn nystrom_eig(kernel: &Matrix, landmarks: usize, seed: u64) -> Result<LowRankEig> {
    let n = kernel.rows();
    if !kernel.is_square() {
        return Err(LinalgError::NotSquare {
            rows: kernel.rows(),
            cols: kernel.cols(),
        });
    }
    if n == 0 || landmarks == 0 {
        return Err(LinalgError::InvalidArgument(
            "Nyström needs a non-empty kernel and at least one landmark".into(),
        ));
    }
    let m = landmarks.min(n);

    // Seeded landmark subset: partial Fisher–Yates over 0..n, then sorted so the
    // landmark order (and therefore every downstream bit) is canonical.
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = SketchRng::new(seed);
    for i in 0..m {
        let j = i + (rng.next_u64() as usize) % (n - i);
        indices.swap(i, j);
    }
    let mut picked = indices[..m].to_vec();
    picked.sort_unstable();

    let c = kernel.select_columns(&picked);
    let w = c.select_rows(&picked);

    // Pseudo inverse square root of the landmark block: drop the null space instead
    // of clamping it, so a singular centered kernel cannot inject spurious
    // directions into the recovered range.
    let eig = SymmetricEigen::new(&w)?;
    let lambda_max = eig.eigenvalues.first().copied().unwrap_or(0.0).max(0.0);
    let cutoff = 1e-10 * lambda_max.max(f64::MIN_POSITIVE);
    let w_inv_sqrt = eig.spectral_map(|l| if l > cutoff { 1.0 / l.sqrt() } else { 0.0 });

    let factor = c.matmul(&w_inv_sqrt)?; // M: N × m, K ≈ M Mᵀ
    let small = factor.gram_t(); // MᵀM: m × m
    let eig = SymmetricEigen::new(&small)?;

    // Eigenvectors of M Mᵀ: u_i = M v_i / √λ_i, for the λ_i that survived.
    let keep: usize = eig
        .eigenvalues
        .iter()
        .take_while(|&&l| l > cutoff)
        .count()
        .max(1);
    let mut scaled = eig.eigenvectors.leading_columns(keep);
    for j in 0..keep {
        let inv = 1.0 / eig.eigenvalues[j].max(f64::MIN_POSITIVE).sqrt();
        for i in 0..scaled.rows() {
            scaled[(i, j)] *= inv;
        }
    }
    Ok(LowRankEig {
        eigenvalues: eig.eigenvalues[..keep].to_vec(),
        eigenvectors: factor.matmul(&scaled)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::center_rows;

    fn decaying_view(d: usize, n: usize, seed: u64) -> Matrix {
        // Planted spectrum: feature i carries variance ~ (i+1)^-2 plus a shared
        // strong direction, so the covariance has a clear dominant eigenspace.
        let mut rng = SketchRng::new(seed);
        let mut x = Matrix::zeros(d, n);
        for j in 0..n {
            let shared = rng.standard_normal();
            for i in 0..d {
                let scale = 1.0 / ((i + 1) as f64);
                x[(i, j)] = 3.0 * shared * scale + 0.2 * scale * rng.standard_normal();
            }
        }
        x
    }

    #[test]
    fn sketch_is_seed_deterministic_and_seed_sensitive() {
        let a = gaussian_matrix(7, 5, 42);
        let b = gaussian_matrix(7, 5, 42);
        assert_eq!(a, b);
        let c = gaussian_matrix(7, 5, 43);
        assert_ne!(a, c);
        // Sanity: roughly standard normal.
        let mean: f64 = a.as_slice().iter().sum::<f64>() / 35.0;
        assert!(mean.abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn randomized_eig_matches_jacobi_on_small_problem() {
        let (x, _) = center_rows(&decaying_view(20, 300, 1));
        let approx = randomized_covariance_eig(&x, 4, 6, 2, 9).unwrap();
        let exact = SymmetricEigen::new(&crate::covariance(&x)).unwrap();
        for k in 0..4 {
            let rel = (approx.eigenvalues[k] - exact.eigenvalues[k]).abs()
                / exact.eigenvalues[0].max(1e-12);
            assert!(rel < 1e-6, "eigenvalue {k}: rel error {rel}");
        }
        // Orthonormal columns.
        let g = approx.eigenvectors.gram_t();
        for i in 0..4 {
            for j in 0..4 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((g[(i, j)] - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn randomized_eig_is_bit_deterministic_in_the_seed() {
        let (x, _) = center_rows(&decaying_view(16, 120, 2));
        let a = randomized_covariance_eig(&x, 3, 4, 1, 5).unwrap();
        let b = randomized_covariance_eig(&x, 3, 4, 1, 5).unwrap();
        assert_eq!(a.eigenvectors, b.eigenvectors);
        assert_eq!(a.eigenvalues, b.eigenvalues);
    }

    #[test]
    fn nystrom_recovers_low_rank_kernel() {
        // A rank-3 PSD kernel: K = V Vᵀ with V n×3.
        let n = 40;
        let v = gaussian_matrix(n, 3, 11);
        let k = v.matmul_t(&v).unwrap();
        let approx = nystrom_eig(&k, 10, 4).unwrap();
        // Reconstruction error of U diag(λ) Uᵀ against K is tiny.
        let mut recon = approx.eigenvectors.clone();
        for j in 0..approx.eigenvalues.len() {
            for i in 0..n {
                recon[(i, j)] *= approx.eigenvalues[j];
            }
        }
        let recon = recon.matmul_t(&approx.eigenvectors).unwrap();
        let err = k.sub(&recon).unwrap().frobenius_norm() / k.frobenius_norm();
        assert!(err < 1e-8, "relative reconstruction error {err}");
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let x = decaying_view(5, 10, 3);
        assert!(randomized_covariance_eig(&x, 0, 2, 1, 1).is_err());
        assert!(nystrom_eig(&Matrix::zeros(3, 4), 2, 1).is_err());
        assert!(nystrom_eig(&Matrix::zeros(3, 3), 0, 1).is_err());
    }
}
