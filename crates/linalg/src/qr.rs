//! Thin (economy) QR factorization via Householder reflections.
//!
//! The randomized range-finder ([`crate::randomized_covariance_eig`]) needs to
//! orthonormalize tall skinny `d × ℓ` blocks — `ℓ` in the tens even when `d` is in
//! the hundreds of thousands. Householder QR is the numerically stable way to do
//! that (unlike Gram–Schmidt it cannot lose orthogonality on a near-degenerate
//! sketch), runs in `O(d·ℓ²)`, and is sequential and branch-free on the data — so
//! its bits never depend on the thread count.

use crate::{LinalgError, Matrix, Result};

/// Thin QR of an `m × n` matrix with `m ≥ n`: returns `(Q, R)` with `Q` an `m × n`
/// matrix of orthonormal columns and `R` upper-triangular `n × n`, such that
/// `A = Q·R`. Rank-deficient inputs are fine — `Q` stays exactly orthonormal and
/// the corresponding diagonal of `R` is (near) zero.
pub fn thin_qr(a: &Matrix) -> Result<(Matrix, Matrix)> {
    let (m, n) = a.shape();
    if m < n {
        return Err(LinalgError::InvalidArgument(format!(
            "thin QR needs rows >= cols, got {m}x{n}"
        )));
    }
    if n == 0 {
        return Err(LinalgError::InvalidArgument(
            "thin QR of an empty matrix".into(),
        ));
    }

    // Factor in place: `work` accumulates R in its upper triangle while columns
    // below the diagonal hold the Householder vectors v_k (with v_k[k] stored
    // implicitly as 1 after normalization by beta). All inner loops stream whole
    // rows (the storage is row-major; a column walk would touch one cache line
    // per element at `d ≈ 100k`), accumulating each dot product over ascending
    // row index — the same summation order as the textbook column-wise loop, so
    // the factorization is bit-for-bit independent of this layout choice.
    let mut work = a.clone();
    let mut betas = vec![0.0f64; n];
    let mut v = vec![0.0f64; m]; // contiguous copy of the current reflector
    let mut dots = vec![0.0f64; n];
    for k in 0..n {
        // Norm of the k-th column below (and including) the diagonal.
        let mut norm2 = 0.0;
        for i in k..m {
            norm2 += work[(i, k)] * work[(i, k)];
        }
        let norm = norm2.sqrt();
        if norm == 0.0 {
            betas[k] = 0.0;
            continue;
        }
        // v = x + sign(x₀)‖x‖ e₁ avoids cancellation; store v scaled so v[k] = 1.
        let alpha = if work[(k, k)] >= 0.0 { norm } else { -norm };
        let v0 = work[(k, k)] + alpha;
        for i in (k + 1)..m {
            let scaled = work[(i, k)] / v0;
            work[(i, k)] = scaled;
            v[i] = scaled;
        }
        // beta = 2 / vᵀv for the normalized v (v[k] = 1).
        let mut vtv = 1.0;
        for i in (k + 1)..m {
            vtv += work[(i, k)] * work[(i, k)];
        }
        betas[k] = 2.0 / vtv;
        work[(k, k)] = -alpha; // R[k][k]

        // Apply H_k = I - beta v vᵀ to the trailing columns: one row-streaming
        // pass to form dot[j] = vᵀ·A[:, j], one to subtract the rank-1 update.
        let beta = betas[k];
        let data = work.as_mut_slice();
        dots[(k + 1)..n].copy_from_slice(&data[(k * n + k + 1)..(k + 1) * n]);
        for i in (k + 1)..m {
            let vi = v[i];
            let row = &data[(i * n + k + 1)..(i + 1) * n];
            for (dot, &w) in dots[(k + 1)..n].iter_mut().zip(row) {
                *dot += vi * w;
            }
        }
        for d in &mut dots[(k + 1)..n] {
            *d *= beta;
        }
        for (w, &s) in data[(k * n + k + 1)..(k + 1) * n]
            .iter_mut()
            .zip(&dots[(k + 1)..n])
        {
            *w -= s;
        }
        for i in (k + 1)..m {
            let vi = v[i];
            let row = &mut data[(i * n + k + 1)..(i + 1) * n];
            for (w, &s) in row.iter_mut().zip(&dots[(k + 1)..n]) {
                *w -= s * vi;
            }
        }
    }

    // R: the upper triangle of the workspace.
    let mut r = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            r[(i, j)] = work[(i, j)];
        }
    }

    // Q: apply H_0 … H_{n-1} (in reverse) to the thin identity, with the same
    // row-streaming two-pass application (and the same per-column summation
    // order) as the factorization above.
    let mut q = Matrix::zeros(m, n);
    for j in 0..n {
        q[(j, j)] = 1.0;
    }
    for k in (0..n).rev() {
        if betas[k] == 0.0 {
            continue;
        }
        let beta = betas[k];
        for i in (k + 1)..m {
            v[i] = work[(i, k)];
        }
        let data = q.as_mut_slice();
        dots[..n].copy_from_slice(&data[(k * n)..(k + 1) * n]);
        for i in (k + 1)..m {
            let vi = v[i];
            let row = &data[(i * n)..(i + 1) * n];
            for (dot, &qw) in dots[..n].iter_mut().zip(row) {
                *dot += vi * qw;
            }
        }
        for d in &mut dots[..n] {
            *d *= beta;
        }
        for (qw, &s) in data[(k * n)..(k + 1) * n].iter_mut().zip(&dots[..n]) {
            *qw -= s;
        }
        for i in (k + 1)..m {
            let vi = v[i];
            let row = &mut data[(i * n)..(i + 1) * n];
            for (qw, &s) in row.iter_mut().zip(&dots[..n]) {
                *qw -= s * vi;
            }
        }
    }

    Ok((q, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::gaussian_matrix;

    fn assert_orthonormal(q: &Matrix, tol: f64) {
        let g = q.gram_t();
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (g[(i, j)] - want).abs() < tol,
                    "QᵀQ[{i}][{j}] = {}",
                    g[(i, j)]
                );
            }
        }
    }

    #[test]
    fn reconstructs_and_orthonormalizes() {
        let a = gaussian_matrix(23, 7, 5);
        let (q, r) = thin_qr(&a).unwrap();
        assert_eq!(q.shape(), (23, 7));
        assert_eq!(r.shape(), (7, 7));
        assert_orthonormal(&q, 1e-12);
        let qr = q.matmul(&r).unwrap();
        let err = a.sub(&qr).unwrap().max_abs();
        assert!(err < 1e-12, "reconstruction error {err}");
        // R is upper triangular.
        for i in 0..7 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn rank_deficient_input_keeps_q_orthonormal() {
        // Two identical columns plus a zero column.
        let base = gaussian_matrix(15, 1, 9);
        let mut a = Matrix::zeros(15, 3);
        for i in 0..15 {
            a[(i, 0)] = base[(i, 0)];
            a[(i, 1)] = base[(i, 0)];
        }
        let (q, r) = thin_qr(&a).unwrap();
        assert_orthonormal(&q, 1e-10);
        let err = a.sub(&q.matmul(&r).unwrap()).unwrap().max_abs();
        assert!(err < 1e-10, "reconstruction error {err}");
    }

    #[test]
    fn square_and_invalid_shapes() {
        let a = gaussian_matrix(6, 6, 2);
        let (q, _) = thin_qr(&a).unwrap();
        assert_orthonormal(&q, 1e-11);
        assert!(thin_qr(&gaussian_matrix(3, 5, 1)).is_err());
        assert!(thin_qr(&Matrix::zeros(4, 0)).is_err());
    }
}
