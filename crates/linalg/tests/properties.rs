//! Property-based tests for the linear-algebra substrate.
//!
//! These exercise the algebraic identities that the rest of the reproduction relies on:
//! associativity/consistency of the product kernels, eigendecomposition reconstruction,
//! Cholesky round-trips, SVD orthogonality, and whitening.

use linalg::{center_rows, covariance, Cholesky, Matrix, Svd, SymmetricEigen};
use proptest::prelude::*;

/// Strategy: a matrix with entries in [-5, 5] and the given shape bounds.
fn matrix_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-5.0..5.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

/// Strategy: a random symmetric positive definite matrix A = BᵀB + I.
fn spd_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim).prop_flat_map(|n| {
        proptest::collection::vec(-2.0..2.0f64, n * n).prop_map(move |data| {
            let b = Matrix::from_vec(n, n, data).unwrap();
            let mut a = b.gram_t();
            a.add_diagonal(1.0);
            a
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in matrix_strategy(8, 8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associativity(
        adata in proptest::collection::vec(-3.0..3.0f64, 5 * 4),
        bdata in proptest::collection::vec(-3.0..3.0f64, 4 * 3),
        cdata in proptest::collection::vec(-3.0..3.0f64, 3 * 2),
    ) {
        let a = Matrix::from_vec(5, 4, adata).unwrap();
        let b = Matrix::from_vec(4, 3, bdata).unwrap();
        let c = Matrix::from_vec(3, 2, cdata).unwrap();
        let ab_c = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let a_bc = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(ab_c.sub(&a_bc).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn transposed_kernels_match_naive(
        adata in proptest::collection::vec(-3.0..3.0f64, 6 * 5),
        bdata in proptest::collection::vec(-3.0..3.0f64, 6 * 4),
    ) {
        // aᵀ b computed two ways.
        let a = Matrix::from_vec(6, 5, adata).unwrap();
        let b = Matrix::from_vec(6, 4, bdata).unwrap();
        let fast = a.t_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        prop_assert!(fast.sub(&slow).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn eigen_reconstructs_symmetric(a in spd_strategy(7)) {
        let eig = SymmetricEigen::new(&a).unwrap();
        let rec = eig.reconstruct();
        prop_assert!(rec.sub(&a).unwrap().max_abs() < 1e-7 * (1.0 + a.max_abs()));
    }

    #[test]
    fn eigenvalues_of_spd_are_positive(a in spd_strategy(6)) {
        let eig = SymmetricEigen::new(&a).unwrap();
        for &l in &eig.eigenvalues {
            prop_assert!(l > 0.0);
        }
        // Sorted descending.
        for w in eig.eigenvalues.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn cholesky_roundtrip(a in spd_strategy(7)) {
        let chol = Cholesky::new(&a).unwrap();
        let rec = chol.lower().matmul_t(chol.lower()).unwrap();
        prop_assert!(rec.sub(&a).unwrap().max_abs() < 1e-8 * (1.0 + a.max_abs()));
    }

    #[test]
    fn cholesky_solve_gives_residual_zero(a in spd_strategy(6)) {
        let n = a.rows();
        let b = Matrix::filled(n, 1, 1.0);
        let x = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let residual = a.matmul(&x).unwrap().sub(&b).unwrap();
        prop_assert!(residual.max_abs() < 1e-7);
    }

    #[test]
    fn svd_reconstructs(m in matrix_strategy(7, 5)) {
        let svd = Svd::new(&m).unwrap();
        prop_assert!(svd.reconstruct().sub(&m).unwrap().max_abs() < 1e-7 * (1.0 + m.max_abs()));
        // Singular values non-negative and sorted.
        for w in svd.singular_values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        for &s in &svd.singular_values {
            prop_assert!(s >= -1e-12);
        }
    }

    #[test]
    fn inverse_sqrt_whitens_spd(a in spd_strategy(6)) {
        let w = a.inverse_sqrt_spd(1e-12).unwrap();
        let prod = w.matmul(&a).unwrap().matmul(&w).unwrap();
        let eye = Matrix::identity(a.rows());
        prop_assert!(prod.sub(&eye).unwrap().max_abs() < 1e-6);
    }

    #[test]
    fn parallel_products_are_bit_identical_to_serial(
        adata in proptest::collection::vec(-3.0..3.0f64, 9 * 7),
        bdata in proptest::collection::vec(-3.0..3.0f64, 7 * 5),
    ) {
        // Determinism across thread counts: the row-blocked parallel kernels keep the
        // per-element accumulation order of the serial path, so results must be
        // *exactly* equal, not merely close.
        let a = Matrix::from_vec(9, 7, adata).unwrap();
        let b = Matrix::from_vec(7, 5, bdata).unwrap();
        let serial = a.matmul_with_threads(&b, 1).unwrap();
        let serial_t = a.t_matmul_with_threads(&a, 1).unwrap();
        let serial_mt = a.matmul_t_with_threads(&a, 1).unwrap();
        for threads in [2usize, 3, 4, 16] {
            prop_assert_eq!(&a.matmul_with_threads(&b, threads).unwrap(), &serial);
            prop_assert_eq!(&a.t_matmul_with_threads(&a, threads).unwrap(), &serial_t);
            prop_assert_eq!(&a.matmul_t_with_threads(&a, threads).unwrap(), &serial_mt);
        }
        // And the auto-threaded entry points agree too.
        prop_assert_eq!(&a.matmul(&b).unwrap(), &serial);
        prop_assert_eq!(&a.t_matmul(&a).unwrap(), &serial_t);
        prop_assert_eq!(&a.matmul_t(&a).unwrap(), &serial_mt);
    }

    #[test]
    fn syrk_matches_general_product_bit_for_bit(m in matrix_strategy(9, 7)) {
        // The symmetric rank-k kernels compute only the upper triangle and mirror.
        // Every entry keeps the ascending reduction order of the general kernels and
        // multiplication is commutative, so for the finite inputs generated here the
        // results must be *exactly* equal — gram/gram_t switching to syrk must not
        // perturb a single bit downstream. (Non-finite inputs are the documented
        // exception for syrk_t: its mirrored triangle symmetrizes where t_matmul's
        // zero-skip could produce an asymmetric NaN pattern.)
        prop_assert_eq!(&m.syrk(), &m.matmul_t(&m).unwrap());
        prop_assert_eq!(&m.syrk_t(), &m.t_matmul(&m).unwrap());
        prop_assert_eq!(&m.gram(), &m.matmul_t(&m).unwrap());
        prop_assert_eq!(&m.gram_t(), &m.t_matmul(&m).unwrap());
        // Bit-identical across thread counts, including the serial fallback.
        let serial = m.syrk_with_threads(1);
        let serial_t = m.syrk_t_with_threads(1);
        for threads in [2usize, 3, 16] {
            prop_assert_eq!(&m.syrk_with_threads(threads), &serial);
            prop_assert_eq!(&m.syrk_t_with_threads(threads), &serial_t);
        }
    }

    #[test]
    fn t_matmul_acc_accumulates(
        adata in proptest::collection::vec(-3.0..3.0f64, 6 * 4),
        bdata in proptest::collection::vec(-3.0..3.0f64, 6 * 3),
    ) {
        let a = Matrix::from_vec(6, 4, adata).unwrap();
        let b = Matrix::from_vec(6, 3, bdata).unwrap();
        let mut acc = Matrix::filled(4, 3, 1.0);
        a.t_matmul_acc(&b, &mut acc).unwrap();
        let expected = Matrix::filled(4, 3, 1.0).add(&a.t_matmul(&b).unwrap()).unwrap();
        prop_assert!(acc.sub(&expected).unwrap().max_abs() < 1e-12);
        // Shape mismatches are rejected.
        let mut wrong = Matrix::zeros(2, 2);
        prop_assert!(a.t_matmul_acc(&b, &mut wrong).is_err());
    }

    #[test]
    fn centering_then_covariance_is_psd(m in matrix_strategy(5, 12)) {
        let (c, _) = center_rows(&m);
        let cov = covariance(&c);
        let eig = SymmetricEigen::new(&cov).unwrap();
        for &l in &eig.eigenvalues {
            prop_assert!(l > -1e-9);
        }
    }
}
