//! Property-based tests for the linear-algebra substrate.
//!
//! These exercise the algebraic identities that the rest of the reproduction relies on:
//! associativity/consistency of the product kernels, eigendecomposition reconstruction,
//! Cholesky round-trips, SVD orthogonality, and whitening.

use linalg::gemm::{KC, MC, MR, NR};
use linalg::{center_rows, covariance, Cholesky, ColsView, Matrix, MatrixF32, Svd, SymmetricEigen};
use proptest::prelude::*;

/// Seeded pseudo-random matrix for the deterministic tile-boundary tests.
fn seeded_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let data = (0..rows * cols)
        .map(|i| ((i as f64) * 0.618 + seed as f64 * 0.347).sin() * 3.0)
        .collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

/// Textbook triple-loop reference: `a · b` with each element a single ascending
/// accumulation chain. The blocked engine must agree to rounding error at every
/// shape, and bit-for-bit whenever the reduction fits in one k-block.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a[(i, p)] * b[(p, j)];
            }
            out[(i, j)] = acc;
        }
    }
    out
}

/// Dimensions one below, at, and one above a tile parameter.
fn straddle(t: usize) -> [usize; 3] {
    [t - 1, t, t + 1]
}

/// The blocked kernels at dimensions straddling every tile boundary (MR, NR, MC,
/// KC), against the naive reference and across thread counts. An off-by-one in
/// packing, edge-tile write-back or the band partition shows up here, not in the
/// random-shape proptests below (which rarely hit exact multiples).
#[test]
fn blocked_kernels_survive_tile_boundaries() {
    let mut cases: Vec<(usize, usize, usize)> = Vec::new();
    for m in straddle(MR).into_iter().chain(straddle(MC)) {
        cases.push((m, 10, 11));
    }
    for n in straddle(NR) {
        cases.push((9, 10, n));
    }
    for k in straddle(KC) {
        cases.push((9, k, 11));
    }
    // A boundary-everything worst case.
    cases.push((MC + 1, KC + 1, 2 * NR + 1));

    for (m, k, n) in cases {
        let a = seeded_matrix(m, k, 1);
        let b = seeded_matrix(k, n, 2);
        let fast = a.matmul(&b).unwrap();
        let slow = naive_matmul(&a, &b);
        let scale = 1.0 + slow.max_abs();
        assert!(
            fast.sub(&slow).unwrap().max_abs() < 1e-12 * scale,
            "matmul diverged from naive at {m}x{k}x{n}"
        );
        if k <= KC {
            // Single k-block: the accumulation chain is literally the naive one.
            assert_eq!(fast, slow, "matmul not bit-exact at {m}x{k}x{n}");
        }

        let at = seeded_matrix(k, m, 3);
        let t_fast = at.t_matmul(&b).unwrap();
        let t_slow = naive_matmul(&at.transpose(), &b);
        assert!(
            t_fast.sub(&t_slow).unwrap().max_abs() < 1e-12 * (1.0 + t_slow.max_abs()),
            "t_matmul diverged from naive at {m}x{k}x{n}"
        );

        let bt = seeded_matrix(n, k, 4);
        let mt_fast = a.matmul_t(&bt).unwrap();
        let mt_slow = naive_matmul(&a, &bt.transpose());
        assert!(
            mt_fast.sub(&mt_slow).unwrap().max_abs() < 1e-12 * (1.0 + mt_slow.max_abs()),
            "matmul_t diverged from naive at {m}x{k}x{n}"
        );

        // Bit-identical across thread counts at every boundary shape, including
        // thread counts that exceed the number of MR bands.
        for threads in [2usize, 3, 5, 64] {
            assert_eq!(a.matmul_with_threads(&b, threads).unwrap(), fast);
            assert_eq!(at.t_matmul_with_threads(&b, threads).unwrap(), t_fast);
            assert_eq!(a.matmul_t_with_threads(&bt, threads).unwrap(), mt_fast);
        }
    }
}

/// The skinny-tile dispatch boundary: `n ≤ NR/2` instantiates the narrow
/// microkernel (and, for `t_matmul`, the direct-A strided path that skips
/// packing A entirely). Sweeping `n` one below, at, and one above the boundary
/// pins two things: the narrow instantiation computes the same bits as the
/// naive reference (so the dispatch can never change results), and wide/narrow
/// agree with each other across thread counts at every `m` straddling the band
/// partition.
#[test]
fn skinny_tile_dispatch_survives_the_boundary() {
    let half = NR / 2;
    for n in [half - 1, half, half + 1, NR, NR + 1] {
        for m in straddle(MR).into_iter().chain(straddle(MC)) {
            let a = seeded_matrix(m, KC - 3, 7);
            let b = seeded_matrix(KC - 3, n, 8);
            let fast = a.matmul(&b).unwrap();
            // k < KC: single k-block, so the naive chain is the exact chain.
            assert_eq!(fast, naive_matmul(&a, &b), "matmul bits at {m}x{n}");

            let at = seeded_matrix(KC - 3, m, 9);
            let t_fast = at.t_matmul(&b).unwrap();
            assert_eq!(
                t_fast,
                naive_matmul(&at.transpose(), &b),
                "t_matmul bits at {m}x{n}"
            );
            for threads in [2usize, 3, 64] {
                assert_eq!(a.matmul_with_threads(&b, threads).unwrap(), fast);
                assert_eq!(at.t_matmul_with_threads(&b, threads).unwrap(), t_fast);
            }
        }
    }
}

/// `syrk`/`syrk_t` upper-triangle computation + mirroring at tile-straddling
/// sizes: exactly symmetric (bitwise) and bit-identical to the general product.
#[test]
fn syrk_mirroring_survives_tile_boundaries() {
    for d in straddle(MR)
        .into_iter()
        .chain(straddle(NR))
        .chain(straddle(MC))
    {
        let a = seeded_matrix(d, 13, 5);
        let s = a.syrk();
        let g = a.matmul_t(&a).unwrap();
        assert_eq!(s, g, "syrk != matmul_t at dim {d}");
        let at = seeded_matrix(13, d, 6);
        let st = at.syrk_t();
        let gt = at.t_matmul(&at).unwrap();
        assert_eq!(st, gt, "syrk_t != t_matmul at dim {d}");
        for i in 0..d {
            for j in 0..d {
                assert_eq!(s[(i, j)].to_bits(), s[(j, i)].to_bits());
                assert_eq!(st[(i, j)].to_bits(), st[(j, i)].to_bits());
            }
        }
        for threads in [2usize, 7] {
            assert_eq!(a.syrk_with_threads(threads), s);
            assert_eq!(at.syrk_t_with_threads(threads), st);
        }
    }
}

/// Strategy: a matrix with entries in [-5, 5] and the given shape bounds.
fn matrix_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-5.0..5.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

/// Strategy: a random symmetric positive definite matrix A = BᵀB + I.
fn spd_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim).prop_flat_map(|n| {
        proptest::collection::vec(-2.0..2.0f64, n * n).prop_map(move |data| {
            let b = Matrix::from_vec(n, n, data).unwrap();
            let mut a = b.gram_t();
            a.add_diagonal(1.0);
            a
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in matrix_strategy(8, 8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associativity(
        adata in proptest::collection::vec(-3.0..3.0f64, 5 * 4),
        bdata in proptest::collection::vec(-3.0..3.0f64, 4 * 3),
        cdata in proptest::collection::vec(-3.0..3.0f64, 3 * 2),
    ) {
        let a = Matrix::from_vec(5, 4, adata).unwrap();
        let b = Matrix::from_vec(4, 3, bdata).unwrap();
        let c = Matrix::from_vec(3, 2, cdata).unwrap();
        let ab_c = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let a_bc = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(ab_c.sub(&a_bc).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn transposed_kernels_match_naive(
        adata in proptest::collection::vec(-3.0..3.0f64, 6 * 5),
        bdata in proptest::collection::vec(-3.0..3.0f64, 6 * 4),
    ) {
        // aᵀ b computed two ways.
        let a = Matrix::from_vec(6, 5, adata).unwrap();
        let b = Matrix::from_vec(6, 4, bdata).unwrap();
        let fast = a.t_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        prop_assert!(fast.sub(&slow).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn eigen_reconstructs_symmetric(a in spd_strategy(7)) {
        let eig = SymmetricEigen::new(&a).unwrap();
        let rec = eig.reconstruct();
        prop_assert!(rec.sub(&a).unwrap().max_abs() < 1e-7 * (1.0 + a.max_abs()));
    }

    #[test]
    fn eigenvalues_of_spd_are_positive(a in spd_strategy(6)) {
        let eig = SymmetricEigen::new(&a).unwrap();
        for &l in &eig.eigenvalues {
            prop_assert!(l > 0.0);
        }
        // Sorted descending.
        for w in eig.eigenvalues.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn cholesky_roundtrip(a in spd_strategy(7)) {
        let chol = Cholesky::new(&a).unwrap();
        let rec = chol.lower().matmul_t(chol.lower()).unwrap();
        prop_assert!(rec.sub(&a).unwrap().max_abs() < 1e-8 * (1.0 + a.max_abs()));
    }

    #[test]
    fn cholesky_solve_gives_residual_zero(a in spd_strategy(6)) {
        let n = a.rows();
        let b = Matrix::filled(n, 1, 1.0);
        let x = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let residual = a.matmul(&x).unwrap().sub(&b).unwrap();
        prop_assert!(residual.max_abs() < 1e-7);
    }

    #[test]
    fn svd_reconstructs(m in matrix_strategy(7, 5)) {
        let svd = Svd::new(&m).unwrap();
        prop_assert!(svd.reconstruct().sub(&m).unwrap().max_abs() < 1e-7 * (1.0 + m.max_abs()));
        // Singular values non-negative and sorted.
        for w in svd.singular_values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        for &s in &svd.singular_values {
            prop_assert!(s >= -1e-12);
        }
    }

    #[test]
    fn inverse_sqrt_whitens_spd(a in spd_strategy(6)) {
        let w = a.inverse_sqrt_spd(1e-12).unwrap();
        let prod = w.matmul(&a).unwrap().matmul(&w).unwrap();
        let eye = Matrix::identity(a.rows());
        prop_assert!(prod.sub(&eye).unwrap().max_abs() < 1e-6);
    }

    #[test]
    fn parallel_products_are_bit_identical_to_serial(
        adata in proptest::collection::vec(-3.0..3.0f64, 9 * 7),
        bdata in proptest::collection::vec(-3.0..3.0f64, 7 * 5),
    ) {
        // Determinism across thread counts: the row-blocked parallel kernels keep the
        // per-element accumulation order of the serial path, so results must be
        // *exactly* equal, not merely close.
        let a = Matrix::from_vec(9, 7, adata).unwrap();
        let b = Matrix::from_vec(7, 5, bdata).unwrap();
        let serial = a.matmul_with_threads(&b, 1).unwrap();
        let serial_t = a.t_matmul_with_threads(&a, 1).unwrap();
        let serial_mt = a.matmul_t_with_threads(&a, 1).unwrap();
        for threads in [2usize, 3, 4, 16] {
            prop_assert_eq!(&a.matmul_with_threads(&b, threads).unwrap(), &serial);
            prop_assert_eq!(&a.t_matmul_with_threads(&a, threads).unwrap(), &serial_t);
            prop_assert_eq!(&a.matmul_t_with_threads(&a, threads).unwrap(), &serial_mt);
        }
        // And the auto-threaded entry points agree too.
        prop_assert_eq!(&a.matmul(&b).unwrap(), &serial);
        prop_assert_eq!(&a.t_matmul(&a).unwrap(), &serial_t);
        prop_assert_eq!(&a.matmul_t(&a).unwrap(), &serial_mt);
    }

    #[test]
    fn syrk_matches_general_product_bit_for_bit(m in matrix_strategy(9, 7)) {
        // The symmetric rank-k kernels compute only the upper triangle and mirror.
        // Every entry keeps the ascending reduction order of the general kernels and
        // multiplication is commutative, so for the finite inputs generated here the
        // results must be *exactly* equal — gram/gram_t switching to syrk must not
        // perturb a single bit downstream. (Non-finite inputs are the documented
        // exception for syrk_t: its mirrored triangle symmetrizes where t_matmul's
        // zero-skip could produce an asymmetric NaN pattern.)
        prop_assert_eq!(&m.syrk(), &m.matmul_t(&m).unwrap());
        prop_assert_eq!(&m.syrk_t(), &m.t_matmul(&m).unwrap());
        prop_assert_eq!(&m.gram(), &m.matmul_t(&m).unwrap());
        prop_assert_eq!(&m.gram_t(), &m.t_matmul(&m).unwrap());
        // Bit-identical across thread counts, including the serial fallback.
        let serial = m.syrk_with_threads(1);
        let serial_t = m.syrk_t_with_threads(1);
        for threads in [2usize, 3, 16] {
            prop_assert_eq!(&m.syrk_with_threads(threads), &serial);
            prop_assert_eq!(&m.syrk_t_with_threads(threads), &serial_t);
        }
    }

    #[test]
    fn t_matmul_acc_accumulates(
        adata in proptest::collection::vec(-3.0..3.0f64, 6 * 4),
        bdata in proptest::collection::vec(-3.0..3.0f64, 6 * 3),
    ) {
        let a = Matrix::from_vec(6, 4, adata).unwrap();
        let b = Matrix::from_vec(6, 3, bdata).unwrap();
        let mut acc = Matrix::filled(4, 3, 1.0);
        a.t_matmul_acc(&b, &mut acc).unwrap();
        let expected = Matrix::filled(4, 3, 1.0).add(&a.t_matmul(&b).unwrap()).unwrap();
        prop_assert!(acc.sub(&expected).unwrap().max_abs() < 1e-12);
        // Shape mismatches are rejected.
        let mut wrong = Matrix::zeros(2, 2);
        prop_assert!(a.t_matmul_acc(&b, &mut wrong).is_err());
    }

    #[test]
    fn cols_view_projection_matches_stitched_bit_for_bit(
        data in proptest::collection::vec(-3.0..3.0f64, 7 * 24),
        pdata in proptest::collection::vec(-3.0..3.0f64, 7 * 3),
        splits in proptest::collection::vec(1usize..6, 5),
    ) {
        // The zero-copy serving path: a projection over arbitrarily-split column
        // blocks, with centering applied during packing, must equal centering a
        // stitched copy and multiplying — exactly, not approximately.
        let x = Matrix::from_vec(7, 24, data).unwrap();
        let proj = Matrix::from_vec(7, 3, pdata).unwrap();
        let mut parts = Vec::new();
        let mut start = 0usize;
        for w in splits {
            if start >= 24 { break; }
            let end = (start + w).min(24);
            parts.push(x.select_columns(&(start..end).collect::<Vec<_>>()));
            start = end;
        }
        if start < 24 {
            parts.push(x.select_columns(&(start..24).collect::<Vec<_>>()));
        }
        let view = ColsView::from_matrices(parts.iter()).unwrap();
        let shift: Vec<f64> = (0..7).map(|i| 0.1 * i as f64 - 0.2).collect();
        let zero_copy = view.shifted_t_matmul(Some(&shift), &proj).unwrap();
        let mut centered = x.clone();
        for (i, &s) in shift.iter().enumerate() {
            for v in centered.row_mut(i) {
                *v -= s;
            }
        }
        prop_assert_eq!(zero_copy, centered.t_matmul(&proj).unwrap());
    }

    #[test]
    fn f32_projection_tracks_f64_within_contract(
        data in proptest::collection::vec(-3.0..3.0f64, 11 * 17),
        pdata in proptest::collection::vec(-3.0..3.0f64, 11 * 3),
        shift in proptest::collection::vec(-1.0..1.0f64, 11),
    ) {
        // The serving-tier tolerance contract: the f32 fast path stays within
        // `4·k·ε₃₂` of the f64 result, *relative* to the f64 magnitude (floored
        // at 1 so near-cancellations don't demand absolute precision f32 cannot
        // carry). k = 11 is the reduction length here.
        let x = Matrix::from_vec(11, 17, data).unwrap();
        let proj = Matrix::from_vec(11, 3, pdata).unwrap();
        let view = ColsView::from_matrices(std::iter::once(&x)).unwrap();
        let exact = view.shifted_t_matmul(Some(&shift), &proj).unwrap();
        let proj32 = MatrixF32::from_f64(&proj);
        let shift32: Vec<f32> = shift.iter().map(|&s| s as f32).collect();
        let approx = view.shifted_t_matmul_f32(Some(&shift32), &proj32).unwrap();
        prop_assert_eq!(approx.shape(), exact.shape());
        let tol = 4.0 * 11.0 * f64::from(f32::EPSILON);
        for (a, e) in approx.as_slice().iter().zip(exact.as_slice()) {
            let scale = e.abs().max(1.0);
            prop_assert!(
                (a - e).abs() <= tol * scale,
                "f32 path drifted: {a} vs {e} (tol {tol:e}, scale {scale})"
            );
        }
    }

    #[test]
    fn centering_then_covariance_is_psd(m in matrix_strategy(5, 12)) {
        let (c, _) = center_rows(&m);
        let cov = covariance(&c);
        let eig = SymmetricEigen::new(&cov).unwrap();
        for &l in &eig.eigenvalues {
            prop_assert!(l > -1e-9);
        }
    }

    #[test]
    fn randomized_range_finder_recovers_the_exact_subspace(
        data_seed in 0u64..500,
        sketch_seed in 0u64..500,
    ) {
        // A d × N view with a planted rank-3 signal well above the noise floor:
        // the randomized range-finder's top-3 eigenvectors must span the same
        // subspace as the dense Jacobi eigensolver's, measured by principal
        // angles (the singular values of UₑᵀUᵣ are the angle cosines — all ≈ 1
        // iff the subspaces coincide; this is basis- and sign-independent).
        let (d, n, k) = (12usize, 80usize, 3usize);
        let mut rng = linalg::SketchRng::new(data_seed.wrapping_mul(2) + 1);
        let mut x = Matrix::zeros(d, n);
        for j in 0..n {
            let latents = [3.0 * rng.standard_normal(), 2.0 * rng.standard_normal(), rng.standard_normal()];
            for i in 0..d {
                let basis = [
                    ((i + 1) as f64 * 0.7).sin(),
                    ((i + 1) as f64 * 1.9).cos(),
                    if i % 2 == 0 { 1.0 } else { -1.0 },
                ];
                x[(i, j)] = latents.iter().zip(basis).map(|(l, b)| l * b).sum::<f64>()
                    + 0.01 * rng.standard_normal();
            }
        }
        let (centered, _) = center_rows(&x);
        let exact = SymmetricEigen::new(&covariance(&centered)).unwrap();
        let ue = exact.eigenvectors.leading_columns(k);
        let rand = linalg::randomized_covariance_eig(&centered, k, 8, 2, sketch_seed).unwrap();
        let ur = rand.eigenvectors;
        prop_assert_eq!(ur.shape(), (d, k));
        let overlap = ue.t_matmul(&ur).unwrap();
        let angles = Svd::new(&overlap).unwrap();
        for (i, &cosine) in angles.singular_values.iter().enumerate() {
            prop_assert!(
                cosine > 1.0 - 1e-6,
                "principal angle {i} too wide: cos = {cosine}"
            );
        }
        // The recovered eigenvalues agree with the exact ones too.
        for i in 0..k {
            let rel = (rand.eigenvalues[i] - exact.eigenvalues[i]).abs()
                / exact.eigenvalues[i].max(1e-12);
            prop_assert!(rel < 1e-6, "eigenvalue {i} off by {rel}");
        }
    }
}
