//! The paper's evaluation protocol: labeled subsets, validation-based model selection,
//! accuracy-vs-dimension sweeps and best-dimension tables, averaged over random seeds.
//!
//! For every seed the runner (i) draws the labeled set (a fixed count for SecStr/Ads, a
//! fixed count per class for NUS-WIDE), (ii) reserves 20% of the remaining instances as
//! the validation set and treats the rest as the transductive test set, (iii) fits every
//! method at every subspace dimension, trains the base learner (RLS or kNN) on the
//! labeled rows of the produced representation, (iv) selects per-method hyper-parameters
//! (candidate sub-model for BST baselines, `k` for kNN, the dimension for the tables) on
//! validation accuracy, and (v) reports test accuracy.

use crate::methods::{
    experiment_spec, rank_dependent, run_registered, CombineRule, KernelMethod, LinearMethod,
    MethodOutput, Representation,
};
use datasets::{
    center_kernel, gram_matrix, labeled_subset, labeled_subset_per_class, validation_split, Kernel,
    MultiViewDataset,
};
use learners::{accuracy, mean_std, KnnClassifier, RlsClassifier};
use linalg::Matrix;

/// How the labeled training set is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabeledSpec {
    /// A fixed number of labeled instances overall (SecStr and Ads use 100).
    Count(usize),
    /// A fixed number of labeled instances per class (NUS-WIDE uses 4, 6 or 8).
    PerClass(usize),
}

/// Configuration of one experiment (one figure panel or table column).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Subspace dimensions to sweep (the paper sweeps 5…300; the scaled-down default
    /// grids are documented in EXPERIMENTS.md).
    pub dims: Vec<usize>,
    /// CCA/TCCA regularizer ε.
    pub epsilon: f64,
    /// Random seeds (the paper uses five draws of the labeled set).
    pub seeds: Vec<u64>,
    /// Labeled-set specification.
    pub labeled: LabeledSpec,
    /// RLS ridge γ (the paper uses 10⁻²).
    pub gamma: f64,
    /// Use kNN instead of RLS (web image annotation experiments).
    pub use_knn: bool,
    /// Candidate neighbour counts for kNN model selection.
    pub knn_candidates: Vec<usize>,
    /// ALS iteration budget for TCCA / KTCCA.
    pub tcca_iterations: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            dims: vec![5, 10, 20, 40, 80],
            epsilon: 1e-2,
            seeds: vec![0, 1],
            labeled: LabeledSpec::Count(100),
            gamma: 1e-2,
            use_knn: false,
            knn_candidates: (1..=10).collect(),
            tcca_iterations: 20,
        }
    }
}

/// Accuracy / cost curves of one method across the dimension sweep.
#[derive(Debug, Clone)]
pub struct MethodCurve {
    /// Method display name.
    pub method: String,
    /// The swept dimensions.
    pub dims: Vec<usize>,
    /// Mean test accuracy per dimension (over seeds).
    pub mean_accuracy: Vec<f64>,
    /// Standard deviation of the test accuracy per dimension.
    pub std_accuracy: Vec<f64>,
    /// Mean fit wall-clock seconds per dimension.
    pub mean_seconds: Vec<f64>,
    /// Mean modelled memory (MB) per dimension.
    pub mean_megabytes: Vec<f64>,
}

/// Best-dimension summary of one method (one row of a paper table).
#[derive(Debug, Clone)]
pub struct BestSummary {
    /// Method display name.
    pub method: String,
    /// Mean test accuracy at the validation-selected dimension.
    pub mean_accuracy: f64,
    /// Standard deviation over seeds.
    pub std_accuracy: f64,
    /// The dimension selected most often across seeds.
    pub typical_dim: usize,
}

impl BestSummary {
    /// Format as the paper's `mean±std` percentage string.
    pub fn formatted(&self) -> String {
        format!(
            "{:.2}±{:.2}",
            self.mean_accuracy * 100.0,
            self.std_accuracy * 100.0
        )
    }
}

/// The full result of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Accuracy/cost curves per method (one per compared method).
    pub curves: Vec<MethodCurve>,
    /// Best-dimension rows per method.
    pub best: Vec<BestSummary>,
}

/// Render the best-dimension summaries as aligned text rows (the paper's table format).
pub fn sweep_to_table(result: &ExperimentResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>14} {:>10}\n",
        "Method", "Accuracy (%)", "best r"
    ));
    for row in &result.best {
        out.push_str(&format!(
            "{:<12} {:>14} {:>10}\n",
            row.method,
            row.formatted(),
            row.typical_dim
        ));
    }
    out
}

struct EvalContext<'a> {
    labels: &'a [usize],
    n_classes: usize,
    labeled: &'a [usize],
    validation: &'a [usize],
    test: &'a [usize],
    config: &'a ExperimentConfig,
}

/// Run the linear-methods experiment (Figures 3–5, Tables 1–3, and the cost curves of
/// Figures 7–9) on one dataset.
pub fn linear_experiment(
    dataset: &MultiViewDataset,
    methods: &[LinearMethod],
    config: &ExperimentConfig,
) -> ExperimentResult {
    let names: Vec<&str> = methods.iter().map(LinearMethod::name).collect();
    linear_experiment_named(dataset, &names, config)
}

/// Run a linear-methods experiment with the methods given by registry name — the
/// registry-driven entry point; any estimator registered under
/// [`crate::methods::registry`] (including ones added by downstream code) can be
/// swept without touching this crate.
pub fn linear_experiment_named(
    dataset: &MultiViewDataset,
    names: &[&str],
    config: &ExperimentConfig,
) -> ExperimentResult {
    run_experiment(dataset, config, |rank, seed| {
        let spec = experiment_spec(rank, config.epsilon, seed, config.tcca_iterations);
        names
            .iter()
            .map(|name| {
                (
                    rank_dependent(name),
                    run_registered(name, dataset.views(), &spec),
                )
            })
            .collect()
    })
}

/// Run the kernel-methods experiment (Figure 6 / Table 4 and Figure 10) on one dataset.
///
/// Kernels follow the paper: the χ² distance kernel for the first (visual-word
/// histogram) view and the L2 distance kernel for the others, each centered.
pub fn kernel_experiment(
    dataset: &MultiViewDataset,
    methods: &[KernelMethod],
    config: &ExperimentConfig,
) -> ExperimentResult {
    let names: Vec<&str> = methods.iter().map(KernelMethod::name).collect();
    kernel_experiment_named(dataset, &names, config)
}

/// Run a kernel-methods experiment with the methods given by registry name.
pub fn kernel_experiment_named(
    dataset: &MultiViewDataset,
    names: &[&str],
    config: &ExperimentConfig,
) -> ExperimentResult {
    let kernels: Vec<Matrix> = dataset
        .views()
        .iter()
        .enumerate()
        .map(|(p, v)| {
            let kernel = if p == 0 {
                Kernel::ExpChiSquare
            } else {
                Kernel::ExpEuclidean
            };
            center_kernel(&gram_matrix(v, kernel))
        })
        .collect();
    run_experiment(dataset, config, |rank, seed| {
        let spec = experiment_spec(rank, config.epsilon, seed, config.tcca_iterations);
        names
            .iter()
            .map(|name| (rank_dependent(name), run_registered(name, &kernels, &spec)))
            .collect()
    })
}

/// Shared sweep / aggregation logic. `fit_all` produces, for a given rank and seed, the
/// outputs of every method in a fixed order together with a flag saying whether the
/// method actually depends on the rank (flat baselines are computed once and reused).
fn run_experiment<F>(
    dataset: &MultiViewDataset,
    config: &ExperimentConfig,
    mut fit_all: F,
) -> ExperimentResult
where
    F: FnMut(usize, u64) -> Vec<(bool, MethodOutput)>,
{
    assert!(!config.dims.is_empty(), "need at least one dimension");
    assert!(!config.seeds.is_empty(), "need at least one seed");
    let n = dataset.len();
    let all_indices: Vec<usize> = (0..n).collect();

    // Per method per dim: accuracies across seeds; plus per-seed best-dim test accuracy.
    let mut method_names: Vec<String> = Vec::new();
    let mut acc: Vec<Vec<Vec<f64>>> = Vec::new(); // [method][dim][seed]
    let mut secs: Vec<Vec<Vec<f64>>> = Vec::new();
    let mut mems: Vec<Vec<Vec<f64>>> = Vec::new();
    let mut best_acc: Vec<Vec<f64>> = Vec::new(); // [method][seed]
    let mut best_dims: Vec<Vec<usize>> = Vec::new();

    for (seed_pos, &seed) in config.seeds.iter().enumerate() {
        // Draw labeled / validation / test splits.
        let labeled_split = match config.labeled {
            LabeledSpec::Count(count) => labeled_subset(&all_indices, count, seed),
            LabeledSpec::PerClass(per_class) => labeled_subset_per_class(
                &all_indices,
                dataset.labels(),
                dataset.num_classes(),
                per_class,
                seed,
            ),
        };
        let rest = labeled_split.second.clone();
        let val_split = validation_split(&rest, 0.2, seed.wrapping_add(1000));
        let ctx = EvalContext {
            labels: dataset.labels(),
            n_classes: dataset.num_classes(),
            labeled: &labeled_split.first,
            validation: &val_split.first,
            test: &val_split.second,
            config,
        };

        // Cache for rank-independent methods: (val_acc, test_acc, secs, mem).
        let mut flat_cache: Vec<Option<(f64, f64, f64, f64)>> = Vec::new();
        // Track per-method val/test per dim for this seed.
        let mut per_dim_val: Vec<Vec<f64>> = Vec::new();
        let mut per_dim_test: Vec<Vec<f64>> = Vec::new();

        for (dim_pos, &rank) in config.dims.iter().enumerate() {
            let outputs = fit_all(rank, seed);
            if seed_pos == 0 && dim_pos == 0 {
                method_names = outputs.iter().map(|(_, o)| o.name.clone()).collect();
                let m = method_names.len();
                acc = vec![vec![Vec::new(); config.dims.len()]; m];
                secs = vec![vec![Vec::new(); config.dims.len()]; m];
                mems = vec![vec![Vec::new(); config.dims.len()]; m];
                best_acc = vec![Vec::new(); m];
                best_dims = vec![Vec::new(); m];
            }
            if dim_pos == 0 {
                flat_cache = vec![None; outputs.len()];
                per_dim_val = vec![Vec::new(); outputs.len()];
                per_dim_test = vec![Vec::new(); outputs.len()];
            }

            for (mi, (depends_on_rank, output)) in outputs.iter().enumerate() {
                let (val_acc, test_acc, fit_secs, fit_mb) =
                    if !depends_on_rank && flat_cache[mi].is_some() {
                        flat_cache[mi].expect("cached")
                    } else {
                        let (v, t) = evaluate_output(output, &ctx);
                        let tuple = (v, t, output.seconds, output.memory.total_megabytes());
                        if !depends_on_rank {
                            flat_cache[mi] = Some(tuple);
                        }
                        tuple
                    };
                acc[mi][dim_pos].push(test_acc);
                secs[mi][dim_pos].push(fit_secs);
                mems[mi][dim_pos].push(fit_mb);
                per_dim_val[mi].push(val_acc);
                per_dim_test[mi].push(test_acc);
            }
        }

        // Best dimension per method for this seed (selected on validation accuracy).
        for mi in 0..method_names.len() {
            let mut best_pos = 0;
            for (pos, &v) in per_dim_val[mi].iter().enumerate() {
                if v > per_dim_val[mi][best_pos] {
                    best_pos = pos;
                }
            }
            best_acc[mi].push(per_dim_test[mi][best_pos]);
            best_dims[mi].push(config.dims[best_pos]);
        }
    }

    let curves = method_names
        .iter()
        .enumerate()
        .map(|(mi, name)| {
            let mut mean_accuracy = Vec::new();
            let mut std_accuracy = Vec::new();
            let mut mean_seconds = Vec::new();
            let mut mean_megabytes = Vec::new();
            for dim_pos in 0..config.dims.len() {
                let (m, s) = mean_std(&acc[mi][dim_pos]);
                mean_accuracy.push(m);
                std_accuracy.push(s);
                mean_seconds.push(mean_std(&secs[mi][dim_pos]).0);
                mean_megabytes.push(mean_std(&mems[mi][dim_pos]).0);
            }
            MethodCurve {
                method: name.clone(),
                dims: config.dims.clone(),
                mean_accuracy,
                std_accuracy,
                mean_seconds,
                mean_megabytes,
            }
        })
        .collect();

    let best = method_names
        .iter()
        .enumerate()
        .map(|(mi, name)| {
            let (m, s) = mean_std(&best_acc[mi]);
            // Most frequently selected dimension.
            let mut counts = std::collections::HashMap::new();
            for &d in &best_dims[mi] {
                *counts.entry(d).or_insert(0usize) += 1;
            }
            let typical_dim = counts
                .into_iter()
                .max_by_key(|&(_, c)| c)
                .map(|(d, _)| d)
                .unwrap_or(config.dims[0]);
            BestSummary {
                method: name.clone(),
                mean_accuracy: m,
                std_accuracy: s,
                typical_dim,
            }
        })
        .collect();

    ExperimentResult { curves, best }
}

/// Evaluate one method output under the protocol: returns (validation, test) accuracy.
fn evaluate_output(output: &MethodOutput, ctx: &EvalContext<'_>) -> (f64, f64) {
    match output.combine {
        CombineRule::SelectBest => {
            let mut best = (0.0, 0.0);
            let mut best_val = f64::NEG_INFINITY;
            for candidate in &output.candidates {
                let (val_acc, test_acc) = evaluate_candidate(candidate, ctx);
                if val_acc > best_val {
                    best_val = val_acc;
                    best = (val_acc, test_acc);
                }
            }
            best
        }
        CombineRule::Average => {
            if ctx.config.use_knn {
                // Majority vote across the candidates' predictions.
                let mut val_votes: Vec<Vec<usize>> = Vec::new();
                let mut test_votes: Vec<Vec<usize>> = Vec::new();
                for candidate in &output.candidates {
                    let (vp, tp) = candidate_predictions(candidate, ctx);
                    val_votes.push(vp);
                    test_votes.push(tp);
                }
                let val_pred = majority_vote(&val_votes, ctx.n_classes);
                let test_pred = majority_vote(&test_votes, ctx.n_classes);
                (
                    accuracy(&val_pred, &select_labels(ctx.labels, ctx.validation)),
                    accuracy(&test_pred, &select_labels(ctx.labels, ctx.test)),
                )
            } else {
                // Average the RLS decision scores across candidates.
                let mut val_scores: Option<Matrix> = None;
                let mut test_scores: Option<Matrix> = None;
                for candidate in &output.candidates {
                    let (vs, ts) = candidate_scores(candidate, ctx);
                    val_scores = Some(match val_scores {
                        None => vs,
                        Some(acc) => acc.add(&vs).expect("same shape"),
                    });
                    test_scores = Some(match test_scores {
                        None => ts,
                        Some(acc) => acc.add(&ts).expect("same shape"),
                    });
                }
                let val_pred =
                    RlsClassifier::predict_from_scores(&val_scores.expect("≥1 candidate"));
                let test_pred =
                    RlsClassifier::predict_from_scores(&test_scores.expect("≥1 candidate"));
                (
                    accuracy(&val_pred, &select_labels(ctx.labels, ctx.validation)),
                    accuracy(&test_pred, &select_labels(ctx.labels, ctx.test)),
                )
            }
        }
    }
}

/// Validation and test accuracy of a single candidate representation.
fn evaluate_candidate(candidate: &Representation, ctx: &EvalContext<'_>) -> (f64, f64) {
    let (val_pred, test_pred) = candidate_predictions(candidate, ctx);
    (
        accuracy(&val_pred, &select_labels(ctx.labels, ctx.validation)),
        accuracy(&test_pred, &select_labels(ctx.labels, ctx.test)),
    )
}

/// Predictions of a single candidate on the validation and test splits.
fn candidate_predictions(
    candidate: &Representation,
    ctx: &EvalContext<'_>,
) -> (Vec<usize>, Vec<usize>) {
    let train_labels = select_labels(ctx.labels, ctx.labeled);
    if ctx.config.use_knn {
        match candidate {
            Representation::Embedding(z) => {
                let train = z.select_rows(ctx.labeled);
                let val = z.select_rows(ctx.validation);
                let test = z.select_rows(ctx.test);
                // Select k on validation, then predict both splits with it.
                let k = select_k(&train, &train_labels, &val, ctx);
                let model = KnnClassifier::fit(&train, &train_labels, ctx.n_classes, k);
                (model.predict(&val), model.predict(&test))
            }
            Representation::Distances(d) => {
                let val_block = block(d, ctx.validation, ctx.labeled);
                let test_block = block(d, ctx.test, ctx.labeled);
                let val_labels = select_labels(ctx.labels, ctx.validation);
                let mut best_k = ctx.config.knn_candidates[0];
                let mut best_acc = f64::NEG_INFINITY;
                for &k in &ctx.config.knn_candidates {
                    let model = KnnClassifier::precomputed(&train_labels, ctx.n_classes, k);
                    let a = accuracy(&model.predict_precomputed(&val_block), &val_labels);
                    if a > best_acc {
                        best_acc = a;
                        best_k = k;
                    }
                }
                let model = KnnClassifier::precomputed(&train_labels, ctx.n_classes, best_k);
                (
                    model.predict_precomputed(&val_block),
                    model.predict_precomputed(&test_block),
                )
            }
        }
    } else {
        let (val_scores, test_scores) = candidate_scores(candidate, ctx);
        (
            RlsClassifier::predict_from_scores(&val_scores),
            RlsClassifier::predict_from_scores(&test_scores),
        )
    }
}

/// RLS decision scores of a single candidate on the validation and test splits.
fn candidate_scores(candidate: &Representation, ctx: &EvalContext<'_>) -> (Matrix, Matrix) {
    let z = match candidate {
        Representation::Embedding(z) => z,
        Representation::Distances(_) => {
            panic!("RLS evaluation requires embeddings, not precomputed distances")
        }
    };
    let train_labels = select_labels(ctx.labels, ctx.labeled);
    let train = z.select_rows(ctx.labeled);
    let model = RlsClassifier::fit(&train, &train_labels, ctx.n_classes, ctx.config.gamma);
    (
        model.decision_scores(&z.select_rows(ctx.validation)),
        model.decision_scores(&z.select_rows(ctx.test)),
    )
}

fn select_k(train: &Matrix, train_labels: &[usize], val: &Matrix, ctx: &EvalContext<'_>) -> usize {
    let val_labels = select_labels(ctx.labels, ctx.validation);
    let mut best_k = ctx.config.knn_candidates[0];
    let mut best_acc = f64::NEG_INFINITY;
    for &k in &ctx.config.knn_candidates {
        let model = KnnClassifier::fit(train, train_labels, ctx.n_classes, k);
        let a = accuracy(&model.predict(val), &val_labels);
        if a > best_acc {
            best_acc = a;
            best_k = k;
        }
    }
    best_k
}

fn select_labels(labels: &[usize], indices: &[usize]) -> Vec<usize> {
    indices.iter().map(|&i| labels[i]).collect()
}

/// Sub-block of a full `N × N` distance matrix with the given rows and columns.
fn block(d: &Matrix, rows: &[usize], cols: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(rows.len(), cols.len());
    for (i, &r) in rows.iter().enumerate() {
        for (j, &c) in cols.iter().enumerate() {
            out[(i, j)] = d[(r, c)];
        }
    }
    out
}

fn majority_vote(votes: &[Vec<usize>], n_classes: usize) -> Vec<usize> {
    if votes.is_empty() {
        return Vec::new();
    }
    let n = votes[0].len();
    (0..n)
        .map(|i| {
            let mut counts = vec![0usize; n_classes];
            for v in votes {
                counts[v[i]] += 1;
            }
            counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, c)| *c)
                .map(|(cls, _)| cls)
                .unwrap_or(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::{nuswide_dataset, secstr_dataset, NusWideConfig, SecStrConfig};

    fn quick_config() -> ExperimentConfig {
        ExperimentConfig {
            dims: vec![2, 4],
            seeds: vec![0],
            labeled: LabeledSpec::Count(40),
            tcca_iterations: 8,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn linear_experiment_produces_curves_and_table() {
        let data = secstr_dataset(&SecStrConfig {
            n_instances: 200,
            seed: 3,
            difficulty: 0.6,
        });
        let methods = [LinearMethod::Bsf, LinearMethod::CcaLs, LinearMethod::Tcca];
        let result = linear_experiment(&data, &methods, &quick_config());
        assert_eq!(result.curves.len(), 3);
        assert_eq!(result.best.len(), 3);
        for curve in &result.curves {
            assert_eq!(curve.dims, vec![2, 4]);
            assert_eq!(curve.mean_accuracy.len(), 2);
            for &a in &curve.mean_accuracy {
                assert!((0.0..=1.0).contains(&a), "{} accuracy {a}", curve.method);
            }
        }
        let table = sweep_to_table(&result);
        assert!(table.contains("TCCA"));
        assert!(table.contains("CCA-LS"));
    }

    #[test]
    fn multiview_reduction_beats_chance_on_planted_data() {
        // Views are trimmed to their first 40 features: the order-3 covariance tensor
        // has d₁·d₂·d₃ entries estimated from N samples, so the full 105-dim views at
        // this small N drown the planted signal in estimation noise (the full-size
        // sweeps live in the experiments harness, which uses the large pools).
        let full = secstr_dataset(&SecStrConfig {
            n_instances: 350,
            seed: 31,
            difficulty: 0.3,
        });
        let rows: Vec<usize> = (0..40).collect();
        let data = datasets::MultiViewDataset::new(
            full.views().iter().map(|v| v.select_rows(&rows)).collect(),
            full.labels().to_vec(),
            full.num_classes(),
        );
        let methods = [LinearMethod::Tcca];
        let config = ExperimentConfig {
            dims: vec![4, 8],
            seeds: vec![0, 1],
            labeled: LabeledSpec::Count(100),
            tcca_iterations: 8,
            ..ExperimentConfig::default()
        };
        let result = linear_experiment(&data, &methods, &config);
        // Two balanced classes => chance is 0.5; the planted shared signal must help.
        assert!(
            result.best[0].mean_accuracy > 0.55,
            "TCCA accuracy {} not above chance",
            result.best[0].mean_accuracy
        );
    }

    #[test]
    fn kernel_experiment_runs_with_knn() {
        let data = nuswide_dataset(&NusWideConfig {
            n_instances: 80,
            seed: 5,
            difficulty: 1.0,
        });
        let config = ExperimentConfig {
            dims: vec![2, 4],
            seeds: vec![0],
            labeled: LabeledSpec::PerClass(2),
            use_knn: true,
            knn_candidates: vec![1, 3],
            tcca_iterations: 6,
            epsilon: 1e-1,
            ..ExperimentConfig::default()
        };
        let methods = [KernelMethod::Bsk, KernelMethod::Avg, KernelMethod::Ktcca];
        let result = kernel_experiment(&data, &methods, &config);
        assert_eq!(result.curves.len(), 3);
        for curve in &result.curves {
            for &a in &curve.mean_accuracy {
                assert!((0.0..=1.0).contains(&a));
            }
        }
    }

    #[test]
    fn flat_methods_have_constant_curves() {
        let data = secstr_dataset(&SecStrConfig {
            n_instances: 150,
            seed: 9,
            difficulty: 0.7,
        });
        let methods = [LinearMethod::Bsf, LinearMethod::Cat];
        let result = linear_experiment(&data, &methods, &quick_config());
        for curve in &result.curves {
            let first = curve.mean_accuracy[0];
            for &a in &curve.mean_accuracy {
                assert!((a - first).abs() < 1e-12, "{} should be flat", curve.method);
            }
        }
    }
}
