//! Benchmark and experiment harness reproducing the TCCA paper's evaluation.
//!
//! The paper's evaluation section contains four tables and eight figures; each has a
//! matching subcommand of the `experiments` binary (`cargo run --release -p tcca-bench
//! --bin experiments -- <id>`) that regenerates the same rows / series:
//!
//! | id | paper artefact |
//! |----|----------------|
//! | `fig3`, `table1` | SecStr accuracy vs subspace dimension / at the best dimension |
//! | `fig4`, `table2` | Ads accuracy vs dimension / at the best dimension |
//! | `fig5`, `table3` | NUS-WIDE accuracy vs dimension for {4,6,8} labels per class |
//! | `fig6`, `table4` | kernel methods on the 500-sample NUS-WIDE subset |
//! | `fig7`–`fig10`   | time and memory cost vs dimension on each dataset |
//! | `ablation-*`     | decomposition-method and regularization ablations (not in paper) |
//!
//! Module map: [`methods`] resolves every compared method by name through the
//! `mvcore` [`mvcore::EstimatorRegistry`] — one [`mvcore::FitSpec`] drives every fit,
//! and candidates, combine rules and memory accounting all come uniformly from the
//! fitted [`mvcore::MultiViewModel`]; [`runner`] implements the paper's evaluation
//! protocol (labeled subsets, 20% validation split, best-dimension selection,
//! mean ± std over seeds); [`memcost`] re-exports the allocation model that now lives
//! in `mvcore`.
//!
//! Criterion micro-benchmarks (`benches/`) cover the tensor decompositions, the
//! whitening step, end-to-end fits and the kernel pipeline.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod memcost;
pub mod methods;
pub mod runner;

pub use memcost::MemoryModel;
pub use methods::{registry, KernelMethod, LinearMethod, MethodOutput};
pub use runner::{
    kernel_experiment, kernel_experiment_named, linear_experiment, linear_experiment_named,
    sweep_to_table, ExperimentConfig, ExperimentResult, MethodCurve,
};
