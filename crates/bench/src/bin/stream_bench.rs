//! Streaming-fit benchmark: refit latency, warm-start sweep counts, and the
//! live-swap blackout window — the numbers behind `BENCH_6.json`.
//!
//! ```text
//! cargo run --release -p tcca-bench --bin stream_bench [-- --samples N] [--out FILE]
//! ```
//!
//! Four measurements, one JSON object:
//!
//! * **streaming vs one-shot (PCA)** — accumulate chunks into exact-moment
//!   sufficient statistics and finalize, against the one-shot fit on the same
//!   sample; asserts the transforms are bit-identical before reporting times.
//! * **partial_fit throughput** — instances folded per second into PCA and
//!   TCCA statistics (the cost a serving tap adds per observed chunk).
//! * **cold vs warm TCCA refit** — CP-ALS sweeps and wall time for a cold fit
//!   against a warm start from the previous model's factors.
//! * **live-swap blackout** — a real [`serve::TrainerService`] refit cycle:
//!   the `trainer/last_refit_micros` (off-event-loop work) and
//!   `trainer/last_swap_micros` (rename + store rescan — the only serving-
//!   visible window) counters after each swap.

use datasets::GaussianRng;
use linalg::Matrix;
use mvcore::{EstimatorRegistry, FitSpec};
use serve::{
    BatchConfig, BatchEngine, ModelStore, TrainerConfig, TrainerService, TransformService,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};
use stream::StreamingRegistry;

/// Deterministic two-latent multi-view sample (no RNG: the fixture must make
/// CP-ALS converge, and these phases are known-good).
fn signal_views(dims: &[usize], n: usize, seed: u64) -> Vec<Matrix> {
    let mix = |k: u64| ((seed.wrapping_mul(0x9e37_79b9).wrapping_add(k) % 997) as f64) / 997.0;
    dims.iter()
        .enumerate()
        .map(|(p, &d)| {
            let mut v = Matrix::zeros(d, n);
            for j in 0..n {
                let s = ((j as f64) * 0.37 + mix(p as u64)).sin();
                let t = ((j as f64) * 0.11 + 1.3).cos();
                for i in 0..d {
                    let noise = (mix((p * d * n + i * n + j) as u64) - 0.5) * 0.3;
                    v[(i, j)] = s * (0.5 + i as f64) + t * ((i as f64) * 1.3).cos() + noise;
                }
            }
            v
        })
        .collect()
}

fn chunked(views: &[Matrix], chunk: usize) -> Vec<Vec<Matrix>> {
    let n = views[0].cols();
    (0..n)
        .step_by(chunk)
        .map(|start| {
            let cols: Vec<usize> = (start..(start + chunk).min(n)).collect();
            views.iter().map(|v| v.select_columns(&cols)).collect()
        })
        .collect()
}

fn min_ns<F: FnMut() -> u128>(samples: usize, mut f: F) -> u128 {
    (0..samples).map(|_| f()).min().unwrap_or(0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut samples = 5usize;
    let mut out_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--samples" => {
                i += 1;
                samples = args[i].parse().expect("--samples takes an integer");
            }
            "--out" => {
                i += 1;
                out_path = Some(args[i].clone());
            }
            other => panic!("unknown argument {other}; use --samples N / --out FILE"),
        }
        i += 1;
    }

    let mut json = String::from("{\n  \"schema\": \"tcca-stream-bench/v1\",\n");

    // ---- streaming vs one-shot (PCA, exact moments) -------------------------
    let dims = [48usize, 40, 32];
    let n = 600;
    let views = signal_views(&dims, n, 3);
    let spec = FitSpec::with_rank(4).epsilon(1e-2).seed(5);
    let registry = EstimatorRegistry::with_builtin();
    let streaming = StreamingRegistry::with_builtin();

    let oneshot_ns = min_ns(samples, || {
        let t = Instant::now();
        std::hint::black_box(registry.fit("PCA", &views, &spec).unwrap());
        t.elapsed().as_nanos()
    });
    let chunks = chunked(&views, 50);
    let streamed_ns = min_ns(samples, || {
        let t = Instant::now();
        let mut stats = streaming.new_stats("PCA", &dims, &spec).unwrap();
        for chunk in &chunks {
            stats.partial_fit(chunk).unwrap();
        }
        std::hint::black_box(stats.finalize().unwrap());
        t.elapsed().as_nanos()
    });
    // The contract the timings ride on: bit-identical embeddings.
    let reference = registry.fit("PCA", &views, &spec).unwrap();
    let mut stats = streaming.new_stats("PCA", &dims, &spec).unwrap();
    for chunk in &chunks {
        stats.partial_fit(chunk).unwrap();
    }
    let finalized = stats.finalize().unwrap();
    let bit_identical = reference.transform(&views).unwrap().as_slice()
        == finalized.transform(&views).unwrap().as_slice();
    assert!(bit_identical, "streaming PCA diverged from one-shot");
    let _ = writeln!(
        json,
        "  \"streaming_vs_oneshot_pca\": {{\"dims\": \"48x40x32\", \"n\": {n}, \
         \"chunk\": 50, \"oneshot_ns\": {oneshot_ns}, \"streamed_ns\": {streamed_ns}, \
         \"transform_bit_identical\": {bit_identical}}},"
    );

    // ---- partial_fit throughput --------------------------------------------
    let mut throughput = Vec::new();
    for method in ["PCA", "TCCA"] {
        let per_chunk_ns = min_ns(samples, || {
            let mut stats = streaming.new_stats(method, &dims, &spec).unwrap();
            let t = Instant::now();
            for chunk in &chunks {
                stats.partial_fit(chunk).unwrap();
            }
            t.elapsed().as_nanos()
        });
        let instances_per_sec = (n as f64) / (per_chunk_ns as f64 / 1e9);
        throughput.push(format!(
            "{{\"method\": \"{method}\", \"accumulate_ns_total\": {per_chunk_ns}, \
             \"instances_per_sec\": {instances_per_sec:.0}}}"
        ));
    }
    let _ = writeln!(
        json,
        "  \"partial_fit_throughput\": [{}],",
        throughput.join(", ")
    );

    // ---- cold vs warm TCCA refit -------------------------------------------
    // Two overlapping Gaussian latents plus noise (the fixture of the stream
    // crate's warm-start tests): not exactly rank-2 after whitening, so cold
    // ALS has to grind down to the tolerance while the warm start begins there.
    let warm_dims = [4usize, 3, 3];
    let warm_views: Vec<Matrix> = {
        let n = 120;
        let mut rng = GaussianRng::new(41);
        let mut views: Vec<Matrix> = warm_dims.iter().map(|&d| Matrix::zeros(d, n)).collect();
        for j in 0..n {
            let s = rng.standard_normal();
            let t = rng.standard_normal();
            for v in views.iter_mut() {
                for i in 0..v.rows() {
                    v[(i, j)] = s * (0.5 + i as f64)
                        + t * ((i as f64 * 1.3).cos())
                        + 0.6 * rng.standard_normal();
                }
            }
        }
        views
    };
    let warm_spec = FitSpec::with_rank(2)
        .epsilon(1e-2)
        .seed(17)
        .tolerance(1e-10);
    let mut tcca_stats = streaming.new_stats("TCCA", &warm_dims, &warm_spec).unwrap();
    for chunk in chunked(&warm_views, 30) {
        tcca_stats.partial_fit(&chunk).unwrap();
    }
    let (cold_ns, (cold_model, cold_sweeps)) = {
        let t = Instant::now();
        let r = streaming.refit("TCCA", None, tcca_stats.as_ref()).unwrap();
        (t.elapsed().as_nanos(), r)
    };
    let (warm_ns, warm_sweeps) = {
        let t = Instant::now();
        let (_, sweeps) = streaming
            .refit("TCCA", Some(cold_model.as_ref()), tcca_stats.as_ref())
            .unwrap();
        (t.elapsed().as_nanos(), sweeps)
    };
    let _ = writeln!(
        json,
        "  \"tcca_cold_vs_warm\": {{\"dims\": \"4x3x3\", \"n\": 120, \"rank\": 2, \
         \"cold_ns\": {cold_ns}, \"cold_sweeps\": {cold_sweeps}, \
         \"warm_ns\": {warm_ns}, \"warm_sweeps\": {warm_sweeps}}},"
    );

    // ---- live-swap blackout through a real trainer -------------------------
    let dir = std::env::temp_dir().join(format!("tcca-stream-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let swap_views = signal_views(&[16usize, 12, 10], 80, 9);
    let swap_spec = FitSpec::with_rank(2).epsilon(1e-2).seed(5);
    let seed_model = registry.fit("PCA", &swap_views, &swap_spec).unwrap();
    ModelStore::new(EstimatorRegistry::with_builtin())
        .save(&dir, "live", seed_model.as_ref())
        .unwrap();
    let store = Arc::new(ModelStore::open(EstimatorRegistry::with_builtin(), &dir).unwrap());
    let engine = Arc::new(BatchEngine::start(
        store,
        BatchConfig {
            max_batch: 32,
            max_wait: Duration::from_millis(1),
            ..BatchConfig::default()
        },
    ));
    let svc = TrainerService::start(engine, &dir, TrainerConfig::watching("live", swap_spec));
    let counter = |name: &str| {
        TransformService::stats(&svc)
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .unwrap()
    };
    let (tx, rx) = std::sync::mpsc::sync_channel(1);
    svc.submit_transform(
        "live",
        Arc::new(swap_views.clone()),
        None,
        Box::new(move |r| drop(tx.send(r.map(|_| ())))),
    );
    rx.recv().unwrap().unwrap();
    let mut refit_micros = Vec::new();
    let mut swap_micros = Vec::new();
    for _ in 0..samples.max(3) {
        svc.refit_now().unwrap();
        refit_micros.push(counter("trainer/last_refit_micros"));
        swap_micros.push(counter("trainer/last_swap_micros"));
    }
    let generations = counter("trainer/model_version");
    let _ = writeln!(
        json,
        "  \"live_swap\": {{\"dims\": \"16x12x10\", \"reservoir_instances\": 80, \
         \"generations\": {generations}, \
         \"refit_micros_min\": {}, \"swap_blackout_micros_min\": {}, \
         \"swap_blackout_micros_max\": {}}}",
        refit_micros.iter().min().unwrap(),
        swap_micros.iter().min().unwrap(),
        swap_micros.iter().max().unwrap()
    );
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);

    json.push_str("}\n");
    match out_path {
        Some(path) => std::fs::write(&path, &json).expect("write --out file"),
        None => print!("{json}"),
    }
}
