//! Machine-readable kernel timings for the perf trajectory.
//!
//! ```text
//! cargo run --release -p tcca-bench --bin kernel_bench [-- --samples N] [--out FILE]
//! ```
//!
//! Times the hot kernels of the TCCA pipeline — MTTKRP, the dense matrix products,
//! the covariance / whitened-covariance tensor build, and the three decomposition
//! solvers — and emits one JSON object per run:
//!
//! ```json
//! {"schema": "tcca-kernel-bench/v1", "threads": 1, "kernels": [
//!    {"name": "mttkrp/32x32x32/r8", "mean_ns": 123, "min_ns": 100, "samples": 10}, …
//! ]}
//! ```
//!
//! The JSON goes to stdout (or `--out FILE`) so CI and `BENCH_*.json` snapshots can
//! diff kernel timings across PRs without scraping human-oriented bench output.

use datasets::GaussianRng;
use linalg::Matrix;
use std::fmt::Write as _;
use std::time::Instant;
use tcca::{covariance_tensor, whitened_covariance_tensor};
use tensor::{CpAls, DenseTensor, Hopm, RankRDecomposition, TensorPowerMethod};

struct Record {
    name: String,
    mean_ns: u128,
    min_ns: u128,
    samples: usize,
}

fn time<F: FnMut()>(name: &str, samples: usize, mut f: F) -> Record {
    // One warm-up run keeps first-touch page faults out of the measurement.
    f();
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_nanos());
    }
    Record {
        name: name.to_string(),
        mean_ns: times.iter().sum::<u128>() / times.len().max(1) as u128,
        min_ns: times.iter().min().copied().unwrap_or(0),
        samples,
    }
}

fn random_tensor(shape: &[usize], seed: u64) -> DenseTensor {
    let mut rng = GaussianRng::new(seed);
    let len: usize = shape.iter().product();
    let data: Vec<f64> = (0..len).map(|_| rng.standard_normal()).collect();
    DenseTensor::from_vec(shape, data).expect("shape matches data")
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = GaussianRng::new(seed);
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.standard_normal()).collect();
    Matrix::from_vec(rows, cols, data).expect("shape matches data")
}

fn random_views(dims: &[usize], n: usize, seed: u64) -> Vec<Matrix> {
    dims.iter()
        .enumerate()
        .map(|(p, &d)| random_matrix(d, n, seed + p as u64))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut samples = 10usize;
    let mut out_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--samples" | "--out" => {
                i += 1;
                let value = args
                    .get(i)
                    .unwrap_or_else(|| panic!("{flag} requires a value"));
                if flag == "--samples" {
                    samples = value.parse().expect("--samples takes an integer");
                } else {
                    out_path = Some(value.clone());
                }
            }
            other => panic!("unknown argument {other}; use --samples N / --out FILE"),
        }
        i += 1;
    }

    let mut records = Vec::new();

    // MTTKRP across modes and ranks (the CP-ALS inner kernel).
    for dim in [16usize, 32] {
        let t = random_tensor(&[dim, dim, dim], 1);
        for rank in [1usize, 8] {
            let factors: Vec<Matrix> = (0..3)
                .map(|p| random_matrix(dim, rank, 100 + p as u64))
                .collect();
            let refs: Vec<&Matrix> = factors.iter().collect();
            records.push(time(
                &format!("mttkrp/{dim}x{dim}x{dim}/r{rank}"),
                samples,
                || {
                    for mode in 0..3 {
                        std::hint::black_box(t.mttkrp(mode, &refs).unwrap());
                    }
                },
            ));
        }
    }

    // Dense products at covariance-build-like sizes.
    let a = random_matrix(200, 400, 2);
    let b = random_matrix(400, 200, 3);
    records.push(time("matmul/200x400x200", samples, || {
        std::hint::black_box(a.matmul(&b).unwrap());
    }));
    records.push(time("t_matmul/400x200x200", samples, || {
        std::hint::black_box(a.t_matmul(&a).unwrap());
    }));
    records.push(time("transpose/200x400", samples, || {
        std::hint::black_box(a.transpose());
    }));

    // Self-products (the covariance / whitening symmetric rank-k path).
    records.push(time("gram/200x400", samples, || {
        std::hint::black_box(a.gram());
    }));
    records.push(time("gram_t/200x400", samples, || {
        std::hint::black_box(a.gram_t());
    }));
    let tall = random_matrix(2000, 100, 6);
    records.push(time("gram_t/2000x100", samples, || {
        std::hint::black_box(tall.gram_t());
    }));

    // Covariance / whitened-covariance tensor build (3 views, paper-scale dims).
    let views = random_views(&[40, 40, 30], 300, 4);
    records.push(time("covariance_tensor/40x40x30/n300", samples, || {
        std::hint::black_box(covariance_tensor(&views).unwrap());
    }));
    let centered: Vec<Matrix> = views.iter().map(|v| linalg::center_rows(v).0).collect();
    let whiteners: Vec<Matrix> = centered
        .iter()
        .map(|x| {
            let mut c = linalg::covariance(x);
            c.add_diagonal(1e-2);
            c.inverse_sqrt_spd(1e-12).unwrap()
        })
        .collect();
    records.push(time(
        "whitened_covariance_tensor/40x40x30/n300",
        samples,
        || {
            std::hint::black_box(whitened_covariance_tensor(&centered, &whiteners).unwrap());
        },
    ));

    // Decomposition solvers end to end.
    let t = random_tensor(&[24, 24, 24], 5);
    records.push(time("cp_als/24x24x24/r8", samples, || {
        std::hint::black_box(CpAls::default().decompose(&t, 8).unwrap());
    }));
    records.push(time("hopm/24x24x24/r1", samples, || {
        std::hint::black_box(Hopm::default().decompose(&t, 1).unwrap());
    }));
    records.push(time("power/24x24x24/r1", samples, || {
        std::hint::black_box(TensorPowerMethod::default().decompose(&t, 1).unwrap());
    }));

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"tcca-kernel-bench/v1\",\n");
    let _ = writeln!(json, "  \"threads\": {},", parallel::max_threads());
    json.push_str("  \"kernels\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"mean_ns\": {}, \"min_ns\": {}, \"samples\": {}}}",
            r.name, r.mean_ns, r.min_ns, r.samples
        );
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    match out_path {
        Some(path) => std::fs::write(&path, &json).expect("write --out file"),
        None => print!("{json}"),
    }
}
