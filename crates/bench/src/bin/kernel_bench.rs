//! Machine-readable kernel timings *and determinism checksums* for the perf
//! trajectory and the CI `perf-determinism` harness.
//!
//! ```text
//! cargo run --release -p tcca-bench --bin kernel_bench [-- --samples N] [--out FILE]
//!     [--mode strict|fma] [--precision f64|f32] [--whiten]
//! cargo run --release -p tcca-bench --bin kernel_bench -- --checksums [--mode …] [--out FILE]
//! ```
//!
//! The default mode times the hot kernels of the TCCA pipeline — MTTKRP, the dense
//! matrix products (including a tile-sweep straddling the blocked GEMM's
//! `MR`/`KC`/`MC` boundaries, the skinny serving-projection shapes, and a large
//! square product sized for peak-throughput comparison), the covariance /
//! whitened-covariance tensor build, and the three decomposition solvers — and
//! emits one JSON object per run. GEMM-shaped entries carry a `gflops` field
//! computed from the fastest sample, so mode/precision speedups read directly:
//!
//! ```json
//! {"schema": "tcca-kernel-bench/v2", "threads": 1, "mode": "strict", "kernels": [
//!    {"name": "matmul/512x512x512", "mean_ns": 123, "min_ns": 100, "samples": 10,
//!     "gflops": 12.3}, …
//! ]}
//! ```
//!
//! `--mode fma` resolves the process-wide kernel mode to the FMA microkernel
//! before any product runs (`TCCA_KERNEL_MODE` in the environment still wins —
//! it is the operator override). `--precision f32` additionally times the
//! serving projection through the `f32` fast path. `--whiten` appends the
//! whitening-fit comparison — exact `(C + εI)^{-1/2}` at `d = 512` against the
//! randomized range-finder at `d ∈ {512, 8192, 100000}` — which takes a few extra
//! seconds, so it is opt-in. The JSON records the *resolved* mode, so a host
//! without AVX2+FMA shows `"strict"`.
//!
//! `--checksums` instead runs every kernel **once** on fixed seeded inputs at sizes
//! large enough to engage multithreading, and emits an FNV-1a hash of each output's
//! exact f64 bit patterns — deliberately *excluding* the thread count, timings or
//! anything else machine-dependent from the JSON:
//!
//! ```json
//! {"schema": "tcca-kernel-checksums/v2", "mode": "strict", "kernels": [
//!    {"name": "matmul/131x163x127", "checksum": "a1b2c3…"}, …
//! ]}
//! ```
//!
//! CI runs the checksum mode under `TCCA_NUM_THREADS=1` and `=4` **per kernel
//! mode** and diffs the two files byte for byte: any divergence means a kernel's
//! accumulation schedule leaked a thread-count dependence. Each mode is also
//! diffed against its own committed baseline (`ci/kernel-checksums-strict.json`,
//! `ci/kernel-checksums-fma.json`) — never against the other mode's: FMA
//! contracts each multiply-add to one rounding, so its bits legitimately differ
//! from strict while remaining deterministic within the mode. Timings are logged
//! as artifacts, never asserted — shared runners lie about speed, but bits are
//! bits.

use datasets::GaussianRng;
use linalg::{gemm, ColsView, Matrix, MatrixF32};
use std::fmt::Write as _;
use std::time::Instant;
use tcca::{covariance_tensor, whitened_covariance_tensor};
use tensor::{CpAls, DenseTensor, Hopm, RankRDecomposition, TensorPowerMethod};

struct Record {
    name: String,
    mean_ns: u128,
    min_ns: u128,
    samples: usize,
    /// Floating-point operations one invocation performs (`2·m·k·n` for a GEMM);
    /// 0 for kernels without a clean flop count. Non-zero counts turn into a
    /// `gflops` field computed from the *fastest* sample — the least
    /// noise-contaminated estimate a shared machine gives.
    flops: u128,
}

fn time<F: FnMut()>(name: &str, samples: usize, f: F) -> Record {
    time_flops(name, samples, 0, f)
}

fn time_flops<F: FnMut()>(name: &str, samples: usize, flops: u128, mut f: F) -> Record {
    // One warm-up run keeps first-touch page faults out of the measurement.
    f();
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_nanos());
    }
    Record {
        name: name.to_string(),
        mean_ns: times.iter().sum::<u128>() / times.len().max(1) as u128,
        min_ns: times.iter().min().copied().unwrap_or(0),
        samples,
        flops,
    }
}

fn random_tensor(shape: &[usize], seed: u64) -> DenseTensor {
    let mut rng = GaussianRng::new(seed);
    let len: usize = shape.iter().product();
    let data: Vec<f64> = (0..len).map(|_| rng.standard_normal()).collect();
    DenseTensor::from_vec(shape, data).expect("shape matches data")
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = GaussianRng::new(seed);
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.standard_normal()).collect();
    Matrix::from_vec(rows, cols, data).expect("shape matches data")
}

fn random_views(dims: &[usize], n: usize, seed: u64) -> Vec<Matrix> {
    dims.iter()
        .enumerate()
        .map(|(p, &d)| random_matrix(d, n, seed + p as u64))
        .collect()
}

/// FNV-1a over the exact bit patterns of a slice of f64 values.
fn checksum(data: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in data {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// The determinism suite: every blocked kernel once, on seeded inputs at sizes that
/// straddle the GEMM tile boundaries *and* clear the multithreading threshold (so a
/// `TCCA_NUM_THREADS=4` run really does partition the work differently from `=1`).
/// Returns `(name, checksum-of-output-bits)` pairs in a fixed order.
fn checksum_suite() -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = Vec::new();
    let mut push = |name: String, data: &[f64]| out.push((name, checksum(data)));

    // General products at mutually-prime sizes straddling MR/NR/KC multiples.
    let (m, k, n) = (2 * gemm::MC + 3, gemm::KC + 7, 16 * gemm::NR - 1);
    let a = random_matrix(m, k, 11);
    let b = random_matrix(k, n, 12);
    push(
        format!("matmul/{m}x{k}x{n}"),
        a.matmul(&b).unwrap().as_slice(),
    );
    let at = random_matrix(k, m, 13);
    push(
        format!("t_matmul/{m}x{k}x{n}"),
        at.t_matmul(&b).unwrap().as_slice(),
    );
    let bt = random_matrix(n, k, 14);
    push(
        format!("matmul_t/{m}x{k}x{n}"),
        a.matmul_t(&bt).unwrap().as_slice(),
    );
    let mut acc = Matrix::filled(m, n, 0.25);
    at.t_matmul_acc(&b, &mut acc).unwrap();
    push(format!("t_matmul_acc/{m}x{k}x{n}"), acc.as_slice());

    // The skinny serving-projection dispatch (`n ≤ NR/2` instantiates the
    // narrow-tile kernel and the direct-A strided path): its bits must match
    // the wide instantiation, so it gets its own checksum entry.
    let skinny = random_matrix(k, gemm::NR / 2, 31);
    push(
        format!("t_matmul_skinny/{m}x{k}x{}", gemm::NR / 2),
        at.t_matmul(&skinny).unwrap().as_slice(),
    );

    // Symmetric rank-k (upper triangle + mirror) at a non-multiple size.
    let s = random_matrix(gemm::KC / 2 + 5, 2 * gemm::MC + 1, 15);
    push(
        format!("syrk/{}x{}", s.rows(), s.cols()),
        s.syrk().as_slice(),
    );
    push(
        format!("syrk_t/{}x{}", s.rows(), s.cols()),
        s.syrk_t().as_slice(),
    );

    // The zero-copy serving projection: column blocks of uneven widths, with a
    // centering shift applied during packing.
    let wide = random_matrix(131, 1024, 16);
    let parts: Vec<Matrix> = {
        let widths = [3usize, 64, 1, 421, 535];
        let mut start = 0;
        widths
            .iter()
            .map(|&w| {
                let cols: Vec<usize> = (start..start + w).collect();
                start += w;
                wide.select_columns(&cols)
            })
            .collect()
    };
    let cols_view = ColsView::from_matrices(parts.iter()).unwrap();
    let proj = random_matrix(131, 8, 17);
    let shift: Vec<f64> = (0..131).map(|i| (i as f64) * 0.01 - 0.5).collect();
    push(
        "cols_shifted_t_matmul/131x1024x8".to_string(),
        cols_view
            .shifted_t_matmul(Some(&shift), &proj)
            .unwrap()
            .as_slice(),
    );

    // Fused tensor kernels.
    let t = random_tensor(&[32, 32, 32], 18);
    let factors: Vec<Matrix> = (0..3)
        .map(|p| random_matrix(32, 8, 19 + p as u64))
        .collect();
    let refs: Vec<&Matrix> = factors.iter().collect();
    for mode in 0..3 {
        push(
            format!("mttkrp/32x32x32/r8/mode{mode}"),
            t.mttkrp(mode, &refs).unwrap().as_slice(),
        );
    }
    let u = random_matrix(16, 32, 22);
    push(
        "mode_product/32x32x32/mode1".to_string(),
        t.mode_product(1, &u).unwrap().as_slice(),
    );

    // Covariance tensor build (chunked t_matmul_acc underneath).
    let views = random_views(&[24, 24, 20], 300, 23);
    push(
        "covariance_tensor/24x24x20/n300".to_string(),
        covariance_tensor(&views).unwrap().as_slice(),
    );

    // Randomized whitening end to end: sequential Gaussian sketch, blocked sketch
    // GEMMs, subspace iteration, thin QR and the small eigensolve. The CI harness
    // diffs this entry across `TCCA_NUM_THREADS=1` and `=4`, pinning the seeded
    // range-finder (and therefore every randomized-whitening fit) to one bit
    // pattern regardless of thread count.
    let view = random_matrix(600, 512, 24);
    let (centered, _) = linalg::center_rows(&view);
    let eig = linalg::randomized_covariance_eig(&centered, 32, 8, 2, 77).unwrap();
    let mut combined = eig.eigenvalues.clone();
    combined.extend_from_slice(eig.eigenvectors.as_slice());
    push("randomized_whiten/600x512/k32".to_string(), &combined);

    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut samples = 10usize;
    let mut out_path: Option<String> = None;
    let mut checksums = false;
    let mut mode = gemm::KernelMode::Strict;
    let mut f32_path = false;
    let mut whiten = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--samples" | "--out" | "--mode" | "--precision" => {
                i += 1;
                let value = args
                    .get(i)
                    .unwrap_or_else(|| panic!("{flag} requires a value"));
                match flag {
                    "--samples" => samples = value.parse().expect("--samples takes an integer"),
                    "--out" => out_path = Some(value.clone()),
                    "--mode" => {
                        mode = match value.as_str() {
                            "strict" => gemm::KernelMode::Strict,
                            "fma" => gemm::KernelMode::Fma,
                            other => panic!("--mode takes strict or fma, got {other}"),
                        }
                    }
                    "--precision" => {
                        f32_path = match value.as_str() {
                            "f64" => false,
                            "f32" => true,
                            other => panic!("--precision takes f64 or f32, got {other}"),
                        }
                    }
                    _ => unreachable!(),
                }
            }
            "--checksums" => checksums = true,
            "--whiten" => whiten = true,
            other => panic!(
                "unknown argument {other}; use --samples N / --out FILE / --checksums \
                 / --whiten / --mode strict|fma / --precision f64|f32"
            ),
        }
        i += 1;
    }

    // Resolve the process-wide kernel mode before the first product runs; the
    // resolution is permanent, and the JSON records what actually resolved
    // (`TCCA_KERNEL_MODE` overrides the flag; a host without AVX2+FMA clamps
    // `fma` back to `strict`).
    let mode = gemm::set_kernel_mode(mode);
    let mode_name = match mode {
        gemm::KernelMode::Strict => "strict",
        gemm::KernelMode::Fma => "fma",
    };

    if checksums {
        let mut json = String::new();
        json.push_str("{\n  \"schema\": \"tcca-kernel-checksums/v2\",\n");
        let _ = writeln!(json, "  \"mode\": \"{mode_name}\",");
        json.push_str("  \"kernels\": [\n");
        let records = checksum_suite();
        for (i, (name, sum)) in records.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"name\": \"{name}\", \"checksum\": \"{sum:016x}\"}}"
            );
            json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
        }
        json.push_str("  ]\n}\n");
        match out_path {
            Some(path) => std::fs::write(&path, &json).expect("write --out file"),
            None => print!("{json}"),
        }
        return;
    }

    let mut records = Vec::new();

    // MTTKRP across modes and ranks (the CP-ALS inner kernel).
    for dim in [16usize, 32] {
        let t = random_tensor(&[dim, dim, dim], 1);
        for rank in [1usize, 8] {
            let factors: Vec<Matrix> = (0..3)
                .map(|p| random_matrix(dim, rank, 100 + p as u64))
                .collect();
            let refs: Vec<&Matrix> = factors.iter().collect();
            records.push(time(
                &format!("mttkrp/{dim}x{dim}x{dim}/r{rank}"),
                samples,
                || {
                    for mode in 0..3 {
                        std::hint::black_box(t.mttkrp(mode, &refs).unwrap());
                    }
                },
            ));
        }
    }

    // Dense products at covariance-build-like sizes.
    let a = random_matrix(200, 400, 2);
    let b = random_matrix(400, 200, 3);
    records.push(time_flops(
        "matmul/200x400x200",
        samples,
        2 * 200 * 400 * 200,
        || {
            std::hint::black_box(a.matmul(&b).unwrap());
        },
    ));
    records.push(time_flops(
        "t_matmul/400x200x200",
        samples,
        2 * 400 * 200 * 400,
        || {
            std::hint::black_box(a.t_matmul(&a).unwrap());
        },
    ));
    records.push(time("transpose/200x400", samples, || {
        std::hint::black_box(a.transpose());
    }));

    // A large square product sized for peak throughput: this is the entry the
    // FMA-vs-strict comparison reads, far enough from the tile edges that the
    // microkernel dominates over packing.
    let sq_a = random_matrix(512, 512, 26);
    let sq_b = random_matrix(512, 512, 27);
    records.push(time_flops(
        "matmul/512x512x512",
        samples,
        2 * 512 * 512 * 512,
        || {
            std::hint::black_box(sq_a.matmul(&sq_b).unwrap());
        },
    ));

    // Tile sweep: square-ish products one element below, at, and above the blocked
    // engine's MC/KC boundaries, so a packing or edge-tile regression shows up as a
    // step between adjacent entries rather than hiding in round sizes.
    for delta in [-1i64, 0, 1] {
        let m = (2 * gemm::MC as i64 + delta) as usize;
        let k = (gemm::KC as i64 + delta) as usize;
        let n = (16 * gemm::NR as i64 + delta) as usize;
        let ta = random_matrix(m, k, 40 + delta as u64);
        let tb = random_matrix(k, n, 43 + delta as u64);
        records.push(time_flops(
            &format!("matmul_tile/{m}x{k}x{n}"),
            samples,
            2 * (m * k * n) as u128,
            || {
                std::hint::black_box(ta.matmul(&tb).unwrap());
            },
        ));
    }
    // The serving-projection shape: many instances, few features, skinny output.
    // `n = 4 ≤ NR/2` takes the narrow-tile kernel plus the direct-A strided path.
    let inst = random_matrix(64, 4096, 7);
    let proj = random_matrix(64, 4, 8);
    records.push(time_flops(
        "t_matmul_proj/4096x64x4",
        samples,
        2 * 4096 * 64 * 4,
        || {
            std::hint::black_box(inst.t_matmul(&proj).unwrap());
        },
    ));
    if f32_path {
        // The same projection through the f32 serving fast path: a ColsView over
        // the instance block, centered during packing, against an f32 shadow of
        // the projection — exactly what `Precision::F32` requests execute. Its
        // f64 twin runs the identical ColsView+shift path so the pair isolates
        // the precision delta from the direct-A dispatch above.
        let cols = ColsView::from_matrices(std::iter::once(&inst)).unwrap();
        let proj32 = MatrixF32::from_f64(&proj);
        let shift64: Vec<f64> = (0..64).map(|i| (i as f64) * 0.01 - 0.25).collect();
        let shift32: Vec<f32> = shift64.iter().map(|&x| x as f32).collect();
        records.push(time_flops(
            "cols_proj_f64/4096x64x4",
            samples,
            2 * 4096 * 64 * 4,
            || {
                std::hint::black_box(cols.shifted_t_matmul(Some(&shift64), &proj).unwrap());
            },
        ));
        records.push(time_flops(
            "cols_proj_f32/4096x64x4",
            samples,
            2 * 4096 * 64 * 4,
            || {
                std::hint::black_box(cols.shifted_t_matmul_f32(Some(&shift32), &proj32).unwrap());
            },
        ));
    }

    // Self-products (the covariance / whitening symmetric rank-k path).
    records.push(time("gram/200x400", samples, || {
        std::hint::black_box(a.gram());
    }));
    records.push(time("gram_t/200x400", samples, || {
        std::hint::black_box(a.gram_t());
    }));
    let tall = random_matrix(2000, 100, 6);
    records.push(time("gram_t/2000x100", samples, || {
        std::hint::black_box(tall.gram_t());
    }));

    // Covariance / whitened-covariance tensor build (3 views, paper-scale dims).
    let views = random_views(&[40, 40, 30], 300, 4);
    records.push(time("covariance_tensor/40x40x30/n300", samples, || {
        std::hint::black_box(covariance_tensor(&views).unwrap());
    }));
    let centered: Vec<Matrix> = views.iter().map(|v| linalg::center_rows(v).0).collect();
    let whiteners: Vec<Matrix> = centered
        .iter()
        .map(|x| {
            let mut c = linalg::covariance(x);
            c.add_diagonal(1e-2);
            c.inverse_sqrt_spd(1e-12).unwrap()
        })
        .collect();
    records.push(time(
        "whitened_covariance_tensor/40x40x30/n300",
        samples,
        || {
            std::hint::black_box(whitened_covariance_tensor(&centered, &whiteners).unwrap());
        },
    ));

    if whiten {
        // Whitening-fit comparison: the dense exact path ((C + εI)^{-1/2} via a
        // d×d Jacobi eigensolve) against the randomized range-finder at growing
        // view dimensions. Exact is O(d³) and only feasible at d = 512; the
        // randomized path never materializes the d×d covariance, so it scales to
        // the d ≈ 100k views the stage API targets. Sample counts shrink with d
        // to keep the largest entry in single-digit seconds.
        let n = 256;
        let (rank, oversample, power_iters) = (100usize, 8usize, 2usize);
        let exact_view = random_matrix(512, n, 50);
        let (exact_centered, _) = linalg::center_rows(&exact_view);
        records.push(time("whiten_exact/d512/n256", samples.min(3), || {
            let mut c = linalg::covariance(&exact_centered);
            c.add_diagonal(1e-2);
            std::hint::black_box(c.inverse_sqrt_spd(1e-12).unwrap());
        }));
        for d in [512usize, 8192, 100_000] {
            let view = random_matrix(d, n, 51 + d as u64);
            let (centered, _) = linalg::center_rows(&view);
            let s = if d > 4096 { samples.min(2) } else { samples };
            records.push(time(
                &format!("whiten_randomized/d{d}/n{n}/k{rank}"),
                s,
                || {
                    std::hint::black_box(
                        linalg::randomized_covariance_eig(
                            &centered,
                            rank.min(d).min(n),
                            oversample,
                            power_iters,
                            7,
                        )
                        .unwrap(),
                    );
                },
            ));
        }
    }

    // Decomposition solvers end to end.
    let t = random_tensor(&[24, 24, 24], 5);
    records.push(time("cp_als/24x24x24/r8", samples, || {
        std::hint::black_box(CpAls::default().decompose(&t, 8).unwrap());
    }));
    records.push(time("hopm/24x24x24/r1", samples, || {
        std::hint::black_box(Hopm::default().decompose(&t, 1).unwrap());
    }));
    records.push(time("power/24x24x24/r1", samples, || {
        std::hint::black_box(TensorPowerMethod::default().decompose(&t, 1).unwrap());
    }));

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"tcca-kernel-bench/v2\",\n");
    let _ = writeln!(json, "  \"threads\": {},", parallel::max_threads());
    let _ = writeln!(json, "  \"mode\": \"{mode_name}\",");
    json.push_str("  \"kernels\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"mean_ns\": {}, \"min_ns\": {}, \"samples\": {}",
            r.name, r.mean_ns, r.min_ns, r.samples
        );
        if r.flops > 0 && r.min_ns > 0 {
            let gflops = r.flops as f64 / r.min_ns as f64;
            let _ = write!(json, ", \"gflops\": {gflops:.3}");
        }
        json.push('}');
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    match out_path {
        Some(path) => std::fs::write(&path, &json).expect("write --out file"),
        None => print!("{json}"),
    }
}
