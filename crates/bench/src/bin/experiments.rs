//! Regenerate the TCCA paper's tables and figures.
//!
//! ```text
//! cargo run --release -p tcca-bench --bin experiments -- <id> [--seeds N] [--scale S] [--full]
//!
//!   id ∈ {fig3, fig4, fig5, fig6, fig7, fig8, fig9, fig10,
//!         table1, table2, table3, table4,
//!         ablation-decomposition, ablation-epsilon, ablation-unlabeled, all}
//! ```
//!
//! Every subcommand prints the same rows (tables) or series (figures) the paper reports:
//! method × accuracy for the tables, method × dimension → accuracy (or seconds / MB)
//! for the figures. Default sizes are scaled down so the whole suite runs on a laptop;
//! `--full` selects larger pools (closer to the paper's) and `--seeds` controls how many
//! random labeled draws are averaged (the paper uses five). See EXPERIMENTS.md for the
//! mapping and the recorded outputs.

use bench::methods::{KernelMethod, LinearMethod};
use bench::runner::{
    kernel_experiment, linear_experiment, sweep_to_table, ExperimentConfig, ExperimentResult,
    LabeledSpec,
};
use datasets::{
    ads_dataset, nuswide_dataset, secstr_dataset, AdsConfig, MultiViewDataset, NusWideConfig,
    SecStrConfig,
};
use std::env;

#[derive(Debug, Clone)]
struct Cli {
    command: String,
    seeds: usize,
    scale: f64,
    full: bool,
}

fn parse_cli() -> Cli {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut cli = Cli {
        command: args.first().cloned().unwrap_or_else(|| "help".into()),
        seeds: 2,
        scale: 1.0,
        full: false,
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                cli.seeds = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(2);
                i += 2;
            }
            "--scale" => {
                cli.scale = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(1.0);
                i += 2;
            }
            "--full" => {
                cli.full = true;
                i += 1;
            }
            _ => i += 1,
        }
    }
    cli
}

fn seeds(n: usize) -> Vec<u64> {
    (0..n as u64).collect()
}

/// Down-scale a list of view dimensions (used to keep the Ads covariance tensor small
/// enough for repeated fits; the paper's full 588×495×472 tensor needs ~1 GB).
fn scaled(dims: &[usize], scale: f64) -> Vec<usize> {
    dims.iter()
        .map(|&d| ((d as f64 * scale).round() as usize).max(8))
        .collect()
}

fn secstr(n: usize, seed: u64) -> MultiViewDataset {
    secstr_dataset(&SecStrConfig {
        n_instances: n,
        seed,
        difficulty: 0.8,
    })
}

/// Ads-like dataset with its views reduced to `scale ×` the paper's dimensionalities.
fn ads(n: usize, seed: u64, scale: f64) -> MultiViewDataset {
    let data = ads_dataset(&AdsConfig {
        n_instances: n,
        seed,
        difficulty: 0.55,
    });
    if (scale - 1.0).abs() < 1e-12 {
        return data;
    }
    let dims = scaled(&[588, 495, 472], scale);
    let views: Vec<linalg::Matrix> = data
        .views()
        .iter()
        .zip(dims.iter())
        .map(|(v, &d)| v.select_rows(&(0..d).collect::<Vec<_>>()))
        .collect();
    MultiViewDataset::new(views, data.labels().to_vec(), data.num_classes())
}

/// NUS-WIDE-like dataset, optionally with reduced view dimensionalities.
fn nuswide(n: usize, seed: u64, scale: f64) -> MultiViewDataset {
    let data = nuswide_dataset(&NusWideConfig {
        n_instances: n,
        seed,
        difficulty: 1.35,
    });
    if (scale - 1.0).abs() < 1e-12 {
        return data;
    }
    let dims = scaled(&[500, 144, 128], scale);
    let views: Vec<linalg::Matrix> = data
        .views()
        .iter()
        .zip(dims.iter())
        .map(|(v, &d)| v.select_rows(&(0..d).collect::<Vec<_>>()))
        .collect();
    MultiViewDataset::new(views, data.labels().to_vec(), data.num_classes())
}

fn print_accuracy_curves(title: &str, result: &ExperimentResult) {
    println!("\n=== {title} ===");
    print!("{:<12}", "dim");
    for curve in &result.curves {
        print!(" {:>12}", curve.method);
    }
    println!();
    let dims = &result.curves[0].dims;
    for (i, d) in dims.iter().enumerate() {
        print!("{:<12}", d);
        for curve in &result.curves {
            print!(" {:>12.4}", curve.mean_accuracy[i]);
        }
        println!();
    }
}

fn print_cost_curves(title: &str, result: &ExperimentResult) {
    println!("\n=== {title} (time, seconds) ===");
    print!("{:<12}", "dim");
    for curve in &result.curves {
        print!(" {:>12}", curve.method);
    }
    println!();
    let dims = &result.curves[0].dims;
    for (i, d) in dims.iter().enumerate() {
        print!("{:<12}", d);
        for curve in &result.curves {
            print!(" {:>12.4}", curve.mean_seconds[i]);
        }
        println!();
    }
    println!("\n=== {title} (memory model, MB) ===");
    print!("{:<12}", "dim");
    for curve in &result.curves {
        print!(" {:>12}", curve.method);
    }
    println!();
    for (i, d) in dims.iter().enumerate() {
        print!("{:<12}", d);
        for curve in &result.curves {
            print!(" {:>12.2}", curve.mean_megabytes[i]);
        }
        println!();
    }
}

fn print_table(title: &str, result: &ExperimentResult) {
    println!("\n=== {title} ===");
    print!("{}", sweep_to_table(result));
}

/// SecStr experiment (Fig. 3 / Table 1 / Fig. 7). Returns one result per unlabeled-pool
/// size (the paper's 84K and 1.3M panels, scaled down).
fn run_secstr(cli: &Cli) -> Vec<(String, ExperimentResult)> {
    let pools = if cli.full {
        vec![3000, 8000]
    } else {
        vec![1000, 3000]
    };
    let config = ExperimentConfig {
        dims: vec![5, 10, 20, 40, 80],
        epsilon: 1e-2,
        seeds: seeds(cli.seeds),
        labeled: LabeledSpec::Count(100),
        gamma: 1e-2,
        use_knn: false,
        tcca_iterations: 15,
        ..ExperimentConfig::default()
    };
    let methods = LinearMethod::paper_set();
    pools
        .into_iter()
        .map(|n| {
            let data = secstr(n, 17);
            let label = format!("SecStr, {n} unlabeled instances");
            (label, linear_experiment(&data, &methods, &config))
        })
        .collect()
}

/// Ads experiment (Fig. 4 / Table 2 / Fig. 8).
fn run_ads(cli: &Cli) -> (String, ExperimentResult) {
    let n = if cli.full { 3279 } else { 1000 };
    let scale = if cli.full { 0.5 } else { 0.25 } * cli.scale;
    let data = ads(n, 29, scale);
    let config = ExperimentConfig {
        dims: vec![5, 10, 20, 40, 80],
        epsilon: 1e-2,
        seeds: seeds(cli.seeds),
        labeled: LabeledSpec::Count(100),
        gamma: 1e-2,
        use_knn: false,
        tcca_iterations: 15,
        ..ExperimentConfig::default()
    };
    let methods = LinearMethod::paper_set();
    (
        format!("Ads, {n} instances, view scale {scale:.2}"),
        linear_experiment(&data, &methods, &config),
    )
}

/// NUS-WIDE linear experiment (Fig. 5 / Table 3 / Fig. 9); one result per labeled count.
fn run_nuswide(cli: &Cli) -> Vec<(String, ExperimentResult)> {
    let n = if cli.full { 2000 } else { 700 };
    let scale = if cli.full { 0.5 } else { 0.35 } * cli.scale;
    let data = nuswide(n, 41, scale);
    let methods = LinearMethod::paper_set();
    [4usize, 6, 8]
        .into_iter()
        .map(|per_class| {
            let config = ExperimentConfig {
                dims: vec![5, 10, 20, 40],
                epsilon: 1e-2,
                seeds: seeds(cli.seeds),
                labeled: LabeledSpec::PerClass(per_class),
                use_knn: true,
                knn_candidates: (1..=10).collect(),
                tcca_iterations: 12,
                ..ExperimentConfig::default()
            };
            (
                format!("NUS-WIDE, {per_class} labeled per concept"),
                linear_experiment(&data, &methods, &config),
            )
        })
        .collect()
}

/// NUS-WIDE kernel experiment (Fig. 6 / Table 4 / Fig. 10).
fn run_kernel(cli: &Cli) -> Vec<(String, ExperimentResult)> {
    let n = if cli.full { 300 } else { 150 };
    let data = nuswide(n, 43, 0.35);
    let methods = KernelMethod::paper_set();
    [4usize, 6, 8]
        .into_iter()
        .map(|per_class| {
            let config = ExperimentConfig {
                dims: vec![5, 10, 20],
                epsilon: 1e-1,
                seeds: seeds(cli.seeds),
                labeled: LabeledSpec::PerClass(per_class),
                use_knn: true,
                knn_candidates: (1..=10).collect(),
                tcca_iterations: 10,
                ..ExperimentConfig::default()
            };
            (
                format!("NUS-WIDE kernels, {n} samples, {per_class} labeled per concept"),
                kernel_experiment(&data, &methods, &config),
            )
        })
        .collect()
}

/// Ablation: decomposition method (ALS vs HOPM vs power method) on SecStr-like data.
fn run_ablation_decomposition(cli: &Cli) {
    use tcca::{DecompositionMethod, Tcca, TccaOptions};
    let data = secstr(600, 17);
    println!("\n=== Ablation: rank-1 decomposition method (SecStr-like, 600 instances) ===");
    println!(
        "{:<14} {:>8} {:>16} {:>12}",
        "method", "rank", "leading |rho|", "seconds"
    );
    for rank in [1usize, 5, 10] {
        for (name, method) in [
            ("ALS", DecompositionMethod::Als),
            ("HOPM", DecompositionMethod::Hopm),
            ("Power", DecompositionMethod::PowerMethod),
        ] {
            let start = std::time::Instant::now();
            let opts = TccaOptions::with_rank(rank)
                .epsilon(1e-2)
                .method(method)
                .seed(cli.seeds as u64);
            let model = Tcca::fit(data.views(), &opts).expect("fit");
            println!(
                "{:<14} {:>8} {:>16.6} {:>12.3}",
                name,
                rank,
                model.correlations()[0].abs(),
                start.elapsed().as_secs_f64()
            );
        }
    }
}

/// Ablation: the regularizer ε.
fn run_ablation_epsilon(cli: &Cli) {
    let data = secstr(800, 17);
    println!("\n=== Ablation: regularization epsilon (SecStr-like, 800 instances) ===");
    let methods = [LinearMethod::Tcca];
    for eps in [1e-4, 1e-2, 1.0] {
        let config = ExperimentConfig {
            dims: vec![10, 20],
            epsilon: eps,
            seeds: seeds(cli.seeds),
            labeled: LabeledSpec::Count(100),
            tcca_iterations: 15,
            ..ExperimentConfig::default()
        };
        let result = linear_experiment(&data, &methods, &config);
        println!(
            "epsilon {:>8.0e}: accuracy {}",
            eps,
            result.best[0].formatted()
        );
    }
}

/// Ablation: number of unlabeled instances (the paper's observation 3 on Table 1).
fn run_ablation_unlabeled(cli: &Cli) {
    println!("\n=== Ablation: unlabeled pool size (SecStr-like) ===");
    let methods = [
        LinearMethod::CcaBst,
        LinearMethod::CcaLs,
        LinearMethod::Tcca,
    ];
    for n in [400usize, 1200, 2400] {
        let data = secstr(n, 17);
        let config = ExperimentConfig {
            dims: vec![10, 20, 40],
            seeds: seeds(cli.seeds),
            labeled: LabeledSpec::Count(100),
            tcca_iterations: 15,
            ..ExperimentConfig::default()
        };
        let result = linear_experiment(&data, &methods, &config);
        print!("unlabeled {n:>6}:");
        for row in &result.best {
            print!("  {} {}", row.method, row.formatted());
        }
        println!();
    }
}

fn main() {
    let cli = parse_cli();
    match cli.command.as_str() {
        "fig3" => {
            for (label, result) in run_secstr(&cli) {
                print_accuracy_curves(&format!("Figure 3 — {label}"), &result);
            }
        }
        "table1" => {
            for (label, result) in run_secstr(&cli) {
                print_table(&format!("Table 1 — {label}"), &result);
            }
        }
        "fig4" => {
            let (label, result) = run_ads(&cli);
            print_accuracy_curves(&format!("Figure 4 — {label}"), &result);
        }
        "table2" => {
            let (label, result) = run_ads(&cli);
            print_table(&format!("Table 2 — {label}"), &result);
        }
        "fig5" => {
            for (label, result) in run_nuswide(&cli) {
                print_accuracy_curves(&format!("Figure 5 — {label}"), &result);
            }
        }
        "table3" => {
            for (label, result) in run_nuswide(&cli) {
                print_table(&format!("Table 3 — {label}"), &result);
            }
        }
        "fig6" => {
            for (label, result) in run_kernel(&cli) {
                print_accuracy_curves(&format!("Figure 6 — {label}"), &result);
            }
        }
        "table4" => {
            for (label, result) in run_kernel(&cli) {
                print_table(&format!("Table 4 — {label}"), &result);
            }
        }
        "fig7" => {
            for (label, result) in run_secstr(&cli) {
                print_cost_curves(&format!("Figure 7 — {label}"), &result);
            }
        }
        "fig8" => {
            let (label, result) = run_ads(&cli);
            print_cost_curves(&format!("Figure 8 — {label}"), &result);
        }
        "fig9" => {
            for (label, result) in run_nuswide(&cli).into_iter().take(1) {
                print_cost_curves(&format!("Figure 9 — {label}"), &result);
            }
        }
        "fig10" => {
            for (label, result) in run_kernel(&cli).into_iter().take(1) {
                print_cost_curves(&format!("Figure 10 — {label}"), &result);
            }
        }
        "ablation-decomposition" => run_ablation_decomposition(&cli),
        "ablation-epsilon" => run_ablation_epsilon(&cli),
        "ablation-unlabeled" => run_ablation_unlabeled(&cli),
        "all" => {
            for (label, result) in run_secstr(&cli) {
                print_accuracy_curves(&format!("Figure 3 — {label}"), &result);
                print_table(&format!("Table 1 — {label}"), &result);
                print_cost_curves(&format!("Figure 7 — {label}"), &result);
            }
            let (label, result) = run_ads(&cli);
            print_accuracy_curves(&format!("Figure 4 — {label}"), &result);
            print_table(&format!("Table 2 — {label}"), &result);
            print_cost_curves(&format!("Figure 8 — {label}"), &result);
            for (label, result) in run_nuswide(&cli) {
                print_accuracy_curves(&format!("Figure 5 — {label}"), &result);
                print_table(&format!("Table 3 — {label}"), &result);
            }
            for (label, result) in run_kernel(&cli) {
                print_accuracy_curves(&format!("Figure 6 — {label}"), &result);
                print_table(&format!("Table 4 — {label}"), &result);
            }
            run_ablation_decomposition(&cli);
        }
        _ => {
            println!(
                "usage: experiments <fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|\
                 table1|table2|table3|table4|ablation-decomposition|ablation-epsilon|\
                 ablation-unlabeled|all> [--seeds N] [--scale S] [--full]"
            );
        }
    }
}
