//! A uniform "fit → representation + cost" wrapper around every compared method.
//!
//! The experiment runner does not care how a method works internally; it needs, for a
//! given dataset and subspace dimension, one or more candidate representations of all
//! instances plus the wall-clock time and modelled memory of producing them. Methods
//! that internally evaluate several sub-models (CCA on every view pair) return one
//! candidate per sub-model together with a [`CombineRule`] telling the runner whether to
//! pick the best on validation (BST) or to combine predictions (AVG).

use crate::memcost::MemoryModel;
use baselines::{
    feature::{average_kernels, concatenate_views, kernel_to_distances, view_as_instances},
    CcaLs, CcaMaxVar, Dse, Kcca, PairwiseCca, PairwiseKcca, Ssmvd,
};
use datasets::MultiViewDataset;
use linalg::Matrix;
use std::time::Instant;
use tcca::{Ktcca, KtccaOptions, Tcca, TccaOptions};

/// How an instance is represented for the downstream learner.
#[derive(Debug, Clone)]
pub enum Representation {
    /// An `N × dim` embedding; learners use it directly (RLS) or via Euclidean
    /// distances (kNN).
    Embedding(Matrix),
    /// An `N × N` precomputed squared-distance matrix (kernel baselines evaluated by
    /// kNN without an explicit embedding).
    Distances(Matrix),
}

/// How multiple candidate representations are turned into one prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineRule {
    /// Evaluate each candidate on the validation split and keep the best (the paper's
    /// "BST" variants, and the BSF / BSK single-view baselines).
    SelectBest,
    /// Combine all candidates — averaged RLS decision scores or kNN majority vote (the
    /// paper's "AVG" variants).
    Average,
}

/// The output of fitting one method at one operating point.
#[derive(Debug, Clone)]
pub struct MethodOutput {
    /// Display name (matches the paper's tables).
    pub name: String,
    /// One or more candidate representations covering *all* dataset instances, in
    /// dataset order.
    pub candidates: Vec<Representation>,
    /// How the candidates are combined.
    pub combine: CombineRule,
    /// Wall-clock seconds spent fitting and producing the representations.
    pub seconds: f64,
    /// Modelled memory cost.
    pub memory: MemoryModel,
}

/// The linear methods of the paper's Tables 1–3 / Figures 3–5 and 7–9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinearMethod {
    /// Best single-view features.
    Bsf,
    /// Concatenation of normalized features of all views.
    Cat,
    /// Two-view CCA on the best view pair.
    CcaBst,
    /// Two-view CCA on all pairs, predictions combined.
    CcaAvg,
    /// Multiset CCA via coupled least squares (Vía et al. 2007).
    CcaLs,
    /// Multiset CCA via SVD (Kettenring 1971); not in the paper's tables but provided
    /// for completeness and the ablation benches.
    CcaMaxVar,
    /// Distributed spectral embedding (Long et al. 2008).
    Dse,
    /// Structured-sparsity multi-view dimension reduction (Han et al. 2012).
    Ssmvd,
    /// The paper's tensor CCA.
    Tcca,
}

impl LinearMethod {
    /// The display name used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            LinearMethod::Bsf => "BSF",
            LinearMethod::Cat => "CAT",
            LinearMethod::CcaBst => "CCA (BST)",
            LinearMethod::CcaAvg => "CCA (AVG)",
            LinearMethod::CcaLs => "CCA-LS",
            LinearMethod::CcaMaxVar => "CCA-MAXVAR",
            LinearMethod::Dse => "DSE",
            LinearMethod::Ssmvd => "SSMVD",
            LinearMethod::Tcca => "TCCA",
        }
    }

    /// The methods compared in the paper's linear experiments, in table order.
    pub fn paper_set() -> Vec<LinearMethod> {
        vec![
            LinearMethod::Bsf,
            LinearMethod::Cat,
            LinearMethod::CcaBst,
            LinearMethod::CcaAvg,
            LinearMethod::CcaLs,
            LinearMethod::Dse,
            LinearMethod::Ssmvd,
            LinearMethod::Tcca,
        ]
    }

    /// True when the representation changes with the subspace dimension `r`
    /// (BSF and CAT are flat lines in the paper's figures).
    pub fn depends_on_rank(&self) -> bool {
        !matches!(self, LinearMethod::Bsf | LinearMethod::Cat)
    }

    /// Fit the method on a multi-view dataset and produce representations of all
    /// instances.
    ///
    /// * `rank` — the subspace dimension `r` (per view where applicable).
    /// * `epsilon` — the CCA/TCCA regularizer ε.
    /// * `seed` — RNG seed for the iterative solvers.
    /// * `tcca_iterations` — ALS iteration budget for TCCA (the costly part).
    pub fn run(
        &self,
        dataset: &MultiViewDataset,
        rank: usize,
        epsilon: f64,
        seed: u64,
        tcca_iterations: usize,
    ) -> MethodOutput {
        let views = dataset.views();
        let n = dataset.len();
        let dims = dataset.dimensions();
        let start = Instant::now();
        let mut memory = MemoryModel::new();

        let (candidates, combine) = match self {
            LinearMethod::Bsf => {
                let cands: Vec<Representation> = views
                    .iter()
                    .map(|v| Representation::Embedding(view_as_instances(v)))
                    .collect();
                for (p, d) in dims.iter().enumerate() {
                    memory.add_matrix(format!("view {p} features"), n, *d);
                }
                (cands, CombineRule::SelectBest)
            }
            LinearMethod::Cat => {
                let cat = concatenate_views(views);
                memory.add_matrix("concatenated features", cat.rows(), cat.cols());
                (vec![Representation::Embedding(cat)], CombineRule::SelectBest)
            }
            LinearMethod::CcaBst | LinearMethod::CcaAvg => {
                let pw = PairwiseCca::fit(views, rank, epsilon).expect("pairwise CCA fit");
                for &(p, q) in pw.pairs() {
                    memory.add_matrix(format!("C{p}{p}"), dims[p], dims[p]);
                    memory.add_matrix(format!("C{q}{q}"), dims[q], dims[q]);
                    memory.add_matrix(format!("C{p}{q}"), dims[p], dims[q]);
                    memory.add_matrix(format!("embedding {p}-{q}"), n, 2 * rank);
                }
                let cands = pw
                    .transform_all(views)
                    .expect("pairwise CCA transform")
                    .into_iter()
                    .map(Representation::Embedding)
                    .collect();
                let rule = if matches!(self, LinearMethod::CcaBst) {
                    CombineRule::SelectBest
                } else {
                    CombineRule::Average
                };
                (cands, rule)
            }
            LinearMethod::CcaLs => {
                let model = CcaLs::fit(views, rank, epsilon).expect("CCA-LS fit");
                for (p, d) in dims.iter().enumerate() {
                    memory.add_matrix(format!("gram {p}"), *d, *d);
                }
                memory.add_matrix("embedding", n, rank * views.len());
                let z = model.transform(views).expect("CCA-LS transform");
                (vec![Representation::Embedding(z)], CombineRule::SelectBest)
            }
            LinearMethod::CcaMaxVar => {
                let model = CcaMaxVar::fit(views, rank, epsilon).expect("CCA-MAXVAR fit");
                let total: usize = dims.iter().sum();
                memory.add_matrix("stacked whitened views", n, total);
                memory.add_matrix("embedding", n, rank * views.len());
                let z = model.transform(views).expect("CCA-MAXVAR transform");
                (vec![Representation::Embedding(z)], CombineRule::SelectBest)
            }
            LinearMethod::Dse => {
                let per_view = 100;
                let model = Dse::fit(views, rank, per_view).expect("DSE fit");
                for (p, d) in dims.iter().enumerate() {
                    memory.add_matrix(format!("PCA view {p}"), n, per_view.min(*d));
                }
                memory.add_matrix("consensus", n, rank);
                (
                    vec![Representation::Embedding(model.embedding().clone())],
                    CombineRule::SelectBest,
                )
            }
            LinearMethod::Ssmvd => {
                let per_view = 100;
                let model = Ssmvd::fit(views, rank, per_view).expect("SSMVD fit");
                for (p, d) in dims.iter().enumerate() {
                    memory.add_matrix(format!("PCA view {p}"), n, per_view.min(*d));
                }
                memory.add_matrix("consensus", n, rank);
                (
                    vec![Representation::Embedding(model.embedding().clone())],
                    CombineRule::SelectBest,
                )
            }
            LinearMethod::Tcca => {
                let mut options = TccaOptions::with_rank(rank).epsilon(epsilon).seed(seed);
                options.max_iterations = tcca_iterations;
                let model = Tcca::fit(views, &options).expect("TCCA fit");
                memory.add_tensor("covariance tensor", &dims);
                for (p, d) in dims.iter().enumerate() {
                    memory.add_matrix(format!("whitener {p}"), *d, *d);
                    memory.add_matrix(format!("factor {p}"), *d, rank);
                }
                memory.add_matrix("embedding", n, rank * views.len());
                let z = model.transform(views).expect("TCCA transform");
                (vec![Representation::Embedding(z)], CombineRule::SelectBest)
            }
        };

        MethodOutput {
            name: self.name().to_string(),
            candidates,
            combine,
            seconds: start.elapsed().as_secs_f64(),
            memory,
        }
    }
}

/// The kernel methods of the paper's Table 4 / Figures 6 and 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMethod {
    /// Best single-view kernel.
    Bsk,
    /// Average of the normalized per-view kernels.
    Avg,
    /// Two-view kernel CCA on the best pair.
    KccaBst,
    /// Two-view kernel CCA on all pairs, predictions combined.
    KccaAvg,
    /// The paper's kernel tensor CCA.
    Ktcca,
}

impl KernelMethod {
    /// The display name used in the paper's Table 4.
    pub fn name(&self) -> &'static str {
        match self {
            KernelMethod::Bsk => "BSK",
            KernelMethod::Avg => "AVG",
            KernelMethod::KccaBst => "KCCA (BST)",
            KernelMethod::KccaAvg => "KCCA (AVG)",
            KernelMethod::Ktcca => "KTCCA",
        }
    }

    /// The methods compared in the paper's non-linear experiments, in table order.
    pub fn paper_set() -> Vec<KernelMethod> {
        vec![
            KernelMethod::Bsk,
            KernelMethod::Avg,
            KernelMethod::KccaBst,
            KernelMethod::KccaAvg,
            KernelMethod::Ktcca,
        ]
    }

    /// True when the representation changes with the subspace dimension `r`.
    pub fn depends_on_rank(&self) -> bool {
        !matches!(self, KernelMethod::Bsk | KernelMethod::Avg)
    }

    /// Fit the method on per-view centered Gram matrices (`N × N`, one per view).
    pub fn run(
        &self,
        kernels: &[Matrix],
        rank: usize,
        epsilon: f64,
        seed: u64,
        tcca_iterations: usize,
    ) -> MethodOutput {
        let n = kernels[0].rows();
        let m = kernels.len();
        let start = Instant::now();
        let mut memory = MemoryModel::new();
        for p in 0..m {
            memory.add_matrix(format!("kernel {p}"), n, n);
        }

        let (candidates, combine) = match self {
            KernelMethod::Bsk => {
                let cands: Vec<Representation> = kernels
                    .iter()
                    .map(|k| Representation::Distances(kernel_to_distances(k)))
                    .collect();
                memory.add_matrix("distance matrices", n, n * m);
                (cands, CombineRule::SelectBest)
            }
            KernelMethod::Avg => {
                let avg = average_kernels(kernels);
                memory.add_matrix("averaged kernel", n, n);
                (
                    vec![Representation::Distances(kernel_to_distances(&avg))],
                    CombineRule::SelectBest,
                )
            }
            KernelMethod::KccaBst | KernelMethod::KccaAvg => {
                let pw = PairwiseKcca::fit(kernels, rank, epsilon).expect("pairwise KCCA fit");
                for _ in pw.pairs() {
                    memory.add_matrix("dual coefficients", n, 2 * rank);
                }
                let cands = pw
                    .transform_all(kernels)
                    .expect("pairwise KCCA transform")
                    .into_iter()
                    .map(Representation::Embedding)
                    .collect();
                let rule = if matches!(self, KernelMethod::KccaBst) {
                    CombineRule::SelectBest
                } else {
                    CombineRule::Average
                };
                (cands, rule)
            }
            KernelMethod::Ktcca => {
                let mut options = KtccaOptions::with_rank(rank).epsilon(epsilon).seed(seed);
                options.max_iterations = tcca_iterations;
                let model = Ktcca::fit(kernels, &options).expect("KTCCA fit");
                memory.add_tensor("gram tensor", &vec![n; m]);
                memory.add_matrix("dual coefficients", n, rank * m);
                let z = model.transform(kernels).expect("KTCCA transform");
                (vec![Representation::Embedding(z)], CombineRule::SelectBest)
            }
        };

        MethodOutput {
            name: self.name().to_string(),
            candidates,
            combine,
            seconds: start.elapsed().as_secs_f64(),
            memory,
        }
    }
}

/// Convenience: two-view KCCA exposed for the ablation benches (fitting a single pair
/// instead of all pairs).
pub fn fit_single_kcca(k1: &Matrix, k2: &Matrix, rank: usize, epsilon: f64) -> Kcca {
    Kcca::fit(k1, k2, rank, epsilon).expect("KCCA fit")
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::{center_kernel, gram_matrix, secstr_dataset, Kernel, SecStrConfig};

    fn tiny_dataset() -> MultiViewDataset {
        secstr_dataset(&SecStrConfig {
            n_instances: 60,
            seed: 5,
            difficulty: 0.8,
        })
    }

    #[test]
    fn names_and_paper_sets() {
        assert_eq!(LinearMethod::Tcca.name(), "TCCA");
        assert_eq!(LinearMethod::paper_set().len(), 8);
        assert_eq!(KernelMethod::paper_set().len(), 5);
        assert!(!LinearMethod::Bsf.depends_on_rank());
        assert!(LinearMethod::Tcca.depends_on_rank());
        assert!(!KernelMethod::Avg.depends_on_rank());
        assert!(KernelMethod::Ktcca.depends_on_rank());
    }

    #[test]
    fn every_linear_method_produces_representations() {
        let data = tiny_dataset();
        for method in LinearMethod::paper_set() {
            let out = method.run(&data, 3, 1e-2, 1, 10);
            assert!(!out.candidates.is_empty(), "{}", out.name);
            for c in &out.candidates {
                match c {
                    Representation::Embedding(z) => assert_eq!(z.rows(), data.len()),
                    Representation::Distances(d) => assert_eq!(d.rows(), data.len()),
                }
            }
            assert!(out.seconds >= 0.0);
            assert!(out.memory.total_bytes() > 0);
        }
    }

    #[test]
    fn bsf_yields_one_candidate_per_view_and_cat_one() {
        let data = tiny_dataset();
        let bsf = LinearMethod::Bsf.run(&data, 5, 1e-2, 1, 5);
        assert_eq!(bsf.candidates.len(), 3);
        assert_eq!(bsf.combine, CombineRule::SelectBest);
        let cat = LinearMethod::Cat.run(&data, 5, 1e-2, 1, 5);
        assert_eq!(cat.candidates.len(), 1);
        if let Representation::Embedding(z) = &cat.candidates[0] {
            assert_eq!(z.cols(), 315);
        } else {
            panic!("CAT must produce an embedding");
        }
    }

    #[test]
    fn cca_avg_uses_average_rule() {
        let data = tiny_dataset();
        let avg = LinearMethod::CcaAvg.run(&data, 2, 1e-2, 1, 5);
        assert_eq!(avg.combine, CombineRule::Average);
        assert_eq!(avg.candidates.len(), 3); // three view pairs
    }

    #[test]
    fn kernel_methods_produce_representations() {
        let data = tiny_dataset().subset(&(0..30).collect::<Vec<_>>());
        let kernels: Vec<Matrix> = data
            .views()
            .iter()
            .map(|v| center_kernel(&gram_matrix(v, Kernel::ExpEuclidean)))
            .collect();
        for method in KernelMethod::paper_set() {
            let out = method.run(&kernels, 2, 1e-1, 1, 8);
            assert!(!out.candidates.is_empty(), "{}", out.name);
            assert!(out.memory.total_bytes() > 0);
        }
    }
}
