//! Registry-driven method dispatch for the experiment harness.
//!
//! The experiment runner does not care how a method works internally; it needs, for a
//! given dataset and subspace dimension, one or more candidate representations of all
//! instances plus the wall-clock time and modelled memory of producing them. All of
//! that now comes uniformly from the `mvcore` estimator API: a method name resolves
//! through the [`EstimatorRegistry`], fits under one [`FitSpec`], and its fitted
//! [`mvcore::MultiViewModel`] supplies the candidates ([`Output`]), the
//! [`CombineRule`] and the [`MemoryModel`] — no per-method plumbing anywhere in this
//! crate.
//!
//! [`LinearMethod`] and [`KernelMethod`] remain as typed method lists in the paper's
//! table order; their `run` methods are thin wrappers over [`run_registered`].

use crate::memcost::MemoryModel;
use datasets::MultiViewDataset;
use linalg::Matrix;
use mvcore::{EstimatorRegistry, FitSpec};
use std::sync::OnceLock;
use std::time::Instant;

pub use mvcore::{CombineRule, Output};

/// How an instance is represented for the downstream learner (re-export of
/// [`mvcore::Output`] under the harness's historical name).
pub type Representation = Output;

/// The process-wide estimator registry the harness dispatches through.
pub fn registry() -> &'static EstimatorRegistry {
    static REGISTRY: OnceLock<EstimatorRegistry> = OnceLock::new();
    REGISTRY.get_or_init(EstimatorRegistry::with_builtin)
}

/// True when a method's representation changes with the subspace dimension `r`
/// (the flat feature/kernel baselines are constant lines in the paper's figures).
pub fn rank_dependent(name: &str) -> bool {
    !matches!(name, "BSF" | "CAT" | "BSK" | "AVG")
}

/// The output of fitting one method at one operating point.
#[derive(Debug, Clone)]
pub struct MethodOutput {
    /// Display name (matches the paper's tables).
    pub name: String,
    /// One or more candidate representations covering *all* dataset instances, in
    /// dataset order.
    pub candidates: Vec<Representation>,
    /// How the candidates are combined.
    pub combine: CombineRule,
    /// Wall-clock seconds spent fitting and producing the representations.
    pub seconds: f64,
    /// Modelled memory cost.
    pub memory: MemoryModel,
}

/// Resolve `name` through the registry, fit it on the inputs (feature views or
/// centered Gram matrices, per the estimator's input kind) and collect its candidate
/// representations plus cost accounting.
pub fn run_registered(name: &str, inputs: &[Matrix], spec: &FitSpec) -> MethodOutput {
    let estimator = registry()
        .get(name)
        .unwrap_or_else(|e| panic!("resolving {name}: {e}"));
    let start = Instant::now();
    let model = estimator
        .fit(inputs, spec)
        .unwrap_or_else(|e| panic!("fitting {name}: {e}"));
    let candidates = model
        .outputs(inputs)
        .unwrap_or_else(|e| panic!("transforming {name}: {e}"));
    MethodOutput {
        name: model.name().to_string(),
        candidates,
        combine: model.combine(),
        seconds: start.elapsed().as_secs_f64(),
        memory: model.memory().clone(),
    }
}

/// The [`FitSpec`] one experiment operating point translates into. The experiment's
/// `tcca_iterations` caps only the tensor decomposition (the dominant cost); the
/// other iterative solvers (CCA-LS, SSMVD's IRLS) keep the spec's general,
/// convergence-bounded budget.
pub fn experiment_spec(rank: usize, epsilon: f64, seed: u64, tcca_iterations: usize) -> FitSpec {
    FitSpec::with_rank(rank)
        .epsilon(epsilon)
        .seed(seed)
        .decomposition_iterations(tcca_iterations)
}

/// The linear methods of the paper's Tables 1–3 / Figures 3–5 and 7–9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinearMethod {
    /// Best single-view features.
    Bsf,
    /// Concatenation of normalized features of all views.
    Cat,
    /// Two-view CCA on the best view pair.
    CcaBst,
    /// Two-view CCA on all pairs, predictions combined.
    CcaAvg,
    /// Multiset CCA via coupled least squares (Vía et al. 2007).
    CcaLs,
    /// Multiset CCA via SVD (Kettenring 1971); not in the paper's tables but provided
    /// for completeness and the ablation benches.
    CcaMaxVar,
    /// Distributed spectral embedding (Long et al. 2008).
    Dse,
    /// Structured-sparsity multi-view dimension reduction (Han et al. 2012).
    Ssmvd,
    /// The paper's tensor CCA.
    Tcca,
}

impl LinearMethod {
    /// The display name used in the paper's tables (and the registry key).
    pub fn name(&self) -> &'static str {
        match self {
            LinearMethod::Bsf => "BSF",
            LinearMethod::Cat => "CAT",
            LinearMethod::CcaBst => "CCA (BST)",
            LinearMethod::CcaAvg => "CCA (AVG)",
            LinearMethod::CcaLs => "CCA-LS",
            LinearMethod::CcaMaxVar => "CCA-MAXVAR",
            LinearMethod::Dse => "DSE",
            LinearMethod::Ssmvd => "SSMVD",
            LinearMethod::Tcca => "TCCA",
        }
    }

    /// The methods compared in the paper's linear experiments, in table order.
    pub fn paper_set() -> Vec<LinearMethod> {
        vec![
            LinearMethod::Bsf,
            LinearMethod::Cat,
            LinearMethod::CcaBst,
            LinearMethod::CcaAvg,
            LinearMethod::CcaLs,
            LinearMethod::Dse,
            LinearMethod::Ssmvd,
            LinearMethod::Tcca,
        ]
    }

    /// True when the representation changes with the subspace dimension `r`.
    pub fn depends_on_rank(&self) -> bool {
        rank_dependent(self.name())
    }

    /// Fit the method on a multi-view dataset and produce representations of all
    /// instances, dispatching through the estimator registry.
    ///
    /// * `rank` — the subspace dimension `r` (per view where applicable).
    /// * `epsilon` — the CCA/TCCA regularizer ε.
    /// * `seed` — RNG seed for the iterative solvers.
    /// * `tcca_iterations` — ALS iteration budget for TCCA (the costly part).
    pub fn run(
        &self,
        dataset: &MultiViewDataset,
        rank: usize,
        epsilon: f64,
        seed: u64,
        tcca_iterations: usize,
    ) -> MethodOutput {
        let spec = experiment_spec(rank, epsilon, seed, tcca_iterations);
        run_registered(self.name(), dataset.views(), &spec)
    }
}

/// The kernel methods of the paper's Table 4 / Figures 6 and 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMethod {
    /// Best single-view kernel.
    Bsk,
    /// Average of the normalized per-view kernels.
    Avg,
    /// Two-view kernel CCA on the best pair.
    KccaBst,
    /// Two-view kernel CCA on all pairs, predictions combined.
    KccaAvg,
    /// The paper's kernel tensor CCA.
    Ktcca,
}

impl KernelMethod {
    /// The display name used in the paper's Table 4 (and the registry key).
    pub fn name(&self) -> &'static str {
        match self {
            KernelMethod::Bsk => "BSK",
            KernelMethod::Avg => "AVG",
            KernelMethod::KccaBst => "KCCA (BST)",
            KernelMethod::KccaAvg => "KCCA (AVG)",
            KernelMethod::Ktcca => "KTCCA",
        }
    }

    /// The methods compared in the paper's non-linear experiments, in table order.
    pub fn paper_set() -> Vec<KernelMethod> {
        vec![
            KernelMethod::Bsk,
            KernelMethod::Avg,
            KernelMethod::KccaBst,
            KernelMethod::KccaAvg,
            KernelMethod::Ktcca,
        ]
    }

    /// True when the representation changes with the subspace dimension `r`.
    pub fn depends_on_rank(&self) -> bool {
        rank_dependent(self.name())
    }

    /// Fit the method on per-view centered Gram matrices (`N × N`, one per view),
    /// dispatching through the estimator registry.
    pub fn run(
        &self,
        kernels: &[Matrix],
        rank: usize,
        epsilon: f64,
        seed: u64,
        tcca_iterations: usize,
    ) -> MethodOutput {
        let spec = experiment_spec(rank, epsilon, seed, tcca_iterations);
        run_registered(self.name(), kernels, &spec)
    }
}

/// Convenience: two-view KCCA exposed for the ablation benches (fitting a single pair
/// instead of all pairs).
pub fn fit_single_kcca(k1: &Matrix, k2: &Matrix, rank: usize, epsilon: f64) -> baselines::Kcca {
    baselines::Kcca::fit(k1, k2, rank, epsilon).expect("KCCA fit")
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::{center_kernel, gram_matrix, secstr_dataset, Kernel, SecStrConfig};

    fn tiny_dataset() -> MultiViewDataset {
        secstr_dataset(&SecStrConfig {
            n_instances: 60,
            seed: 5,
            difficulty: 0.8,
        })
    }

    #[test]
    fn names_and_paper_sets() {
        assert_eq!(LinearMethod::Tcca.name(), "TCCA");
        assert_eq!(LinearMethod::paper_set().len(), 8);
        assert_eq!(KernelMethod::paper_set().len(), 5);
        assert!(!LinearMethod::Bsf.depends_on_rank());
        assert!(LinearMethod::Tcca.depends_on_rank());
        assert!(!KernelMethod::Avg.depends_on_rank());
        assert!(KernelMethod::Ktcca.depends_on_rank());
    }

    #[test]
    fn every_paper_method_resolves_through_the_registry() {
        for method in LinearMethod::paper_set() {
            assert!(registry().contains(method.name()), "{}", method.name());
        }
        for method in KernelMethod::paper_set() {
            assert!(registry().contains(method.name()), "{}", method.name());
        }
        assert_eq!(
            registry().input_kind("KTCCA"),
            Some(mvcore::InputKind::Kernels)
        );
    }

    #[test]
    fn every_linear_method_produces_representations() {
        let data = tiny_dataset();
        for method in LinearMethod::paper_set() {
            let out = method.run(&data, 3, 1e-2, 1, 10);
            assert!(!out.candidates.is_empty(), "{}", out.name);
            for c in &out.candidates {
                match c {
                    Representation::Embedding(z) => assert_eq!(z.rows(), data.len()),
                    Representation::Distances(d) => assert_eq!(d.rows(), data.len()),
                }
            }
            assert!(out.seconds >= 0.0);
            assert!(out.memory.total_bytes() > 0);
        }
    }

    #[test]
    fn bsf_yields_one_candidate_per_view_and_cat_one() {
        let data = tiny_dataset();
        let bsf = LinearMethod::Bsf.run(&data, 5, 1e-2, 1, 5);
        assert_eq!(bsf.candidates.len(), 3);
        assert_eq!(bsf.combine, CombineRule::SelectBest);
        let cat = LinearMethod::Cat.run(&data, 5, 1e-2, 1, 5);
        assert_eq!(cat.candidates.len(), 1);
        if let Representation::Embedding(z) = &cat.candidates[0] {
            assert_eq!(z.cols(), 315);
        } else {
            panic!("CAT must produce an embedding");
        }
    }

    #[test]
    fn cca_avg_uses_average_rule() {
        let data = tiny_dataset();
        let avg = LinearMethod::CcaAvg.run(&data, 2, 1e-2, 1, 5);
        assert_eq!(avg.combine, CombineRule::Average);
        assert_eq!(avg.candidates.len(), 3); // three view pairs
    }

    #[test]
    fn kernel_methods_produce_representations() {
        let data = tiny_dataset().subset(&(0..30).collect::<Vec<_>>());
        let kernels: Vec<Matrix> = data
            .views()
            .iter()
            .map(|v| center_kernel(&gram_matrix(v, Kernel::ExpEuclidean)))
            .collect();
        for method in KernelMethod::paper_set() {
            let out = method.run(&kernels, 2, 1e-1, 1, 8);
            assert!(!out.candidates.is_empty(), "{}", out.name);
            assert!(out.memory.total_bytes() > 0);
        }
    }
}
