//! Compatibility re-export: the allocation model moved into `mvcore` with the unified
//! estimator API (every fitted `MultiViewModel` now records its own [`MemoryModel`]
//! at fit time); this module keeps the harness's historical import path working.

pub use mvcore::MemoryModel;
