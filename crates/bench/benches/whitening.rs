//! Criterion benchmarks for the whitening step (`C̃_pp^{-1/2}`) and the covariance
//! tensor construction — the per-view preprocessing shared by CCA, CCA-LS and TCCA.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::{secstr_dataset, SecStrConfig};
use linalg::{center_rows, covariance};
use tcca::covariance_tensor;

fn bench_inverse_sqrt(c: &mut Criterion) {
    let mut group = c.benchmark_group("whitening_inverse_sqrt");
    group.sample_size(10);
    let data = secstr_dataset(&SecStrConfig {
        n_instances: 400,
        seed: 3,
        difficulty: 0.8,
    });
    for p in 0..data.num_views() {
        let (x, _) = center_rows(data.view(p));
        let mut cov = covariance(&x);
        cov.add_diagonal(1e-2);
        group.bench_with_input(BenchmarkId::new("view", p), &cov, |b, cov| {
            b.iter(|| cov.inverse_sqrt_spd(1e-12).unwrap())
        });
    }
    group.finish();
}

fn bench_covariance_tensor(c: &mut Criterion) {
    let mut group = c.benchmark_group("covariance_tensor");
    group.sample_size(10);
    for n in [100usize, 300] {
        let data = secstr_dataset(&SecStrConfig {
            n_instances: n,
            seed: 3,
            difficulty: 0.8,
        });
        // Use the first 40 features of each view to keep the bench quick while still
        // exercising the same code path as the full experiments.
        let views: Vec<linalg::Matrix> = data
            .views()
            .iter()
            .map(|v| v.select_rows(&(0..40).collect::<Vec<_>>()))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &views, |b, views| {
            b.iter(|| covariance_tensor(views).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inverse_sqrt, bench_covariance_tensor);
criterion_main!(benches);
