//! End-to-end fit benchmarks: every compared linear method on a SecStr-like dataset,
//! swept over the subspace dimension. This regenerates the *time* panels of the paper's
//! Figures 7–9 in Criterion form (the `experiments figN` binary prints the same numbers
//! as plain tables).

use bench::methods::LinearMethod;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::{secstr_dataset, SecStrConfig};

fn bench_linear_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("linear_methods_secstr");
    group.sample_size(10);
    let data = secstr_dataset(&SecStrConfig {
        n_instances: 300,
        seed: 11,
        difficulty: 0.8,
    });
    for method in [
        LinearMethod::CcaBst,
        LinearMethod::CcaLs,
        LinearMethod::Dse,
        LinearMethod::Ssmvd,
        LinearMethod::Tcca,
    ] {
        group.bench_with_input(
            BenchmarkId::new(method.name().replace(' ', "_"), 10),
            &data,
            |b, data| b.iter(|| method.run(data, 10, 1e-2, 0, 10)),
        );
    }
    group.finish();
}

fn bench_tcca_dimension_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("tcca_dimension_sweep_secstr");
    group.sample_size(10);
    let data = secstr_dataset(&SecStrConfig {
        n_instances: 300,
        seed: 11,
        difficulty: 0.8,
    });
    for rank in [5usize, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(rank), &rank, |b, &r| {
            b.iter(|| LinearMethod::Tcca.run(&data, r, 1e-2, 0, 10))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_linear_methods, bench_tcca_dimension_sweep);
criterion_main!(benches);
