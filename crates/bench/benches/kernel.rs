//! Kernel-path benchmarks: Gram-matrix construction, KCCA and KTCCA on the NUS-WIDE-like
//! small-sample setting (the cost panel of the paper's Figure 10).

use bench::methods::KernelMethod;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::{center_kernel, gram_matrix, nuswide_dataset, Kernel, NusWideConfig};
use linalg::Matrix;

fn kernels(n: usize) -> Vec<Matrix> {
    let data = nuswide_dataset(&NusWideConfig {
        n_instances: n,
        seed: 21,
        difficulty: 1.2,
    });
    data.views()
        .iter()
        .enumerate()
        .map(|(p, v)| {
            let kernel = if p == 0 {
                Kernel::ExpChiSquare
            } else {
                Kernel::ExpEuclidean
            };
            center_kernel(&gram_matrix(v, kernel))
        })
        .collect()
}

fn bench_gram_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("gram_matrix");
    group.sample_size(10);
    let data = nuswide_dataset(&NusWideConfig {
        n_instances: 120,
        seed: 21,
        difficulty: 1.2,
    });
    group.bench_function("chi_square_500d", |b| {
        b.iter(|| gram_matrix(data.view(0), Kernel::ExpChiSquare))
    });
    group.bench_function("euclidean_144d", |b| {
        b.iter(|| gram_matrix(data.view(1), Kernel::ExpEuclidean))
    });
    group.finish();
}

fn bench_kernel_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_methods");
    group.sample_size(10);
    let ks = kernels(80);
    for method in [KernelMethod::KccaBst, KernelMethod::Ktcca] {
        group.bench_with_input(
            BenchmarkId::new(method.name().replace(' ', "_"), 80),
            &ks,
            |b, ks| b.iter(|| method.run(ks, 5, 1e-1, 0, 8)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gram_construction, bench_kernel_methods);
criterion_main!(benches);
