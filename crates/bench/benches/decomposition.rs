//! Criterion micro-benchmarks for the tensor decomposition kernels (the dominant cost
//! of TCCA, paper §4.5 and the time curves of Figs. 7–9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::GaussianRng;
use tensor::{CpAls, DenseTensor, Hopm, RankRDecomposition, TensorPowerMethod};

fn random_tensor(shape: &[usize], seed: u64) -> DenseTensor {
    let mut rng = GaussianRng::new(seed);
    let len: usize = shape.iter().product();
    let data: Vec<f64> = (0..len).map(|_| rng.standard_normal()).collect();
    DenseTensor::from_vec(shape, data).expect("shape matches data")
}

fn bench_rank_one(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank1_decomposition");
    group.sample_size(10);
    for dim in [16usize, 32] {
        let t = random_tensor(&[dim, dim, dim], 1);
        group.bench_with_input(BenchmarkId::new("als", dim), &t, |b, t| {
            b.iter(|| CpAls::default().decompose(t, 1).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("hopm", dim), &t, |b, t| {
            b.iter(|| Hopm::default().decompose(t, 1).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("power", dim), &t, |b, t| {
            b.iter(|| TensorPowerMethod::default().decompose(t, 1).unwrap())
        });
    }
    group.finish();
}

fn bench_rank_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("als_rank_sweep");
    group.sample_size(10);
    let t = random_tensor(&[24, 24, 24], 2);
    for rank in [1usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(rank), &rank, |b, &r| {
            b.iter(|| CpAls::default().decompose(&t, r).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rank_one, bench_rank_sweep);
criterion_main!(benches);
