//! DSE: distributed/consensus spectral embedding for multi-view data (Long et al. 2008).
//!
//! Long, Yu & Zhang's "general model for multiple view unsupervised learning" first
//! reduces each view independently and then learns a low-dimensional **consensus**
//! representation `B` by factorizing the per-view embeddings: `min Σ_p ‖A_p − B P_p‖²`
//! over `B` (orthonormal columns) and per-view maps `P_p`. With orthonormal `B` the
//! optimum is the top-`r` left singular subspace of the column-stacked `[A_1 … A_m]`.
//!
//! Following the paper's experimental setup (§5.1), the per-view reduction is PCA to
//! 100 dimensions. DSE is transductive: it produces an embedding only for the instances
//! it was trained on (no out-of-sample projection matrix), which is why the paper runs
//! it on subsampled pools for the large datasets.

use crate::{BaselineError, Pca, Result};
use linalg::{Matrix, Svd};

/// A fitted (transductive) DSE embedding.
#[derive(Debug, Clone)]
pub struct Dse {
    /// The consensus embedding `B` (`N × r`).
    embedding: Matrix,
    /// Residual `Σ_p ‖A_p − B P_p‖²_F / Σ_p ‖A_p‖²_F` of the consensus factorization.
    relative_residual: f64,
}

impl Dse {
    /// Fit DSE on `m` views (`d_p × N`).
    ///
    /// * `rank` — dimension of the consensus embedding.
    /// * `per_view_dim` — PCA dimension per view before consensus (paper uses 100).
    pub fn fit(views: &[Matrix], rank: usize, per_view_dim: usize) -> Result<Self> {
        if views.is_empty() {
            return Err(BaselineError::InvalidInput("need at least one view".into()));
        }
        if rank == 0 || per_view_dim == 0 {
            return Err(BaselineError::InvalidInput(
                "rank and per-view dimension must be positive".into(),
            ));
        }
        let n = views[0].cols();
        for (p, v) in views.iter().enumerate() {
            if v.cols() != n {
                return Err(BaselineError::InvalidInput(format!(
                    "view {p} has {} instances, expected {n}",
                    v.cols()
                )));
            }
        }

        // Step 1: per-view PCA embeddings A_p (N × k_p), scaled to unit Frobenius norm so
        // no single view dominates the consensus.
        let mut stacked: Option<Matrix> = None;
        let mut embeddings = Vec::with_capacity(views.len());
        for v in views {
            let k = per_view_dim.min(v.rows()).min(n.max(1));
            let pca = Pca::fit(v, k)?;
            let mut a = pca.transform(v)?;
            let norm = a.frobenius_norm();
            if norm > 1e-12 {
                a = a.scale(1.0 / norm);
            }
            stacked = Some(match stacked {
                None => a.clone(),
                Some(acc) => acc.hstack(&a)?,
            });
            embeddings.push(a);
        }
        let stacked = stacked.expect("at least one view");

        // Step 2: consensus B = top-r left singular vectors of [A_1 … A_m].
        let svd = Svd::new(&stacked)?;
        let r = rank.min(svd.len());
        let b = svd.u.leading_columns(r);

        // Residual of the factorization (P_p = Bᵀ A_p is optimal for orthonormal B).
        let mut num = 0.0;
        let mut den = 0.0;
        for a in &embeddings {
            let p = b.t_matmul(a)?;
            let approx = b.matmul(&p)?;
            num += a.sub(&approx)?.frobenius_norm().powi(2);
            den += a.frobenius_norm().powi(2);
        }

        Ok(Self {
            embedding: b,
            relative_residual: if den > 0.0 { num / den } else { 0.0 },
        })
    }

    /// The consensus embedding (`N × r`, instances as rows).
    pub fn embedding(&self) -> &Matrix {
        &self.embedding
    }

    /// Relative residual of the consensus factorization (0 = views perfectly agree).
    pub fn relative_residual(&self) -> f64 {
        self.relative_residual
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::GaussianRng;

    fn shared_signal_views(n: usize, seed: u64) -> Vec<Matrix> {
        let mut rng = GaussianRng::new(seed);
        let dims = [8usize, 6, 5];
        let mut views: Vec<Matrix> = dims.iter().map(|&d| Matrix::zeros(d, n)).collect();
        for j in 0..n {
            let t1 = rng.standard_normal();
            let t2 = rng.standard_normal();
            for v in views.iter_mut() {
                for i in 0..v.rows() {
                    v[(i, j)] = t1 * (i as f64 + 1.0) + t2 * ((i % 3) as f64) * 0.5
                        + 0.1 * rng.standard_normal();
                }
            }
        }
        views
    }

    #[test]
    fn embedding_shape_and_orthonormality() {
        let views = shared_signal_views(100, 51);
        let dse = Dse::fit(&views, 3, 10).unwrap();
        let b = dse.embedding();
        assert_eq!(b.shape(), (100, 3));
        let btb = b.t_matmul(b).unwrap();
        assert!(btb.sub(&Matrix::identity(3)).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn shared_structure_gives_small_residual() {
        let views = shared_signal_views(150, 52);
        let dse = Dse::fit(&views, 2, 8).unwrap();
        assert!(
            dse.relative_residual() < 0.2,
            "residual {}",
            dse.relative_residual()
        );
    }

    #[test]
    fn rank_clamped_to_available_dimensions() {
        let views = shared_signal_views(20, 53);
        let dse = Dse::fit(&views, 500, 100).unwrap();
        assert!(dse.embedding().cols() <= 20);
    }

    #[test]
    fn rejects_bad_input() {
        let views = shared_signal_views(30, 54);
        assert!(Dse::fit(&[], 2, 10).is_err());
        assert!(Dse::fit(&views, 0, 10).is_err());
        assert!(Dse::fit(&views, 2, 0).is_err());
        let mut bad = views.clone();
        bad[1] = Matrix::zeros(6, 29);
        assert!(Dse::fit(&bad, 2, 10).is_err());
    }
}
