//! DSE: distributed/consensus spectral embedding for multi-view data (Long et al. 2008).
//!
//! Long, Yu & Zhang's "general model for multiple view unsupervised learning" first
//! reduces each view independently and then learns a low-dimensional **consensus**
//! representation `B` by factorizing the per-view embeddings: `min Σ_p ‖A_p − B P_p‖²`
//! over `B` (orthonormal columns) and per-view maps `P_p`. With orthonormal `B` the
//! optimum is the top-`r` left singular subspace of the column-stacked `[A_1 … A_m]`.
//!
//! Following the paper's experimental setup (§5.1), the per-view reduction is PCA to
//! 100 dimensions. DSE is transductive: it produces an embedding only for the instances
//! it was trained on (no out-of-sample projection matrix), which is why the paper runs
//! it on subsampled pools for the large datasets.

use crate::{BaselineError, Pca, Result};
use linalg::{Matrix, Svd};

/// Learn the rank-`rank` consensus of per-view embeddings `A_p` (`N × k_p`, instances
/// as rows): each embedding is scaled to unit Frobenius norm (so no view dominates),
/// the scaled embeddings are column-stacked and the consensus `B` is the top-`rank`
/// left singular subspace. Returns `(B, relative_residual)` with the residual
/// `Σ_p ‖A_p − B P_p‖²_F / Σ_p ‖A_p‖²_F` of the factorization.
///
/// This is DSE's second stage, shared with SSMVD's inner loop and reusable behind any
/// per-view pre-reduction (the `mvcore` pipeline runs PCA first, like the paper).
pub fn consensus_embedding(embeddings: &[Matrix], rank: usize) -> Result<(Matrix, f64)> {
    if embeddings.is_empty() {
        return Err(BaselineError::InvalidInput("need at least one view".into()));
    }
    if rank == 0 {
        return Err(BaselineError::InvalidInput("rank must be positive".into()));
    }
    let normalized = normalize_unit_frobenius(embeddings);
    let mut stacked: Option<Matrix> = None;
    for a in &normalized {
        stacked = Some(match stacked {
            None => a.clone(),
            Some(acc) => acc.hstack(a)?,
        });
    }
    let stacked = stacked.expect("at least one view");

    let svd = Svd::new(&stacked)?;
    let r = rank.min(svd.len());
    let b = svd.u.leading_columns(r);

    // Residual of the factorization (P_p = Bᵀ A_p is optimal for orthonormal B).
    let mut num = 0.0;
    let mut den = 0.0;
    for a in &normalized {
        let p = b.t_matmul(a)?;
        let approx = b.matmul(&p)?;
        num += a.sub(&approx)?.frobenius_norm().powi(2);
        den += a.frobenius_norm().powi(2);
    }
    Ok((b, if den > 0.0 { num / den } else { 0.0 }))
}

/// Scale each embedding to unit Frobenius norm (degenerate all-zero embeddings are
/// returned unchanged) — the "no view dominates the consensus" normalization shared
/// by DSE and SSMVD.
pub(crate) fn normalize_unit_frobenius(embeddings: &[Matrix]) -> Vec<Matrix> {
    embeddings
        .iter()
        .map(|a| {
            let norm = a.frobenius_norm();
            if norm > 1e-12 {
                a.scale(1.0 / norm)
            } else {
                a.clone()
            }
        })
        .collect()
}

/// Reduce each `d_p × N` view to at most `per_view_dim` principal components,
/// returning the `N × k_p` score matrices (DSE's and SSMVD's first stage).
pub fn per_view_pca(views: &[Matrix], per_view_dim: usize) -> Result<Vec<Matrix>> {
    if per_view_dim == 0 {
        return Err(BaselineError::InvalidInput(
            "per-view dimension must be positive".into(),
        ));
    }
    let n = views.first().map_or(0, Matrix::cols);
    views
        .iter()
        .map(|v| {
            let k = per_view_dim.min(v.rows()).min(n.max(1));
            let pca = Pca::fit(v, k)?;
            pca.transform(v)
        })
        .collect()
}

/// A fitted (transductive) DSE embedding.
#[derive(Debug, Clone)]
pub struct Dse {
    /// The consensus embedding `B` (`N × r`).
    embedding: Matrix,
    /// Residual `Σ_p ‖A_p − B P_p‖²_F / Σ_p ‖A_p‖²_F` of the consensus factorization.
    relative_residual: f64,
}

impl Dse {
    /// Fit DSE on `m` views (`d_p × N`).
    ///
    /// * `rank` — dimension of the consensus embedding.
    /// * `per_view_dim` — PCA dimension per view before consensus (paper uses 100).
    pub fn fit(views: &[Matrix], rank: usize, per_view_dim: usize) -> Result<Self> {
        if views.is_empty() {
            return Err(BaselineError::InvalidInput("need at least one view".into()));
        }
        if rank == 0 || per_view_dim == 0 {
            return Err(BaselineError::InvalidInput(
                "rank and per-view dimension must be positive".into(),
            ));
        }
        let n = views[0].cols();
        for (p, v) in views.iter().enumerate() {
            if v.cols() != n {
                return Err(BaselineError::InvalidInput(format!(
                    "view {p} has {} instances, expected {n}",
                    v.cols()
                )));
            }
        }

        // Step 1: per-view PCA embeddings A_p (N × k_p).
        // Step 2: unit-Frobenius normalization and consensus B = top-r left singular
        // vectors of [A_1 … A_m], via the shared consensus stage.
        let embeddings = per_view_pca(views, per_view_dim)?;
        let (embedding, relative_residual) = consensus_embedding(&embeddings, rank)?;

        Ok(Self {
            embedding,
            relative_residual,
        })
    }

    /// The consensus embedding (`N × r`), by value — the train-time representation
    /// DSE produces (the method is transductive and has no out-of-sample map).
    pub fn into_embedding(self) -> Matrix {
        self.embedding
    }

    /// Relative residual of the consensus factorization (0 = views perfectly agree).
    pub fn relative_residual(&self) -> f64 {
        self.relative_residual
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::GaussianRng;

    fn shared_signal_views(n: usize, seed: u64) -> Vec<Matrix> {
        let mut rng = GaussianRng::new(seed);
        let dims = [8usize, 6, 5];
        let mut views: Vec<Matrix> = dims.iter().map(|&d| Matrix::zeros(d, n)).collect();
        for j in 0..n {
            let t1 = rng.standard_normal();
            let t2 = rng.standard_normal();
            for v in views.iter_mut() {
                for i in 0..v.rows() {
                    v[(i, j)] = t1 * (i as f64 + 1.0)
                        + t2 * ((i % 3) as f64) * 0.5
                        + 0.1 * rng.standard_normal();
                }
            }
        }
        views
    }

    #[test]
    fn embedding_shape_and_orthonormality() {
        let views = shared_signal_views(100, 51);
        let b = Dse::fit(&views, 3, 10).unwrap().into_embedding();
        assert_eq!(b.shape(), (100, 3));
        let btb = b.t_matmul(&b).unwrap();
        assert!(btb.sub(&Matrix::identity(3)).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn shared_structure_gives_small_residual() {
        let views = shared_signal_views(150, 52);
        let dse = Dse::fit(&views, 2, 8).unwrap();
        assert!(
            dse.relative_residual() < 0.2,
            "residual {}",
            dse.relative_residual()
        );
    }

    #[test]
    fn rank_clamped_to_available_dimensions() {
        let views = shared_signal_views(20, 53);
        let dse = Dse::fit(&views, 500, 100).unwrap();
        assert!(dse.into_embedding().cols() <= 20);
    }

    #[test]
    fn rejects_bad_input() {
        let views = shared_signal_views(30, 54);
        assert!(Dse::fit(&[], 2, 10).is_err());
        assert!(Dse::fit(&views, 0, 10).is_err());
        assert!(Dse::fit(&views, 2, 0).is_err());
        let mut bad = views.clone();
        bad[1] = Matrix::zeros(6, 29);
        assert!(Dse::fit(&bad, 2, 10).is_err());
    }
}
