//! Two-view regularized canonical correlation analysis (Foster et al. 2008 formulation).
//!
//! CCA finds projections `h₁, h₂` maximizing `corr(X₁ᵀh₁, X₂ᵀh₂)` (paper Eq. 3.1).
//! With the ridge term `ε·I` added to the view covariances, the top-`r` solutions are
//! obtained from the SVD of the whitened cross-covariance
//! `T = C̃₁₁^{-1/2} C₁₂ C̃₂₂^{-1/2}`: `h₁⁽ᵏ⁾ = C̃₁₁^{-1/2} u_k`, `h₂⁽ᵏ⁾ = C̃₂₂^{-1/2} v_k`,
//! with canonical correlations given by the singular values.
//!
//! Following Foster et al. (and the paper's experiments) the learned projection maps
//! both views and their concatenation `[Z₁, Z₂]` (dimension `2r`) is the downstream
//! representation.

use crate::{BaselineError, Result};
use linalg::{JointMoments, Matrix, Svd};

/// A fitted two-view CCA model.
#[derive(Debug, Clone)]
pub struct Cca {
    /// Per-view means subtracted before projecting (length `d_p` each).
    means: [Vec<f64>; 2],
    /// Per-view projection matrices `H_p = C̃pp^{-1/2} U_p` (`d_p × r`).
    projections: [Matrix; 2],
    /// Canonical correlations (singular values of the whitened cross-covariance).
    correlations: Vec<f64>,
}

impl Cca {
    /// Fit CCA on two `d_p × N` views sharing the instance axis.
    ///
    /// * `rank` — number of canonical directions `r` (clamped to `min(d₁, d₂)`).
    /// * `epsilon` — the ridge regularizer ε added to both view covariances
    ///   (the paper uses `10⁻²` for SecStr/Ads and tunes it for NUS-WIDE).
    pub fn fit(view1: &Matrix, view2: &Matrix, rank: usize, epsilon: f64) -> Result<Self> {
        if view1.cols() != view2.cols() {
            return Err(BaselineError::InvalidInput(format!(
                "views have different instance counts: {} vs {}",
                view1.cols(),
                view2.cols()
            )));
        }
        if view1.cols() == 0 {
            return Err(BaselineError::InvalidInput(
                "cannot fit CCA on zero instances".into(),
            ));
        }
        let moments = JointMoments::from_views(&[view1, view2])?;
        Self::fit_from_moments(&moments, rank, epsilon)
    }

    /// Fit CCA from accumulated two-view moments (the streaming finalize path).
    ///
    /// [`JointMoments`] is exact and mergeable, so any chunking of the same samples
    /// yields the same moments — and therefore the same model, bit for bit — as
    /// [`Cca::fit`] on the full batch.
    pub fn fit_from_moments(moments: &JointMoments, rank: usize, epsilon: f64) -> Result<Self> {
        if rank == 0 {
            return Err(BaselineError::InvalidInput("rank must be positive".into()));
        }
        if moments.dims().len() != 2 {
            return Err(BaselineError::InvalidInput(format!(
                "CCA moments must cover exactly two views, got {}",
                moments.dims().len()
            )));
        }
        if moments.count() == 0 {
            return Err(BaselineError::InvalidInput(
                "cannot fit CCA on zero instances".into(),
            ));
        }
        let m1 = moments.mean(0);
        let m2 = moments.mean(1);
        let mut c11 = moments.covariance(0, 0);
        let mut c22 = moments.covariance(1, 1);
        c11.add_diagonal(epsilon);
        c22.add_diagonal(epsilon);
        let c12 = moments.covariance(0, 1);

        let w1 = c11.inverse_sqrt_spd(1e-12)?;
        let w2 = c22.inverse_sqrt_spd(1e-12)?;

        let t = w1.matmul(&c12)?.matmul(&w2)?;
        let svd = Svd::new(&t)?;
        let r = rank.min(svd.len());

        let h1 = w1.matmul(&svd.u.leading_columns(r))?;
        let h2 = w2.matmul(&svd.v.leading_columns(r))?;
        Ok(Self {
            means: [m1, m2],
            projections: [h1, h2],
            correlations: svd.singular_values[..r].to_vec(),
        })
    }

    /// Rebuild a fitted model from its parts (the persistence path).
    pub fn from_parts(
        means: [Vec<f64>; 2],
        projections: [Matrix; 2],
        correlations: Vec<f64>,
    ) -> Result<Self> {
        for p in 0..2 {
            if means[p].len() != projections[p].rows() {
                return Err(BaselineError::InvalidInput(format!(
                    "view {p}: mean has {} entries but projection has {} rows",
                    means[p].len(),
                    projections[p].rows()
                )));
            }
            if projections[p].cols() != correlations.len() {
                return Err(BaselineError::InvalidInput(format!(
                    "view {p}: projection has {} columns but {} correlations given",
                    projections[p].cols(),
                    correlations.len()
                )));
            }
        }
        Ok(Self {
            means,
            projections,
            correlations,
        })
    }

    /// The per-view training means subtracted before projecting.
    pub fn means(&self) -> &[Vec<f64>; 2] {
        &self.means
    }

    /// Canonical correlations of the fitted directions (descending).
    pub fn correlations(&self) -> &[f64] {
        &self.correlations
    }

    /// The per-view projection matrices (`d_p × r`).
    pub fn projections(&self) -> &[Matrix; 2] {
        &self.projections
    }

    /// Project one view (`d_p × N`, any instances) into the common subspace, producing
    /// an `N × r` embedding.
    pub fn transform_view(&self, which: usize, view: &Matrix) -> Result<Matrix> {
        assert!(which < 2, "view index must be 0 or 1");
        let proj = &self.projections[which];
        if view.rows() != proj.rows() {
            return Err(BaselineError::InvalidInput(format!(
                "view {which} has {} features but the model expects {}",
                view.rows(),
                proj.rows()
            )));
        }
        let mut centered = view.clone();
        for i in 0..centered.rows() {
            let m = self.means[which][i];
            for v in centered.row_mut(i) {
                *v -= m;
            }
        }
        // Z = Xᵀ H  (N × r)
        Ok(centered.t_matmul(proj)?)
    }

    /// Project both views and concatenate the embeddings (`N × 2r`), the representation
    /// the paper feeds to the downstream learner.
    pub fn transform(&self, view1: &Matrix, view2: &Matrix) -> Result<Matrix> {
        let z1 = self.transform_view(0, view1)?;
        let z2 = self.transform_view(1, view2)?;
        Ok(z1.hstack(&z2)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::GaussianRng;

    /// Two views generated from a shared 1-D latent signal plus noise.
    fn correlated_views(n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = GaussianRng::new(seed);
        let mut v1 = Matrix::zeros(4, n);
        let mut v2 = Matrix::zeros(3, n);
        for j in 0..n {
            let t = rng.standard_normal();
            for i in 0..4 {
                v1[(i, j)] = (i as f64 + 1.0) * t + 0.1 * rng.standard_normal();
            }
            for i in 0..3 {
                v2[(i, j)] = (1.5 - i as f64) * t + 0.1 * rng.standard_normal();
            }
        }
        (v1, v2)
    }

    #[test]
    fn finds_strong_correlation_in_shared_signal() {
        let (v1, v2) = correlated_views(300, 1);
        let cca = Cca::fit(&v1, &v2, 2, 1e-3).unwrap();
        assert!(
            cca.correlations()[0] > 0.95,
            "top correlation {}",
            cca.correlations()[0]
        );
        // The second direction carries almost no shared signal.
        assert!(cca.correlations()[1] < 0.5);
    }

    #[test]
    fn embeddings_of_top_direction_are_aligned() {
        let (v1, v2) = correlated_views(300, 2);
        let cca = Cca::fit(&v1, &v2, 1, 1e-3).unwrap();
        let z1 = cca.transform_view(0, &v1).unwrap();
        let z2 = cca.transform_view(1, &v2).unwrap();
        // Empirical correlation of the two canonical variables ≈ the reported one.
        let n = z1.rows() as f64;
        let mean1: f64 = z1.column(0).iter().sum::<f64>() / n;
        let mean2: f64 = z2.column(0).iter().sum::<f64>() / n;
        let mut num = 0.0;
        let mut d1 = 0.0;
        let mut d2 = 0.0;
        for i in 0..z1.rows() {
            let a = z1[(i, 0)] - mean1;
            let b = z2[(i, 0)] - mean2;
            num += a * b;
            d1 += a * a;
            d2 += b * b;
        }
        let corr = (num / (d1.sqrt() * d2.sqrt())).abs();
        assert!((corr - cca.correlations()[0]).abs() < 0.05);
    }

    #[test]
    fn transform_concatenates_views() {
        let (v1, v2) = correlated_views(50, 3);
        let cca = Cca::fit(&v1, &v2, 2, 1e-2).unwrap();
        let z = cca.transform(&v1, &v2).unwrap();
        assert_eq!(z.shape(), (50, 4));
    }

    #[test]
    fn correlations_are_bounded_and_sorted() {
        let (v1, v2) = correlated_views(200, 4);
        let cca = Cca::fit(&v1, &v2, 3, 1e-2).unwrap();
        let c = cca.correlations();
        for w in c.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        for &x in c {
            assert!((-1e-12..=1.0 + 1e-6).contains(&x));
        }
    }

    #[test]
    fn rejects_bad_input() {
        let v1 = Matrix::zeros(3, 10);
        let v2 = Matrix::zeros(3, 11);
        assert!(Cca::fit(&v1, &v2, 1, 1e-2).is_err());
        let v2 = Matrix::zeros(3, 10);
        assert!(Cca::fit(&v1, &v2, 0, 1e-2).is_err());
    }

    #[test]
    fn transform_checks_dimensions() {
        let (v1, v2) = correlated_views(30, 5);
        let cca = Cca::fit(&v1, &v2, 1, 1e-2).unwrap();
        assert!(cca.transform_view(0, &Matrix::zeros(7, 30)).is_err());
    }
}
