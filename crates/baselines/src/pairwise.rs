//! Pairwise wrappers used by the CCA (BST) / CCA (AVG) and KCCA (BST) / KCCA (AVG)
//! baselines.
//!
//! With `m > 2` views the paper runs plain (kernel) CCA on all `m(m−1)/2` pairs of
//! views. "BST" reports the best-performing pair (chosen on validation data); "AVG"
//! combines all pairs — by averaging RLS decision scores, or by majority vote for kNN.
//! The selection/combination needs labels and a learner, so it lives in the experiment
//! harness; this module fits the per-pair models and exposes their embeddings.

use crate::{BaselineError, Cca, Kcca, Result};
use linalg::Matrix;

/// All unordered pairs `(p, q)` with `p < q` of `m` views — the paper's `m(m−1)/2`
/// two-view subsets.
pub fn view_pairs(m: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::with_capacity(m * m.saturating_sub(1) / 2);
    for p in 0..m {
        for q in (p + 1)..m {
            pairs.push((p, q));
        }
    }
    pairs
}

/// CCA fitted on every pair of views.
#[derive(Debug, Clone)]
pub struct PairwiseCca {
    pairs: Vec<(usize, usize)>,
    models: Vec<Cca>,
}

impl PairwiseCca {
    /// Fit plain CCA on every pair of the given `d_p × N` views.
    pub fn fit(views: &[Matrix], rank: usize, epsilon: f64) -> Result<Self> {
        let pairs = view_pairs(views.len());
        let mut models = Vec::with_capacity(pairs.len());
        for &(p, q) in &pairs {
            models.push(Cca::fit(&views[p], &views[q], rank, epsilon)?);
        }
        Ok(Self { pairs, models })
    }

    /// Rebuild from per-pair models (the persistence path): `models` must hold one
    /// fitted [`Cca`] per unordered pair of `num_views` views, in [`view_pairs`] order.
    pub fn from_models(num_views: usize, models: Vec<Cca>) -> Result<Self> {
        let pairs = view_pairs(num_views);
        if models.len() != pairs.len() {
            return Err(BaselineError::InvalidInput(format!(
                "{num_views} views need {} pair models, got {}",
                pairs.len(),
                models.len()
            )));
        }
        Ok(Self { pairs, models })
    }

    /// The view-index pairs, parallel to [`PairwiseCca::models`].
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// The fitted per-pair models.
    pub fn models(&self) -> &[Cca] {
        &self.models
    }

    /// Embedding (`N × 2r`) of the given instances under the pair at `index`.
    pub fn transform_pair(&self, index: usize, views: &[Matrix]) -> Result<Matrix> {
        let (p, q) = self.pairs[index];
        self.models[index].transform(&views[p], &views[q])
    }

    /// Embeddings for every pair, in pair order.
    pub fn transform_all(&self, views: &[Matrix]) -> Result<Vec<Matrix>> {
        (0..self.pairs.len())
            .map(|i| self.transform_pair(i, views))
            .collect()
    }
}

/// Kernel CCA fitted on every pair of view kernels.
#[derive(Debug, Clone)]
pub struct PairwiseKcca {
    pairs: Vec<(usize, usize)>,
    models: Vec<Kcca>,
}

impl PairwiseKcca {
    /// Fit KCCA on every pair of the given centered `N × N` Gram matrices.
    pub fn fit(kernels: &[Matrix], rank: usize, epsilon: f64) -> Result<Self> {
        let pairs = view_pairs(kernels.len());
        let mut models = Vec::with_capacity(pairs.len());
        for &(p, q) in &pairs {
            models.push(Kcca::fit(&kernels[p], &kernels[q], rank, epsilon)?);
        }
        Ok(Self { pairs, models })
    }

    /// Rebuild from per-pair models (the persistence path): `models` must hold one
    /// fitted [`Kcca`] per unordered pair of `num_views` kernels, in [`view_pairs`]
    /// order.
    pub fn from_models(num_views: usize, models: Vec<Kcca>) -> Result<Self> {
        let pairs = view_pairs(num_views);
        if models.len() != pairs.len() {
            return Err(BaselineError::InvalidInput(format!(
                "{num_views} views need {} pair models, got {}",
                pairs.len(),
                models.len()
            )));
        }
        Ok(Self { pairs, models })
    }

    /// The view-index pairs, parallel to [`PairwiseKcca::models`].
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// The fitted per-pair models.
    pub fn models(&self) -> &[Kcca] {
        &self.models
    }

    /// Embedding (`N × 2r`) of the training instances under the pair at `index`.
    pub fn transform_pair(&self, index: usize, kernels: &[Matrix]) -> Result<Matrix> {
        let (p, q) = self.pairs[index];
        self.models[index].transform(&kernels[p], &kernels[q])
    }

    /// Embeddings for every pair, in pair order.
    pub fn transform_all(&self, kernels: &[Matrix]) -> Result<Vec<Matrix>> {
        (0..self.pairs.len())
            .map(|i| self.transform_pair(i, kernels))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::{center_kernel, gram_matrix, GaussianRng, Kernel};

    #[test]
    fn pairs_enumeration() {
        assert_eq!(view_pairs(2), vec![(0, 1)]);
        assert_eq!(view_pairs(3), vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(view_pairs(4).len(), 6);
        assert!(view_pairs(1).is_empty());
    }

    fn three_views(n: usize) -> Vec<Matrix> {
        let mut rng = GaussianRng::new(9);
        let dims = [5usize, 4, 3];
        let mut views: Vec<Matrix> = dims.iter().map(|&d| Matrix::zeros(d, n)).collect();
        for j in 0..n {
            let t = rng.standard_normal();
            for (v, &d) in views.iter_mut().zip(dims.iter()) {
                for i in 0..d {
                    v[(i, j)] = t * (i as f64 + 0.5) + 0.2 * rng.standard_normal();
                }
            }
        }
        views
    }

    #[test]
    fn pairwise_cca_fits_all_pairs() {
        let views = three_views(80);
        let pw = PairwiseCca::fit(&views, 2, 1e-2).unwrap();
        assert_eq!(pw.pairs().len(), 3);
        assert_eq!(pw.models().len(), 3);
        let all = pw.transform_all(&views).unwrap();
        assert_eq!(all.len(), 3);
        for z in &all {
            assert_eq!(z.shape(), (80, 4));
        }
        // The shared latent signal means every pair has a high leading correlation.
        for model in pw.models() {
            assert!(model.correlations()[0] > 0.9);
        }
    }

    #[test]
    fn pairwise_kcca_fits_all_pairs() {
        let views = three_views(40);
        let kernels: Vec<Matrix> = views
            .iter()
            .map(|v| center_kernel(&gram_matrix(v, Kernel::Linear)))
            .collect();
        let pw = PairwiseKcca::fit(&kernels, 2, 1e-1).unwrap();
        assert_eq!(pw.pairs().len(), 3);
        let embeddings = pw.transform_all(&kernels).unwrap();
        for z in &embeddings {
            assert_eq!(z.shape(), (40, 4));
        }
    }
}
