//! Baseline multi-view dimension-reduction methods compared against TCCA.
//!
//! The paper's evaluation (Tables 1–4, Figures 3–10) compares TCCA/KTCCA against:
//!
//! | Name in paper | Type | Module |
//! |---|---|---|
//! | BSF / CAT | best single view / feature concatenation | [`feature`] |
//! | CCA (BST) / CCA (AVG) | two-view regularized CCA over all view pairs | [`cca`], [`pairwise`] |
//! | CCA-LS | multiset CCA via coupled least squares (Vía et al. 2007) | [`cca_ls`] |
//! | CCA-MAXVAR | multiset CCA via SVD (Kettenring 1971) | [`maxvar`] |
//! | DSE | distributed spectral embedding (Long et al. 2008) | [`dse`] |
//! | SSMVD | structured-sparsity multi-view DR (Han et al. 2012) | [`ssmvd`] |
//! | BSK / AVG | best single kernel / averaged kernels | [`feature`] (kernel helpers) |
//! | KCCA (BST) / KCCA (AVG) | two-view kernel CCA (Hardoon et al. 2004) | [`kcca`] |
//!
//! plus [`pca`], which DSE and SSMVD use as their per-view pre-reduction step (the paper
//! reduces each view to 100 principal components before learning the consensus).
//!
//! Conventions shared across the crate: views are `d_p × N` matrices with instances as
//! columns (the paper's layout); every method produces an **embedding** with instances
//! as *rows* (`N × dim`) ready to feed the downstream learners.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cca;
pub mod cca_ls;
pub mod dse;
pub mod feature;
pub mod kcca;
pub mod maxvar;
pub mod pairwise;
pub mod pca;
pub mod ssmvd;

mod error;

pub use cca::Cca;
pub use cca_ls::CcaLs;
pub use dse::Dse;
pub use error::BaselineError;
pub use kcca::Kcca;
pub use maxvar::CcaMaxVar;
pub use pairwise::{view_pairs, PairwiseCca, PairwiseKcca};
pub use pca::Pca;
pub use ssmvd::Ssmvd;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, BaselineError>;
