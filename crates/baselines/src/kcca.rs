//! Two-view kernel canonical correlation analysis (Hardoon et al. 2004).
//!
//! KCCA maximizes `aᵀ K₁ K₂ b` subject to the partial-least-squares–regularized
//! constraints `aᵀ(K₁² + εK₁)a = 1` and `bᵀ(K₂² + εK₂)b = 1`, which avoids the trivial
//! perfect correlations a full-rank kernel would otherwise allow. Writing
//! `S_p = (K_p² + εK_p)^{1/2}`, the solutions come from the SVD of
//! `T = S₁^{-1} K₁ K₂ S₂^{-1}`: `a_k = S₁^{-1} u_k`, `b_k = S₂^{-1} v_k`, with the
//! canonical correlations given by the singular values. Projections are
//! `Z₁ = K₁ A`, `Z₂ = K₂ B`, concatenated into the downstream representation.
//!
//! This is the KCCA (BST)/(AVG) baseline of the paper's non-linear experiments.

use crate::{BaselineError, Result};
use linalg::{Matrix, Svd, SymmetricEigen};

/// A fitted two-view KCCA model.
#[derive(Debug, Clone)]
pub struct Kcca {
    /// Dual coefficient matrices `A`, `B` (`N × r`).
    coefficients: [Matrix; 2],
    /// Canonical correlations (singular values), descending.
    correlations: Vec<f64>,
}

impl Kcca {
    /// Fit KCCA on two centered `N × N` Gram matrices.
    ///
    /// * `rank` — number of canonical directions.
    /// * `epsilon` — the PLS-style regularizer ε (tuned over `{10⁻⁷, …, 10²}` in the
    ///   paper's kernel experiments).
    pub fn fit(k1: &Matrix, k2: &Matrix, rank: usize, epsilon: f64) -> Result<Self> {
        if k1.shape() != k2.shape() || !k1.is_square() {
            return Err(BaselineError::InvalidInput(format!(
                "kernels must be square and share their shape, got {:?} and {:?}",
                k1.shape(),
                k2.shape()
            )));
        }
        if rank == 0 {
            return Err(BaselineError::InvalidInput("rank must be positive".into()));
        }

        let w1 = regularized_inverse_sqrt(k1, epsilon)?;
        let w2 = regularized_inverse_sqrt(k2, epsilon)?;

        // T = S₁⁻¹ K₁ K₂ S₂⁻¹
        let t = w1.matmul(k1)?.matmul(k2)?.matmul(&w2)?;
        let svd = Svd::new(&t)?;
        let r = rank.min(svd.len());

        let a = w1.matmul(&svd.u.leading_columns(r))?;
        let b = w2.matmul(&svd.v.leading_columns(r))?;
        Ok(Self {
            coefficients: [a, b],
            correlations: svd.singular_values[..r].to_vec(),
        })
    }

    /// Rebuild a fitted model from its parts (the persistence path). Both coefficient
    /// matrices must share their shape (`N × r`).
    pub fn from_parts(coefficients: [Matrix; 2], correlations: Vec<f64>) -> Result<Self> {
        if coefficients[0].shape() != coefficients[1].shape() {
            return Err(BaselineError::InvalidInput(format!(
                "coefficient matrices disagree: {:?} vs {:?}",
                coefficients[0].shape(),
                coefficients[1].shape()
            )));
        }
        if coefficients[0].cols() != correlations.len() {
            return Err(BaselineError::InvalidInput(format!(
                "coefficients have {} columns but {} correlations given",
                coefficients[0].cols(),
                correlations.len()
            )));
        }
        Ok(Self {
            coefficients,
            correlations,
        })
    }

    /// Canonical correlations (descending).
    pub fn correlations(&self) -> &[f64] {
        &self.correlations
    }

    /// Dual coefficients for the two views (`N × r` each).
    pub fn coefficients(&self) -> &[Matrix; 2] {
        &self.coefficients
    }

    /// Project one view given its (train-or-test × train) kernel block:
    /// `Z_p = K_p A_p` (`M × r`).
    pub fn transform_view(&self, which: usize, kernel_block: &Matrix) -> Result<Matrix> {
        assert!(which < 2, "view index must be 0 or 1");
        let coeff = &self.coefficients[which];
        if kernel_block.cols() != coeff.rows() {
            return Err(BaselineError::InvalidInput(format!(
                "kernel block has {} columns but the model was fit on {} instances",
                kernel_block.cols(),
                coeff.rows()
            )));
        }
        Ok(kernel_block.matmul(coeff)?)
    }

    /// Project both views and concatenate (`M × 2r`).
    pub fn transform(&self, k1_block: &Matrix, k2_block: &Matrix) -> Result<Matrix> {
        let z1 = self.transform_view(0, k1_block)?;
        let z2 = self.transform_view(1, k2_block)?;
        Ok(z1.hstack(&z2)?)
    }
}

/// `(K² + εK)^{-1/2}` computed through the eigendecomposition of `K`, with eigenvalue
/// flooring for the (centered-kernel) zero modes.
fn regularized_inverse_sqrt(k: &Matrix, epsilon: f64) -> Result<Matrix> {
    let eig = SymmetricEigen::new(k)?;
    let max_eig = eig.eigenvalues.first().copied().unwrap_or(0.0).max(1e-300);
    let floor = max_eig * 1e-12;
    Ok(eig.spectral_map(|l| {
        let l = l.max(0.0);
        let v = l * l + epsilon * l;
        if v > floor {
            1.0 / v.sqrt()
        } else {
            0.0
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::{center_kernel, gram_matrix, GaussianRng, Kernel};

    fn correlated_kernels(n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = GaussianRng::new(seed);
        let mut v1 = Matrix::zeros(4, n);
        let mut v2 = Matrix::zeros(3, n);
        for j in 0..n {
            let t = rng.standard_normal();
            for i in 0..4 {
                v1[(i, j)] = t * (i as f64 + 1.0) + 0.1 * rng.standard_normal();
            }
            for i in 0..3 {
                v2[(i, j)] = -t * (i as f64 + 0.5) + 0.1 * rng.standard_normal();
            }
        }
        (
            center_kernel(&gram_matrix(&v1, Kernel::Linear)),
            center_kernel(&gram_matrix(&v2, Kernel::Linear)),
        )
    }

    #[test]
    fn finds_high_correlation_for_shared_signal() {
        let (k1, k2) = correlated_kernels(60, 71);
        let kcca = Kcca::fit(&k1, &k2, 2, 1e-1).unwrap();
        assert!(
            kcca.correlations()[0] > 0.8,
            "corr {:?}",
            kcca.correlations()
        );
        assert!(kcca.correlations()[0] <= 1.0 + 1e-6);
    }

    #[test]
    fn transform_shapes() {
        let (k1, k2) = correlated_kernels(40, 72);
        let kcca = Kcca::fit(&k1, &k2, 3, 1e-2).unwrap();
        let z = kcca.transform(&k1, &k2).unwrap();
        assert_eq!(z.shape(), (40, 6));
        // A "test" block with 5 rows projects to 5 rows.
        let block = k1.select_rows(&[0, 1, 2, 3, 4]);
        let z_test = kcca.transform_view(0, &block).unwrap();
        assert_eq!(z_test.shape(), (5, 3));
    }

    #[test]
    fn heavier_regularization_reduces_correlation() {
        let (k1, k2) = correlated_kernels(50, 73);
        let light = Kcca::fit(&k1, &k2, 1, 1e-3).unwrap();
        let heavy = Kcca::fit(&k1, &k2, 1, 1e2).unwrap();
        assert!(heavy.correlations()[0] <= light.correlations()[0] + 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        let (k1, _) = correlated_kernels(20, 74);
        assert!(Kcca::fit(&k1, &Matrix::zeros(10, 10), 1, 1e-2).is_err());
        assert!(Kcca::fit(&k1, &k1, 0, 1e-2).is_err());
        let model = Kcca::fit(&k1, &k1, 1, 1e-2).unwrap();
        assert!(model.transform_view(0, &Matrix::zeros(5, 7)).is_err());
    }
}
