//! Error type for the baseline methods.

use std::fmt;

/// Errors reported by the baseline dimension-reduction methods.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// Inputs had inconsistent shapes (e.g. views with different instance counts).
    InvalidInput(String),
    /// An underlying linear-algebra routine failed.
    Linalg(linalg::LinalgError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            BaselineError::Linalg(err) => write!(f, "linear algebra failure: {err}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<linalg::LinalgError> for BaselineError {
    fn from(err: linalg::LinalgError) -> Self {
        BaselineError::Linalg(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = BaselineError::InvalidInput("views disagree".into());
        assert!(e.to_string().contains("views disagree"));
        assert!(e.source().is_none());
        let e: BaselineError = linalg::LinalgError::NotSquare { rows: 1, cols: 2 }.into();
        assert!(e.source().is_some());
    }
}
