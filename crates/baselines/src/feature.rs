//! Feature-level baselines: BSF (best single view), CAT (concatenation) and the kernel
//! analogues BSK / AVG.
//!
//! These are the "no common subspace" baselines of the paper. BSF/BSK evaluate every
//! single view (or kernel) and report the best; CAT stacks L2-normalized features of all
//! views; AVG averages the per-view kernels. The selection of the *best* view happens in
//! the experiment harness (it needs validation accuracy); this module provides the
//! representations.

use linalg::Matrix;

/// Transpose a `d × N` view into the `N × d` instance-rows layout used by the learners.
pub fn view_as_instances(view: &Matrix) -> Matrix {
    view.transpose()
}

/// L2-normalize each instance (column) of a `d × N` view.
///
/// The paper's CAT baseline concatenates *normalized* features so that views with large
/// dynamic range do not dominate the stacked representation.
pub fn l2_normalize_instances(view: &Matrix) -> Matrix {
    let mut out = view.clone();
    for j in 0..out.cols() {
        let norm: f64 = (0..out.rows())
            .map(|i| out[(i, j)] * out[(i, j)])
            .sum::<f64>()
            .sqrt();
        if norm > 1e-12 {
            for i in 0..out.rows() {
                out[(i, j)] /= norm;
            }
        }
    }
    out
}

/// The CAT baseline: concatenate the L2-normalized features of all views into a single
/// long vector per instance. Returns an `N × (Σ d_p)` matrix (instances as rows).
pub fn concatenate_views(views: &[Matrix]) -> Matrix {
    assert!(!views.is_empty(), "need at least one view");
    let normalized: Vec<Matrix> = views.iter().map(l2_normalize_instances).collect();
    let mut stacked = normalized[0].clone();
    for v in &normalized[1..] {
        stacked = stacked.vstack(v).expect("views share the instance axis");
    }
    stacked.transpose()
}

/// The AVG kernel baseline: average the (trace-normalized) per-view Gram matrices.
pub fn average_kernels(kernels: &[Matrix]) -> Matrix {
    assert!(!kernels.is_empty(), "need at least one kernel");
    let n = kernels[0].rows();
    let mut acc = Matrix::zeros(n, n);
    for k in kernels {
        assert_eq!(k.shape(), (n, n), "kernels must share their shape");
        let trace = k.trace().max(1e-12);
        acc.axpy(n as f64 / trace, k).expect("same shape");
    }
    acc.scale(1.0 / kernels.len() as f64)
}

/// Convert a Gram matrix into the squared-distance matrix
/// `d²(i, j) = k(i,i) + k(j,j) − 2 k(i,j)` used by kNN over kernel representations.
pub fn kernel_to_distances(kernel: &Matrix) -> Matrix {
    let n = kernel.rows();
    let mut out = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            out[(i, j)] = (kernel[(i, i)] + kernel[(j, j)] - 2.0 * kernel[(i, j)]).max(0.0);
        }
    }
    out
}

/// Cross distances between two instance sets given the blocks of a joint kernel:
/// `d²(i, j) = k_test(i,i) + k_train(j,j) − 2 k_cross(i,j)`.
pub fn cross_kernel_distances(
    k_test_diag: &[f64],
    k_train_diag: &[f64],
    k_cross: &Matrix,
) -> Matrix {
    assert_eq!(k_cross.rows(), k_test_diag.len());
    assert_eq!(k_cross.cols(), k_train_diag.len());
    let mut out = Matrix::zeros(k_cross.rows(), k_cross.cols());
    for i in 0..k_cross.rows() {
        for j in 0..k_cross.cols() {
            out[(i, j)] = (k_test_diag[i] + k_train_diag[j] - 2.0 * k_cross[(i, j)]).max(0.0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_gives_unit_columns() {
        let v = Matrix::from_rows(&[vec![3.0, 0.0, 0.0], vec![4.0, 2.0, 0.0]]).unwrap();
        let n = l2_normalize_instances(&v);
        assert!((n[(0, 0)] - 0.6).abs() < 1e-12);
        assert!((n[(1, 0)] - 0.8).abs() < 1e-12);
        assert!((n[(1, 1)] - 1.0).abs() < 1e-12);
        // Zero columns stay zero.
        assert_eq!(n[(0, 2)], 0.0);
    }

    #[test]
    fn concatenation_shape_and_content() {
        let v1 = Matrix::from_rows(&[vec![1.0, 0.0]]).unwrap();
        let v2 = Matrix::from_rows(&[vec![0.0, 2.0], vec![0.0, 0.0]]).unwrap();
        let cat = concatenate_views(&[v1, v2]);
        assert_eq!(cat.shape(), (2, 3));
        // First instance: view1 feature normalized to 1, view2 features 0.
        assert!((cat[(0, 0)] - 1.0).abs() < 1e-12);
        assert_eq!(cat[(0, 1)], 0.0);
        // Second instance: view2's first feature normalized to 1.
        assert!((cat[(1, 1)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn view_as_instances_transposes() {
        let v = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let x = view_as_instances(&v);
        assert_eq!(x[(1, 0)], 2.0);
    }

    #[test]
    fn kernel_average_and_distance() {
        let k1 = Matrix::identity(3);
        let k2 = Matrix::identity(3).scale(4.0);
        let avg = average_kernels(&[k1.clone(), k2]);
        // Trace normalization makes both kernels contribute identically.
        assert!((avg[(0, 0)] - 1.0).abs() < 1e-12);
        let d = kernel_to_distances(&k1);
        assert_eq!(d[(0, 0)], 0.0);
        assert_eq!(d[(0, 1)], 2.0);
    }

    #[test]
    fn cross_distances() {
        let cross = Matrix::from_rows(&[vec![1.0, 0.0]]).unwrap();
        let d = cross_kernel_distances(&[1.0], &[1.0, 1.0], &cross);
        assert_eq!(d[(0, 0)], 0.0);
        assert_eq!(d[(0, 1)], 2.0);
    }
}
