//! CCA-MAXVAR: multiset CCA via the SVD of stacked whitened views (Kettenring 1971).
//!
//! MAXVAR finds a shared latent variable `z` and per-view canonical vectors `h_p`
//! minimizing `Σ_p ‖z − α_p X_pᵀ h_p‖²` (paper Eq. 3.2). After whitening each view
//! (`Y_p = X_pᵀ C̃_pp^{-1/2}`), the optimal `z`'s are the top left singular vectors of
//! the stacked matrix `[Y_1, …, Y_m]` and the canonical vectors are recovered from the
//! corresponding blocks of the right singular vectors. The paper discusses MAXVAR as
//! the classical (but SVD-heavy, non-adaptive) baseline that CCA-LS reformulates.

use crate::{BaselineError, Result};
use linalg::{JointMoments, Matrix, SymmetricEigen};

/// A fitted CCA-MAXVAR model.
#[derive(Debug, Clone)]
pub struct CcaMaxVar {
    means: Vec<Vec<f64>>,
    /// Per-view projection matrices `H_p` (`d_p × r`).
    projections: Vec<Matrix>,
    /// Singular values of the stacked whitened data (per retained component).
    singular_values: Vec<f64>,
}

impl CcaMaxVar {
    /// Fit CCA-MAXVAR on `m` views (`d_p × N`), keeping `rank` components, with ridge
    /// regularizer `epsilon` on every view covariance.
    pub fn fit(views: &[Matrix], rank: usize, epsilon: f64) -> Result<Self> {
        let n = views.first().map_or(0, Matrix::cols);
        for (p, v) in views.iter().enumerate() {
            if v.cols() != n {
                return Err(BaselineError::InvalidInput(format!(
                    "view {p} has {} instances, expected {n}",
                    v.cols()
                )));
            }
        }
        if !views.is_empty() && n == 0 {
            return Err(BaselineError::InvalidInput(
                "cannot fit CCA-MAXVAR on zero instances".into(),
            ));
        }
        let moments = JointMoments::from_views(views)?;
        Self::fit_from_moments(&moments, rank, epsilon)
    }

    /// Fit CCA-MAXVAR from accumulated multi-view moments (the streaming finalize
    /// path).
    ///
    /// Instead of the SVD of the stacked whitened data `[Y_1, …, Y_m]` (which needs
    /// the raw samples), this solves the equivalent eigenproblem of its Gram matrix
    /// `G`, whose blocks `G_pq = N · W_p C_pq W_q` are derivable from mergeable
    /// moments: the eigenvectors of `G` are the right singular vectors of the stack
    /// and `σ_k = sqrt(λ_k)`. [`JointMoments`] is exact, so any chunking of the same
    /// samples produces the same model, bit for bit, as [`CcaMaxVar::fit`].
    pub fn fit_from_moments(moments: &JointMoments, rank: usize, epsilon: f64) -> Result<Self> {
        if moments.dims().len() < 2 {
            return Err(BaselineError::InvalidInput(
                "CCA-MAXVAR needs at least two views".into(),
            ));
        }
        if rank == 0 {
            return Err(BaselineError::InvalidInput("rank must be positive".into()));
        }
        if moments.count() == 0 {
            return Err(BaselineError::InvalidInput(
                "cannot fit CCA-MAXVAR on zero instances".into(),
            ));
        }
        let m = moments.dims().len();
        let n = moments.count() as f64;
        let mut means = Vec::with_capacity(m);
        let mut whiteners = Vec::with_capacity(m);
        for p in 0..m {
            let mut c = moments.covariance(p, p);
            c.add_diagonal(epsilon);
            whiteners.push(c.inverse_sqrt_spd(1e-12)?);
            means.push(moments.mean(p));
        }

        // Gram of the stacked whitened data: G_pq = N · W_p C_pq W_q. Only the upper
        // block triangle is computed; the lower is mirrored so G is exactly symmetric.
        let dims = moments.dims().to_vec();
        let total: usize = dims.iter().sum();
        let mut offsets = Vec::with_capacity(m);
        let mut acc = 0usize;
        for &d in &dims {
            offsets.push(acc);
            acc += d;
        }
        let mut g = Matrix::zeros(total, total);
        for p in 0..m {
            for q in p..m {
                let block = whiteners[p]
                    .matmul(&moments.covariance(p, q))?
                    .matmul(&whiteners[q])?;
                for i in 0..dims[p] {
                    for j in 0..dims[q] {
                        let v = n * block[(i, j)];
                        g[(offsets[p] + i, offsets[q] + j)] = v;
                        g[(offsets[q] + j, offsets[p] + i)] = v;
                    }
                }
            }
        }

        let eig = SymmetricEigen::new(&g)?;
        let r = rank.min(total);
        let singular_values: Vec<f64> = eig.eigenvalues[..r]
            .iter()
            .map(|&l| l.max(0.0).sqrt())
            .collect();

        // Split the eigenvectors (right singular vectors of the stack) into per-view
        // blocks and map back through the whiteners: h_p = W_p v_p.
        let mut projections = Vec::with_capacity(m);
        for p in 0..m {
            let d = dims[p];
            let mut block = Matrix::zeros(d, r);
            for k in 0..r {
                for i in 0..d {
                    block[(i, k)] = eig.eigenvectors[(offsets[p] + i, k)];
                }
            }
            projections.push(whiteners[p].matmul(&block)?);
        }

        Ok(Self {
            means,
            projections,
            singular_values,
        })
    }

    /// Rebuild a fitted model from its parts (the persistence path).
    pub fn from_parts(
        means: Vec<Vec<f64>>,
        projections: Vec<Matrix>,
        singular_values: Vec<f64>,
    ) -> Result<Self> {
        if means.len() != projections.len() {
            return Err(BaselineError::InvalidInput(format!(
                "{} means but {} projections",
                means.len(),
                projections.len()
            )));
        }
        for (p, (mean, proj)) in means.iter().zip(projections.iter()).enumerate() {
            if mean.len() != proj.rows() {
                return Err(BaselineError::InvalidInput(format!(
                    "view {p}: mean has {} entries but projection has {} rows",
                    mean.len(),
                    proj.rows()
                )));
            }
        }
        Ok(Self {
            means,
            projections,
            singular_values,
        })
    }

    /// The per-view training means subtracted before projecting.
    pub fn means(&self) -> &[Vec<f64>] {
        &self.means
    }

    /// Per-view projection matrices (`d_p × r`).
    pub fn projections(&self) -> &[Matrix] {
        &self.projections
    }

    /// Singular values of the stacked whitened views (one per component, descending).
    pub fn singular_values(&self) -> &[f64] {
        &self.singular_values
    }

    /// Project a single view (`d_p × N`) into the common subspace (`N × r`).
    pub fn transform_view(&self, which: usize, view: &Matrix) -> Result<Matrix> {
        // One-part view through the shifted GEMM: centering happens while the
        // kernel packs, so no centered copy of the input is ever allocated. The
        // result is bit-identical to clone-center-then-`t_matmul` (property-tested).
        self.transform_view_cols(which, &linalg::ColsView::from_matrices([view])?)
    }

    /// Zero-copy variant of [`CcaMaxVar::transform_view`] over the horizontal
    /// concatenation of borrowed column blocks: centering happens while the blocked
    /// GEMM packs, so no stitched or centered copy of the input is ever made and the
    /// result is bit-identical to the materialized path.
    pub fn transform_view_cols(&self, which: usize, cols: &linalg::ColsView<'_>) -> Result<Matrix> {
        let proj = &self.projections[which];
        if cols.rows() != proj.rows() {
            return Err(BaselineError::InvalidInput(format!(
                "view {which} has {} features but the model expects {}",
                cols.rows(),
                proj.rows()
            )));
        }
        Ok(cols.shifted_t_matmul(Some(&self.means[which]), proj)?)
    }

    /// Project every view and concatenate the embeddings (`N × m·r`).
    pub fn transform(&self, views: &[Matrix]) -> Result<Matrix> {
        if views.len() != self.projections.len() {
            return Err(BaselineError::InvalidInput(format!(
                "expected {} views, got {}",
                self.projections.len(),
                views.len()
            )));
        }
        let mut out = self.transform_view(0, &views[0])?;
        for (p, v) in views.iter().enumerate().skip(1) {
            out = out.hstack(&self.transform_view(p, v)?)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::GaussianRng;

    fn shared_signal_views(n: usize, seed: u64) -> Vec<Matrix> {
        let mut rng = GaussianRng::new(seed);
        let dims = [5usize, 4, 6];
        let mut views: Vec<Matrix> = dims.iter().map(|&d| Matrix::zeros(d, n)).collect();
        for j in 0..n {
            let t = rng.standard_normal();
            for v in views.iter_mut() {
                for i in 0..v.rows() {
                    v[(i, j)] = t * (0.5 + i as f64) + 0.2 * rng.standard_normal();
                }
            }
        }
        views
    }

    #[test]
    fn dominant_component_captures_shared_signal() {
        let views = shared_signal_views(300, 31);
        let model = CcaMaxVar::fit(&views, 2, 1e-3).unwrap();
        // The leading singular value of the stacked whitened data approaches sqrt(m·N/N)
        // when views are perfectly correlated; just require a clear gap.
        assert!(model.singular_values()[0] > 1.5 * model.singular_values()[1]);
        let z = model.transform(&views).unwrap();
        assert_eq!(z.shape(), (300, 6));
    }

    #[test]
    fn agrees_with_ccals_on_the_dominant_direction() {
        use crate::CcaLs;
        let views = shared_signal_views(250, 32);
        let maxvar = CcaMaxVar::fit(&views, 1, 1e-3).unwrap();
        let ccals = CcaLs::fit(&views, 1, 1e-3).unwrap();
        // Compare the direction of the first view's projection (up to sign/scale).
        let a = maxvar.projections()[0].column(0);
        let b = ccals.projections()[0].column(0);
        let na: f64 = a.iter().map(|v| v * v).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        let cos = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| x * y)
            .sum::<f64>()
            .abs()
            / (na * nb);
        assert!(cos > 0.98, "cosine similarity {cos}");
    }

    #[test]
    fn rejects_bad_inputs() {
        let views = shared_signal_views(40, 33);
        assert!(CcaMaxVar::fit(&views[..1], 1, 1e-2).is_err());
        assert!(CcaMaxVar::fit(&views, 0, 1e-2).is_err());
        let mut bad = views.clone();
        bad[2] = Matrix::zeros(6, 39);
        assert!(CcaMaxVar::fit(&bad, 1, 1e-2).is_err());
        let model = CcaMaxVar::fit(&views, 1, 1e-2).unwrap();
        assert!(model.transform(&views[..2]).is_err());
    }
}
