//! SSMVD: sparse (structured-sparsity) unsupervised multi-view dimension reduction
//! (Han et al. 2012).
//!
//! Han et al. learn a low-dimensional consensus representation while a structured
//! sparsity-inducing norm (Jenatton et al. 2011) lets different subsets of *feature
//! groups* — here, the views — contribute adaptively. This reproduction implements the
//! standard iteratively-reweighted-least-squares treatment of the group (ℓ₂,₁) penalty
//! on top of the same per-view PCA + consensus factorization pipeline as DSE:
//!
//! 1. reduce each view with PCA (paper: 100 dims),
//! 2. alternately (a) fit the consensus `B` to the *view-weighted* stacked embeddings
//!    and (b) update each view's weight as `w_p ∝ 1 / (‖A_p − B P_p‖_F + δ)`, the IRLS
//!    surrogate of the group-sparse penalty, so poorly-agreeing views are down-weighted
//!    (possibly to ≈ 0, the "subsets of features" behaviour).
//!
//! The substitution (IRLS instead of the exact proximal solver) is recorded in
//! DESIGN.md; it preserves the behaviour the experiments compare: a consensus embedding
//! that is more robust than DSE when one view is noisy, at a similar cost.

use crate::dse::per_view_pca;
use crate::{BaselineError, Result};
use linalg::{Matrix, Svd};

/// SSMVD's IRLS consensus stage on per-view embeddings `A_p` (`N × k_p`, instances as
/// rows): alternate between the view-weighted consensus SVD and the IRLS group-sparse
/// weight update. Returns `(B, view_weights, iterations)`.
///
/// Shared between [`Ssmvd::fit`] and the `mvcore` pipeline (which performs the
/// per-view PCA pre-reduction before calling this).
pub fn irls_consensus(
    embeddings: &[Matrix],
    rank: usize,
    options: &SsmvdOptions,
) -> Result<(Matrix, Vec<f64>, usize)> {
    if embeddings.is_empty() {
        return Err(BaselineError::InvalidInput("need at least one view".into()));
    }
    if rank == 0 {
        return Err(BaselineError::InvalidInput("rank must be positive".into()));
    }
    let m = embeddings.len();
    let n = embeddings[0].rows();

    // Unit-Frobenius normalization, shared with DSE's consensus.
    let normalized = crate::dse::normalize_unit_frobenius(embeddings);

    let mut weights = vec![1.0 / m as f64; m];
    let mut b = Matrix::zeros(n, rank.min(n.max(1)));
    let mut iterations = 0;
    for iter in 0..options.max_iterations.max(1) {
        iterations = iter + 1;
        // (a) consensus for the current weights.
        let mut stacked: Option<Matrix> = None;
        for (a, &w) in normalized.iter().zip(weights.iter()) {
            let scaled = a.scale(w.sqrt());
            stacked = Some(match stacked {
                None => scaled,
                Some(acc) => acc.hstack(&scaled)?,
            });
        }
        let svd = Svd::new(&stacked.expect("at least one view"))?;
        let r = rank.min(svd.len());
        b = svd.u.leading_columns(r);

        // (b) IRLS view-weight update from the per-view residuals.
        let mut residuals = Vec::with_capacity(m);
        for a in &normalized {
            let p = b.t_matmul(a)?;
            let approx = b.matmul(&p)?;
            residuals.push(a.sub(&approx)?.frobenius_norm());
        }
        let mut new_weights: Vec<f64> = residuals
            .iter()
            .map(|res| 1.0 / (res + options.delta))
            .collect();
        let sum: f64 = new_weights.iter().sum();
        for w in &mut new_weights {
            *w /= sum;
        }
        let change: f64 = new_weights
            .iter()
            .zip(weights.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        weights = new_weights;
        if change < 1e-8 {
            break;
        }
    }
    Ok((b, weights, iterations))
}

/// A fitted (transductive) SSMVD embedding.
#[derive(Debug, Clone)]
pub struct Ssmvd {
    embedding: Matrix,
    view_weights: Vec<f64>,
    iterations: usize,
}

/// Options for the IRLS loop.
#[derive(Debug, Clone)]
pub struct SsmvdOptions {
    /// PCA dimension per view before consensus (paper uses 100).
    pub per_view_dim: usize,
    /// Number of reweighting iterations.
    pub max_iterations: usize,
    /// Smoothing constant δ in the IRLS weight update.
    pub delta: f64,
}

impl Default for SsmvdOptions {
    fn default() -> Self {
        Self {
            per_view_dim: 100,
            max_iterations: 10,
            delta: 1e-6,
        }
    }
}

impl Ssmvd {
    /// Fit SSMVD on `m` views (`d_p × N`) with default options.
    pub fn fit(views: &[Matrix], rank: usize, per_view_dim: usize) -> Result<Self> {
        Self::fit_with_options(
            views,
            rank,
            SsmvdOptions {
                per_view_dim,
                ..SsmvdOptions::default()
            },
        )
    }

    /// Fit SSMVD with explicit options.
    pub fn fit_with_options(views: &[Matrix], rank: usize, options: SsmvdOptions) -> Result<Self> {
        if views.is_empty() {
            return Err(BaselineError::InvalidInput("need at least one view".into()));
        }
        if rank == 0 || options.per_view_dim == 0 {
            return Err(BaselineError::InvalidInput(
                "rank and per-view dimension must be positive".into(),
            ));
        }
        let n = views[0].cols();
        for (p, v) in views.iter().enumerate() {
            if v.cols() != n {
                return Err(BaselineError::InvalidInput(format!(
                    "view {p} has {} instances, expected {n}",
                    v.cols()
                )));
            }
        }
        // Stage 1: per-view PCA, then the shared IRLS consensus.
        let embeddings = per_view_pca(views, options.per_view_dim)?;
        let (embedding, view_weights, iterations) = irls_consensus(&embeddings, rank, &options)?;

        Ok(Self {
            embedding,
            view_weights,
            iterations,
        })
    }

    /// The consensus embedding (`N × r`), by value — the train-time representation
    /// SSMVD produces (the method is transductive and has no out-of-sample map).
    pub fn into_embedding(self) -> Matrix {
        self.embedding
    }

    /// The adaptive view weights (sum to 1).
    pub fn view_weights(&self) -> &[f64] {
        &self.view_weights
    }

    /// IRLS iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::GaussianRng;

    /// Two informative views sharing a signal plus one pure-noise view.
    fn views_with_noise_view(n: usize, seed: u64) -> Vec<Matrix> {
        let mut rng = GaussianRng::new(seed);
        let mut v1 = Matrix::zeros(6, n);
        let mut v2 = Matrix::zeros(5, n);
        let mut v3 = Matrix::zeros(7, n);
        for j in 0..n {
            let t = rng.standard_normal();
            for i in 0..6 {
                v1[(i, j)] = t * (i as f64 + 1.0) + 0.1 * rng.standard_normal();
            }
            for i in 0..5 {
                v2[(i, j)] = t * (2.0 - i as f64) + 0.1 * rng.standard_normal();
            }
            for i in 0..7 {
                v3[(i, j)] = rng.standard_normal(); // pure noise
            }
        }
        vec![v1, v2, v3]
    }

    #[test]
    fn embedding_is_orthonormal() {
        let views = views_with_noise_view(80, 61);
        let model = Ssmvd::fit(&views, 3, 10).unwrap();
        assert!(model.iterations() >= 1);
        let b = model.into_embedding();
        assert_eq!(b.shape(), (80, 3));
        let btb = b.t_matmul(&b).unwrap();
        assert!(btb.sub(&Matrix::identity(3)).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn noise_view_is_downweighted() {
        let views = views_with_noise_view(150, 62);
        let model = Ssmvd::fit(&views, 2, 8).unwrap();
        let w = model.view_weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(
            w[2] < w[0] && w[2] < w[1],
            "noise view should get the smallest weight: {w:?}"
        );
    }

    #[test]
    fn rejects_bad_input() {
        let views = views_with_noise_view(20, 63);
        assert!(Ssmvd::fit(&[], 2, 10).is_err());
        assert!(Ssmvd::fit(&views, 0, 10).is_err());
        assert!(Ssmvd::fit(&views, 2, 0).is_err());
    }
}
