//! CCA-LS: multiset CCA via coupled least squares regressions (Vía et al. 2007).
//!
//! The paper's main multi-view CCA competitor. CCA-MAXVAR (Eq. 3.2) is reformulated as
//! the coupled LS problem of Eq. 3.3: find per-view canonical vectors `h_p` and a shared
//! latent variable `z` minimizing `Σ_p ‖X_pᵀ h_p − z‖²`, solved by alternating
//!
//! 1. `h_p ← argmin ‖X_pᵀ h_p − z‖² + ε‖h_p‖²` (a ridge regression per view), and
//! 2. `z ← (1/m) Σ_p X_pᵀ h_p`, re-orthogonalized against previously extracted
//!    components and normalized,
//!
//! exactly the adaptive scheme of Vía et al. Only *pairwise* correlations are exploited
//! — the property TCCA improves on.

use crate::{BaselineError, Result};
use linalg::{center_rows, dot, normalize, Cholesky, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fitted CCA-LS (multiset CCA) model.
#[derive(Debug, Clone)]
pub struct CcaLs {
    means: Vec<Vec<f64>>,
    /// Per-view projection matrices `H_p` (`d_p × r`).
    projections: Vec<Matrix>,
    /// Average per-component alignment `1 − residual`, a proxy for the canonical
    /// correlation of each extracted component (descending in extraction order).
    alignments: Vec<f64>,
    iterations: usize,
}

/// Options for the alternating optimization.
#[derive(Debug, Clone)]
pub struct CcaLsOptions {
    /// Ridge regularizer ε on every per-view regression.
    pub epsilon: f64,
    /// Maximum alternating iterations per component.
    pub max_iterations: usize,
    /// Convergence tolerance on the change of `z`.
    pub tolerance: f64,
    /// RNG seed for the initialization of `z`.
    pub seed: u64,
}

impl Default for CcaLsOptions {
    fn default() -> Self {
        Self {
            epsilon: 1e-2,
            max_iterations: 100,
            tolerance: 1e-8,
            seed: 13,
        }
    }
}

impl CcaLs {
    /// Fit CCA-LS on `m` views (`d_p × N`, shared instance axis) extracting `rank`
    /// components with default options.
    pub fn fit(views: &[Matrix], rank: usize, epsilon: f64) -> Result<Self> {
        Self::fit_with_options(
            views,
            rank,
            CcaLsOptions {
                epsilon,
                ..CcaLsOptions::default()
            },
        )
    }

    /// Fit with explicit options.
    pub fn fit_with_options(views: &[Matrix], rank: usize, options: CcaLsOptions) -> Result<Self> {
        if views.len() < 2 {
            return Err(BaselineError::InvalidInput(
                "CCA-LS needs at least two views".into(),
            ));
        }
        if rank == 0 {
            return Err(BaselineError::InvalidInput("rank must be positive".into()));
        }
        let n = views[0].cols();
        for (p, v) in views.iter().enumerate() {
            if v.cols() != n {
                return Err(BaselineError::InvalidInput(format!(
                    "view {p} has {} instances, expected {n}",
                    v.cols()
                )));
            }
        }
        let m = views.len();
        let centered: Vec<(Matrix, Vec<f64>)> = views.iter().map(center_rows).collect();

        // Pre-factorize the per-view ridge systems (X_p X_pᵀ + εN I).
        let mut factors = Vec::with_capacity(m);
        for (x, _) in &centered {
            let mut gram = x.gram();
            gram.add_diagonal(options.epsilon * n.max(1) as f64 + 1e-10);
            factors.push(Cholesky::new(&gram)?);
        }

        let mut rng = StdRng::seed_from_u64(options.seed);
        let mut projections: Vec<Matrix> = centered
            .iter()
            .map(|(x, _)| Matrix::zeros(x.rows(), rank))
            .collect();
        let mut previous_z: Vec<Vec<f64>> = Vec::with_capacity(rank);
        let mut alignments = Vec::with_capacity(rank);
        let mut total_iterations = 0;

        for component in 0..rank {
            // Initialize z randomly, orthogonal to previous components.
            let mut z: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            orthogonalize(&mut z, &previous_z);
            if normalize(&mut z) <= 1e-300 {
                z = vec![0.0; n];
                if n > 0 {
                    z[0] = 1.0;
                }
            }

            let mut hs: Vec<Vec<f64>> = vec![Vec::new(); m];
            for iter in 0..options.max_iterations {
                total_iterations = total_iterations.max(iter + 1);
                // Per-view ridge regressions h_p = (X Xᵀ + εNI)⁻¹ X z.
                let mut new_z = vec![0.0; n];
                for (p, (x, _)) in centered.iter().enumerate() {
                    let xz = x.matvec(&z)?;
                    let h = factors[p].solve_vec(&xz)?;
                    let zp = x.t_matvec(&h)?;
                    for (acc, v) in new_z.iter_mut().zip(zp.iter()) {
                        *acc += v / m as f64;
                    }
                    hs[p] = h;
                }
                orthogonalize(&mut new_z, &previous_z);
                let norm = normalize(&mut new_z);
                if norm <= 1e-300 {
                    break;
                }
                // Convergence: change in z direction.
                let delta: f64 = new_z
                    .iter()
                    .zip(z.iter())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                let delta_flipped: f64 = new_z
                    .iter()
                    .zip(z.iter())
                    .map(|(a, b)| (a + b) * (a + b))
                    .sum::<f64>()
                    .sqrt();
                z = new_z;
                if delta.min(delta_flipped) < options.tolerance {
                    break;
                }
            }

            // Store the projection columns and the average alignment of z_p with z.
            let mut alignment = 0.0;
            for (p, (x, _)) in centered.iter().enumerate() {
                if hs[p].is_empty() {
                    hs[p] = vec![0.0; x.rows()];
                }
                projections[p].set_column(component, &hs[p]);
                let mut zp = x.t_matvec(&hs[p])?;
                let norm = normalize(&mut zp);
                if norm > 1e-300 {
                    alignment += dot(&zp, &z).abs() / m as f64;
                }
            }
            alignments.push(alignment);
            previous_z.push(z);
        }

        Ok(Self {
            means: centered.into_iter().map(|(_, m)| m).collect(),
            projections,
            alignments,
            iterations: total_iterations,
        })
    }

    /// Rebuild a fitted model from its parts (the persistence path).
    pub fn from_parts(
        means: Vec<Vec<f64>>,
        projections: Vec<Matrix>,
        alignments: Vec<f64>,
        iterations: usize,
    ) -> Result<Self> {
        if means.len() != projections.len() {
            return Err(BaselineError::InvalidInput(format!(
                "{} means but {} projections",
                means.len(),
                projections.len()
            )));
        }
        for (p, (mean, proj)) in means.iter().zip(projections.iter()).enumerate() {
            if mean.len() != proj.rows() {
                return Err(BaselineError::InvalidInput(format!(
                    "view {p}: mean has {} entries but projection has {} rows",
                    mean.len(),
                    proj.rows()
                )));
            }
        }
        Ok(Self {
            means,
            projections,
            alignments,
            iterations,
        })
    }

    /// The per-view training means subtracted before projecting.
    pub fn means(&self) -> &[Vec<f64>] {
        &self.means
    }

    /// Per-view projection matrices (`d_p × r`).
    pub fn projections(&self) -> &[Matrix] {
        &self.projections
    }

    /// Average alignment (proxy canonical correlation) of each extracted component.
    pub fn alignments(&self) -> &[f64] {
        &self.alignments
    }

    /// Number of alternating iterations used by the slowest component.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Project a single view (`d_p × N`) into the common subspace (`N × r`).
    pub fn transform_view(&self, which: usize, view: &Matrix) -> Result<Matrix> {
        // One-part view through the shifted GEMM: centering happens while the
        // kernel packs, so no centered copy of the input is ever allocated. The
        // result is bit-identical to clone-center-then-`t_matmul` (property-tested).
        self.transform_view_cols(which, &linalg::ColsView::from_matrices([view])?)
    }

    /// Zero-copy variant of [`CcaLs::transform_view`] over the horizontal
    /// concatenation of borrowed column blocks: centering happens while the blocked
    /// GEMM packs, so no stitched or centered copy of the input is ever made and the
    /// result is bit-identical to the materialized path.
    pub fn transform_view_cols(&self, which: usize, cols: &linalg::ColsView<'_>) -> Result<Matrix> {
        let proj = &self.projections[which];
        if cols.rows() != proj.rows() {
            return Err(BaselineError::InvalidInput(format!(
                "view {which} has {} features but the model expects {}",
                cols.rows(),
                proj.rows()
            )));
        }
        Ok(cols.shifted_t_matmul(Some(&self.means[which]), proj)?)
    }

    /// Project every view and concatenate the embeddings (`N × m·r`).
    pub fn transform(&self, views: &[Matrix]) -> Result<Matrix> {
        if views.len() != self.projections.len() {
            return Err(BaselineError::InvalidInput(format!(
                "expected {} views, got {}",
                self.projections.len(),
                views.len()
            )));
        }
        let mut out = self.transform_view(0, &views[0])?;
        for (p, v) in views.iter().enumerate().skip(1) {
            out = out.hstack(&self.transform_view(p, v)?)?;
        }
        Ok(out)
    }
}

fn orthogonalize(z: &mut [f64], previous: &[Vec<f64>]) {
    for prev in previous {
        let proj = dot(z, prev);
        for (zi, pi) in z.iter_mut().zip(prev.iter()) {
            *zi -= proj * pi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::GaussianRng;

    fn shared_signal_views(n: usize, m: usize, seed: u64) -> Vec<Matrix> {
        let mut rng = GaussianRng::new(seed);
        let dims = [6usize, 5, 4, 7];
        let mut views: Vec<Matrix> = (0..m).map(|p| Matrix::zeros(dims[p % 4], n)).collect();
        for j in 0..n {
            let t = rng.standard_normal();
            for v in views.iter_mut() {
                for i in 0..v.rows() {
                    v[(i, j)] = t * ((i + 1) as f64 * 0.7) + 0.15 * rng.standard_normal();
                }
            }
        }
        views
    }

    #[test]
    fn recovers_shared_component_across_three_views() {
        let views = shared_signal_views(250, 3, 21);
        let model = CcaLs::fit(&views, 1, 1e-3).unwrap();
        assert!(
            model.alignments()[0] > 0.95,
            "alignment {:?}",
            model.alignments()
        );
        assert!(model.iterations() >= 1);
        let z = model.transform(&views).unwrap();
        assert_eq!(z.shape(), (250, 3));
    }

    #[test]
    fn components_are_ordered_and_embedding_shapes_are_right() {
        let views = shared_signal_views(120, 3, 22);
        let model = CcaLs::fit(&views, 3, 1e-2).unwrap();
        assert_eq!(model.projections().len(), 3);
        for (p, proj) in model.projections().iter().enumerate() {
            assert_eq!(proj.shape(), (views[p].rows(), 3));
        }
        let z = model.transform(&views).unwrap();
        assert_eq!(z.shape(), (120, 9));
        // The first (shared) component should carry the most alignment.
        assert!(model.alignments()[0] >= model.alignments()[1] - 0.15);
    }

    #[test]
    fn works_with_two_views_like_cca() {
        let views = shared_signal_views(200, 2, 23);
        let model = CcaLs::fit(&views, 1, 1e-3).unwrap();
        assert!(model.alignments()[0] > 0.9);
    }

    #[test]
    fn rejects_bad_inputs() {
        let views = shared_signal_views(30, 3, 24);
        assert!(CcaLs::fit(&views[..1], 1, 1e-2).is_err());
        assert!(CcaLs::fit(&views, 0, 1e-2).is_err());
        let mut bad = views.clone();
        bad[1] = Matrix::zeros(5, 29);
        assert!(CcaLs::fit(&bad, 1, 1e-2).is_err());
        let model = CcaLs::fit(&views, 1, 1e-2).unwrap();
        assert!(model.transform(&views[..2]).is_err());
        assert!(model.transform_view(0, &Matrix::zeros(99, 30)).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let views = shared_signal_views(60, 3, 25);
        let a = CcaLs::fit(&views, 2, 1e-2).unwrap();
        let b = CcaLs::fit(&views, 2, 1e-2).unwrap();
        assert_eq!(a.projections()[0], b.projections()[0]);
    }
}
