//! Principal component analysis.
//!
//! PCA is not itself one of the compared methods, but the paper uses it as the first
//! stage of DSE and SSMVD ("PCA is taken as the dimension reduction method for each
//! view, and the result dimension is set to be 100"), and CCA-MAXVAR's latent variable
//! `z` is "the best possible one-dimensional PCA representation" of the canonical
//! variables. The fit routes through exact mergeable moments ([`JointMoments`]) and the
//! covariance (`d × d`) eigenproblem, so the streaming `partial_fit`/`merge`/`finalize`
//! path reproduces the one-shot fit bit for bit under any chunking.

use crate::{BaselineError, Result};
use linalg::{JointMoments, Matrix, SymmetricEigen};

/// A fitted PCA model for a single `d × N` view.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// `d × r` matrix of principal directions (unit columns).
    components: Matrix,
    /// Variance captured by each direction (descending).
    explained_variance: Vec<f64>,
}

impl Pca {
    /// Fit PCA on a `d × N` view (instances as columns), keeping `rank` components.
    ///
    /// Routes through [`JointMoments`] so that streaming `partial_fit`/`merge` over any
    /// chunking of the same samples finalizes ([`Pca::fit_from_moments`]) to a model
    /// bit-identical to this one-shot fit.
    pub fn fit(view: &Matrix, rank: usize) -> Result<Self> {
        if view.cols() == 0 {
            return Err(BaselineError::InvalidInput(
                "cannot fit PCA on zero instances".into(),
            ));
        }
        let moments = JointMoments::from_views(std::slice::from_ref(view))?;
        Self::fit_from_moments(&moments, rank)
    }

    /// Fit PCA from accumulated single-view moments (the streaming finalize path).
    ///
    /// Because [`JointMoments`] is exact and mergeable, any chunking of the same
    /// samples yields the same moments — and therefore the same model, bit for bit —
    /// as [`Pca::fit`] on the full batch.
    pub fn fit_from_moments(moments: &JointMoments, rank: usize) -> Result<Self> {
        if rank == 0 {
            return Err(BaselineError::InvalidInput("rank must be positive".into()));
        }
        if moments.dims().len() != 1 {
            return Err(BaselineError::InvalidInput(format!(
                "PCA moments must cover exactly one view, got {}",
                moments.dims().len()
            )));
        }
        if moments.count() == 0 {
            return Err(BaselineError::InvalidInput(
                "cannot fit PCA on zero instances".into(),
            ));
        }
        let d = moments.dims()[0];
        let n = moments.count() as usize;
        let r = rank.min(d.min(n));
        let mean = moments.mean(0);
        let cov = moments.covariance(0, 0);
        let eig = SymmetricEigen::new(&cov)?;
        let components = eig.eigenvectors.leading_columns(r);
        let explained_variance = eig.eigenvalues[..r].to_vec();
        Ok(Self {
            mean,
            components,
            explained_variance,
        })
    }

    /// Rebuild a fitted model from its parts (the persistence path). `mean` must have
    /// one entry per feature row of `components`, and `explained_variance` one entry
    /// per retained component.
    pub fn from_parts(
        mean: Vec<f64>,
        components: Matrix,
        explained_variance: Vec<f64>,
    ) -> Result<Self> {
        if mean.len() != components.rows() {
            return Err(BaselineError::InvalidInput(format!(
                "mean has {} entries but components has {} rows",
                mean.len(),
                components.rows()
            )));
        }
        if explained_variance.len() != components.cols() {
            return Err(BaselineError::InvalidInput(format!(
                "explained variance has {} entries but components has {} columns",
                explained_variance.len(),
                components.cols()
            )));
        }
        Ok(Self {
            mean,
            components,
            explained_variance,
        })
    }

    /// The per-feature training means subtracted before projecting.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The principal directions (`d × r`, unit columns).
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Variance captured by each retained direction.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Project a `d × N` view into the principal subspace, producing `N × r` scores.
    pub fn transform(&self, view: &Matrix) -> Result<Matrix> {
        if view.rows() != self.components.rows() {
            return Err(BaselineError::InvalidInput(format!(
                "view has {} features but the model expects {}",
                view.rows(),
                self.components.rows()
            )));
        }
        // One-part view through the shifted GEMM: centering happens while the
        // kernel packs, so no centered copy of the input is ever allocated. The
        // result is bit-identical to clone-center-then-`t_matmul` (property-tested).
        self.transform_cols(&linalg::ColsView::from_matrices([view])?)
    }

    /// Zero-copy variant of [`Pca::transform`] over the horizontal concatenation of
    /// borrowed column blocks: the mean is subtracted while the blocked GEMM packs,
    /// so no stitched or centered copy of the input is ever made and the result is
    /// bit-identical to the materialized path.
    pub fn transform_cols(&self, cols: &linalg::ColsView<'_>) -> Result<Matrix> {
        if cols.rows() != self.components.rows() {
            return Err(BaselineError::InvalidInput(format!(
                "view has {} features but the model expects {}",
                cols.rows(),
                self.components.rows()
            )));
        }
        Ok(cols.shifted_t_matmul(Some(&self.mean), &self.components)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::GaussianRng;

    fn anisotropic_data(n: usize) -> Matrix {
        // Variance 9 along (1,1)/sqrt(2), variance 0.01 along (1,-1)/sqrt(2).
        let mut rng = GaussianRng::new(3);
        let mut x = Matrix::zeros(2, n);
        for j in 0..n {
            let a = 3.0 * rng.standard_normal();
            let b = 0.1 * rng.standard_normal();
            x[(0, j)] = (a + b) / 2f64.sqrt() + 5.0;
            x[(1, j)] = (a - b) / 2f64.sqrt() - 2.0;
        }
        x
    }

    #[test]
    fn finds_dominant_direction() {
        let x = anisotropic_data(500);
        let pca = Pca::fit(&x, 2).unwrap();
        let c = pca.components();
        // First component ≈ (1,1)/sqrt(2) up to sign.
        assert!((c[(0, 0)].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.05);
        assert!((c[(0, 0)] - c[(1, 0)]).abs() < 0.1);
        assert!(pca.explained_variance()[0] > 5.0);
        assert!(pca.explained_variance()[1] < 0.1);
    }

    #[test]
    fn transform_centers_and_projects() {
        let x = anisotropic_data(200);
        let pca = Pca::fit(&x, 1).unwrap();
        let z = pca.transform(&x).unwrap();
        assert_eq!(z.shape(), (200, 1));
        let mean: f64 = z.column(0).iter().sum::<f64>() / 200.0;
        assert!(mean.abs() < 1e-9);
    }

    #[test]
    fn dual_route_matches_primal_for_small_problem() {
        // d > N triggers the Gram route; both must span the same subspace.
        let x = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.1],
            vec![0.0, 0.1, -0.1],
            vec![1.0, 1.9, 3.0],
            vec![-1.0, -2.0, -3.0],
        ])
        .unwrap();
        let pca = Pca::fit(&x, 2).unwrap();
        assert_eq!(pca.components().shape(), (5, 2));
        let z = pca.transform(&x).unwrap();
        assert_eq!(z.shape(), (3, 2));
        // Unit-norm components.
        for k in 0..2 {
            let norm: f64 = pca
                .components()
                .column(k)
                .iter()
                .map(|v| v * v)
                .sum::<f64>()
                .sqrt();
            assert!((norm - 1.0).abs() < 1e-6 || norm < 1e-6);
        }
    }

    #[test]
    fn rank_is_clamped_and_validated() {
        let x = anisotropic_data(50);
        let pca = Pca::fit(&x, 10).unwrap();
        assert_eq!(pca.components().cols(), 2);
        assert!(Pca::fit(&x, 0).is_err());
        assert!(pca.transform(&Matrix::zeros(3, 5)).is_err());
    }
}
