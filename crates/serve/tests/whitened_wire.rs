//! Whitened models through the serving stack: a TCCA model fitted with the
//! randomized whitening stage must transform **bit-identically** in-process and
//! over the wire. Whitening changes how the model is fitted, not how it is served
//! — the fitted model is still a per-view shifted projection — so the whole
//! serving path (persistence, catalog metadata, coalesced batching, the wire
//! codec) must carry it with zero drift.

use linalg::Matrix;
use mvcore::{EstimatorRegistry, FitSpec, WhitenSpec};
use serve::Client;
use std::io::{BufRead, BufReader, BufWriter};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_tcca_serve");

/// Kills the server process even when an assertion panics.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tcca-whiten-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Three noisy views of 40 instances sharing a skewed latent signal, with enough
/// feature dimensions that the whitening stage has something to reduce.
fn fixture_views() -> Vec<Matrix> {
    let n = 40;
    let dims = [24usize, 16, 9];
    let mut views: Vec<Matrix> = dims.iter().map(|&d| Matrix::zeros(d, n)).collect();
    for j in 0..n {
        let t = if j % 4 == 0 { 1.5 } else { -0.4 };
        for (p, v) in views.iter_mut().enumerate() {
            for i in 0..v.rows() {
                v[(i, j)] =
                    t * (i as f64 + 1.0) + 0.3 * ((i + 13 * p) as f64 * 2.7 + j as f64 * 1.3).sin();
            }
        }
    }
    views
}

#[test]
fn whitened_model_serves_bit_identically_over_the_wire() {
    let dir = tmp_dir("wire");
    let views = fixture_views();

    // 1. Fit TCCA with randomized whitening and persist it like any other model.
    let registry = EstimatorRegistry::with_builtin();
    let spec = FitSpec::with_rank(2)
        .epsilon(1e-3)
        .seed(11)
        .per_view_dim(6)
        .whiten(WhitenSpec::randomized());
    let model = registry.fit("TCCA", &views, &spec).unwrap();
    let expected = model.transform(&views).unwrap();
    let model_path = dir.join("whitened.mvm");
    model
        .save(&mut BufWriter::new(
            std::fs::File::create(&model_path).unwrap(),
        ))
        .unwrap();

    // 2. The persisted file round-trips in-process bit for bit.
    let loaded = registry
        .load_model(&mut BufReader::new(
            std::fs::File::open(&model_path).unwrap(),
        ))
        .unwrap();
    assert_eq!(loaded.transform(&views).unwrap(), expected);

    // 3. Serve the same file through the real binary …
    let mut child = Command::new(BIN)
        .args(["serve", "--models"])
        .arg(&dir)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--max-batch",
            "64",
            "--max-wait-ms",
            "5",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("running tcca_serve serve");
    let stdout = child.stdout.take().expect("server stdout");
    let guard = ChildGuard(child);
    let mut addr = None;
    for line in BufReader::new(stdout).lines() {
        let line = line.expect("server stdout line");
        if let Some(rest) = line.strip_prefix("listening on ") {
            addr = Some(rest.trim().to_string());
            break;
        }
    }
    let addr = addr.expect("server never printed its address");

    // 4. … and diff every wire path against the in-process embedding.
    let mut client = Client::connect(&addr).expect("connecting to the server");
    let catalog = client.list_models().unwrap();
    assert_eq!(catalog.len(), 1);
    assert_eq!(catalog[0].name, "whitened");
    assert_eq!(catalog[0].method, "TCCA");
    assert_eq!(catalog[0].dim, expected.cols());

    // Full batch.
    let z = client.transform("whitened", &views).unwrap();
    assert_eq!(z, expected, "wire transform differs from in-process");

    // Per-view slices (the coalescing / zero-copy projection path).
    for (which, view) in views.iter().enumerate() {
        let zv = client.transform_view("whitened", which, view).unwrap();
        let direct = model.transform_view(which, view).unwrap();
        assert_eq!(zv, direct, "view {which}: wire transform_view differs");
    }

    // Held-out instances, sliced client-side.
    let cols: Vec<usize> = vec![1, 5, 8, 21, 34];
    let slice: Vec<Matrix> = views.iter().map(|v| v.select_columns(&cols)).collect();
    let z = client.transform("whitened", &slice).unwrap();
    assert_eq!(z, expected.select_rows(&cols));

    drop(guard);
    let _ = std::fs::remove_dir_all(&dir);
}
