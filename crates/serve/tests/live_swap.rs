//! Live-swap smoke: clients hammer a served model while the trainer refits and
//! swaps it several times underneath them. The zero-downtime contract under
//! test, end to end over TCP:
//!
//! * **no request ever fails or blocks** across a swap — in-flight requests
//!   finish on the old generation's `Arc`, new requests load the new one;
//! * the catalog's model **version advances monotonically** with every swap;
//! * replies stay **bit-identical** throughout: the hammers always send the
//!   same views, so the reservoir only ever holds copies of the fit sample,
//!   and the exact-moment streaming PCA reproduces the one-shot model
//!   bit-for-bit at every generation.
//!
//! CI runs this as the live-swap smoke job.

use linalg::Matrix;
use mvcore::{EstimatorRegistry, FitSpec};
use serve::{
    BatchConfig, BatchEngine, Client, ModelStore, Server, TrainerConfig, TrainerService,
    TransformService,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fixture_views(n: usize, seed: u64) -> Vec<Matrix> {
    let data = datasets::secstr_dataset(&datasets::SecStrConfig {
        n_instances: n,
        seed,
        difficulty: 0.8,
    });
    // Trim each ~105-dim view to 8 rows: exact-moment accumulation is O(D²)
    // per instance, and this smoke is about swap behaviour, not throughput.
    data.views()
        .iter()
        .map(|v| v.select_rows(&(0..8.min(v.rows())).collect::<Vec<_>>()))
        .collect()
}

fn counter(counters: &[(String, u64)], name: &str) -> u64 {
    counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("missing counter {name}: {counters:?}"))
}

#[test]
fn hammered_model_survives_repeated_live_swaps() {
    const SWAPS: u64 = 5;
    const HAMMERS: usize = 4;

    let spec = FitSpec::with_rank(2).epsilon(1e-2).seed(5);
    let views = fixture_views(40, 29);
    let dir = std::env::temp_dir().join(format!("tcca-live-swap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Seed the store with a one-shot PCA fit of the hammer sample.
    let registry = EstimatorRegistry::with_builtin();
    let model = registry.fit("PCA", &views, &spec).unwrap();
    ModelStore::new(EstimatorRegistry::with_builtin())
        .save(&dir, "live", model.as_ref())
        .unwrap();

    // Serve through a trainer-wrapped engine: transform traffic feeds the
    // reservoir, wire-level Refit triggers the background refresh.
    let store = Arc::new(ModelStore::open(EstimatorRegistry::with_builtin(), &dir).unwrap());
    let engine = Arc::new(BatchEngine::start(
        store,
        BatchConfig {
            max_batch: 32,
            max_wait: Duration::from_millis(1),
            ..BatchConfig::default()
        },
    ));
    let mut trainer_config = TrainerConfig::watching("live", spec);
    // A short window keeps each refit's accumulation pass well under the poll
    // deadline even on a loaded CI box.
    trainer_config.reservoir_chunks = 8;
    let service = Arc::new(TrainerService::start(engine, &dir, trainer_config));
    let server = Server::bind_service(
        "127.0.0.1:0",
        Arc::clone(&service) as Arc<dyn TransformService>,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let mut control = Client::connect(addr).unwrap();
    let baseline = control.transform("live", &views).unwrap();

    // Hammer threads: same views forever, count replies, fail loudly on any
    // error or any bit that differs from the baseline embedding.
    let stop = Arc::new(AtomicBool::new(false));
    let successes = Arc::new(AtomicUsize::new(0));
    let failures = Arc::new(AtomicUsize::new(0));
    let hammers: Vec<_> = (0..HAMMERS)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let successes = Arc::clone(&successes);
            let failures = Arc::clone(&failures);
            let views = views.clone();
            let baseline = baseline.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                while !stop.load(Ordering::Relaxed) {
                    match client.transform("live", &views) {
                        Ok(z) if z.as_slice() == baseline.as_slice() => {
                            successes.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();

    // Drive SWAPS refresh cycles while the hammers run. Each trigger is
    // asynchronous; poll the Stats op until the refit lands, then check the
    // catalog's version advanced.
    for round in 1..=SWAPS {
        // Make sure the reservoir has seen traffic this round.
        let deadline = Instant::now() + Duration::from_secs(10);
        while counter(&control.stats().unwrap(), "trainer/reservoir_chunks") == 0 {
            assert!(
                Instant::now() < deadline,
                "no traffic reached the reservoir"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        control.refit().unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let stats = control.stats().unwrap();
            assert_eq!(counter(&stats, "trainer/errors"), 0, "refit errored");
            if counter(&stats, "trainer/refits") >= round {
                break;
            }
            assert!(Instant::now() < deadline, "refit {round} never landed");
            std::thread::sleep(Duration::from_millis(10));
        }
        let catalog = control.list_models().unwrap();
        let live = catalog.iter().find(|m| m.name == "live").unwrap();
        assert_eq!(live.version, round, "version must advance with every swap");
    }

    stop.store(true, Ordering::Relaxed);
    for h in hammers {
        h.join().unwrap();
    }

    let served = successes.load(Ordering::Relaxed);
    let failed = failures.load(Ordering::Relaxed);
    assert_eq!(failed, 0, "a request failed or changed bits during a swap");
    assert!(
        served > 0,
        "hammers must actually have exercised the server"
    );

    // The swap window the trainer measured (rename + rescan) is microseconds,
    // not milliseconds — sanity-bound it so a regression to payload-deep
    // rescans shows up here.
    let stats = control.stats().unwrap();
    assert!(counter(&stats, "trainer/last_swap_micros") > 0);
    assert_eq!(counter(&stats, "trainer/model_version"), SWAPS);

    shutdown.shutdown();
    server_thread.join().unwrap();
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}
