//! A short seeded run of the chaos soak harness, end to end: shard kill,
//! fault injection, rescan churn and recovery, with the overload contract
//! asserted the same way CI asserts it.

use serve::soak::{run_soak, SoakConfig};
use std::time::Duration;

#[test]
fn seeded_soak_with_chaos_upholds_the_overload_contract() {
    let config = SoakConfig {
        seed: 1234,
        models: 4,
        clients: 4,
        phase: Duration::from_millis(800),
        deadline_ms: 2_000,
        local_shards: 2,
        ..SoakConfig::default()
    };
    let report = run_soak(&config).expect("the soak harness must run");
    assert_eq!(report.seed, 1234, "the report must record the fault seed");
    assert_eq!(report.phases.len(), 3);
    for phase in &report.phases {
        assert_eq!(
            phase.protocol_violations, 0,
            "{}: protocol violations on front connections",
            phase.name
        );
        assert_eq!(
            phase.transport_errors, 0,
            "{}: hung or broken front connections",
            phase.name
        );
        assert!(phase.requests > 0, "{}: no traffic completed", phase.name);
        assert_eq!(
            phase.requests,
            phase.ok
                + phase.overloaded
                + phase.deadline_exceeded
                + phase.rejected_in_band
                + phase.transport_errors
                + phase.protocol_violations,
            "{}: every request must be accounted for",
            phase.name
        );
    }
    // The strict ≥90% recovery bar is asserted by the CI soak job over longer
    // phases; with this test's short windows on a shared machine, only gross
    // failures to recover are meaningful.
    assert!(
        report.recovery_ratio >= 0.6,
        "throughput did not recover after chaos (ratio {:.2})",
        report.recovery_ratio
    );
    // The report renders to the BENCH/CI JSON shape.
    let json = report.to_json();
    assert!(json.contains("\"fault_seed\": 1234"));
    assert!(json.contains("\"recovery_ratio\""));
}
