//! Zero-copy accounting for the serving path.
//!
//! "Zero input copies" is asserted, not claimed: `linalg` counts every deep
//! [`Matrix`] clone and every stitch materialization process-wide, and this file
//! measures the deltas across the paths under test. The whole file is a **single**
//! `#[test]` so no concurrently running test in the same process can touch the
//! global counters mid-measurement (integration-test files are separate processes;
//! tests *within* a file share one).

use linalg::{input_stitches, matrix_clones, Matrix};
use mvcore::{EstimatorRegistry, FitSpec};
use serve::{BatchConfig, BatchEngine, ModelStore, RouterConfig, TransformService};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::Duration;

fn fixture_views() -> Vec<Matrix> {
    let data = datasets::secstr_dataset(&datasets::SecStrConfig {
        n_instances: 32,
        seed: 23,
        difficulty: 0.8,
    });
    data.views()
        .iter()
        .map(|v| v.select_rows(&(0..8.min(v.rows())).collect::<Vec<_>>()))
        .collect()
}

/// Submit `slices` as concurrent `transform_view` requests and wait for all
/// replies, returning them in request order.
fn submit_view_burst(
    service: &dyn TransformService,
    model: &str,
    which: usize,
    slices: &[Arc<Matrix>],
) -> Vec<Matrix> {
    let (tx, rx) = sync_channel(slices.len());
    for (i, slice) in slices.iter().enumerate() {
        let tx = tx.clone();
        service.submit_transform_view(
            model,
            which,
            Arc::clone(slice),
            serve::Precision::F64,
            None,
            Box::new(move |r| drop(tx.send((i, r)))),
        );
    }
    let mut out: Vec<(usize, Matrix)> = (0..slices.len())
        .map(|_| {
            let (i, r) = rx.recv().expect("engine reply");
            (i, r.expect("transform_view succeeds"))
        })
        .collect();
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, z)| z).collect()
}

#[test]
fn serving_happy_paths_copy_no_input_matrices() {
    let views = fixture_views();
    let registry = EstimatorRegistry::with_builtin();
    let model = registry
        .fit("PCA", &views, &FitSpec::with_rank(2).seed(2))
        .unwrap();
    let store = Arc::new(ModelStore::new(EstimatorRegistry::with_builtin()));
    store.insert("pca", model);
    let engine = BatchEngine::start(
        store,
        BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(100),
            ..BatchConfig::default()
        },
    );
    let direct = engine
        .store()
        .get("pca")
        .unwrap()
        .transform_view(1, &views[1])
        .unwrap();

    // Everything the measurement needs is allocated up front, and a warm-up
    // request settles any lazy state, so the deltas below cover request handling
    // alone.
    let slices: Vec<Arc<Matrix>> = (0..8)
        .map(|c| Arc::new(views[1].select_columns(&(4 * c..4 * (c + 1)).collect::<Vec<_>>())))
        .collect();
    let warm = engine.transform_view("pca", 1, views[1].clone()).unwrap();
    assert_eq!(warm, direct);

    // --- Coalesced transform_view burst through the engine: ColsView path. ---
    let clones0 = matrix_clones();
    let stitches0 = input_stitches();
    let results = submit_view_burst(&engine, "pca", 1, &slices);
    for (c, z) in results.iter().enumerate() {
        let expected = direct.select_rows(&(4 * c..4 * (c + 1)).collect::<Vec<_>>());
        assert_eq!(z, &expected, "zero-copy result diverged for request {c}");
    }
    assert_eq!(
        matrix_clones() - clones0,
        0,
        "coalesced view path deep-copied an input matrix"
    );
    assert_eq!(
        input_stitches() - stitches0,
        0,
        "coalesced view path stitched the input"
    );
    let stats = engine.stats();
    assert!(
        stats.zero_copy_batches >= 1,
        "burst never took the ColsView path: {stats:?}"
    );
    assert_eq!(stats.fallbacks, 0, "zero-copy batch fell back: {stats:?}");

    // --- Singleton bypass: one lone request never touches the coalescing
    // machinery — no stitch, and (because the projection models' transform_view
    // itself centers during GEMM packing) no clone either.
    let singletons0 = engine.stats().singleton_batches;
    let clones1 = matrix_clones();
    let stitches1 = input_stitches();
    let z = submit_view_burst(&engine, "pca", 1, &slices[..1]);
    assert_eq!(z[0], direct.select_rows(&(0..4).collect::<Vec<_>>()));
    assert_eq!(matrix_clones() - clones1, 0, "singleton cloned its input");
    assert_eq!(input_stitches() - stitches1, 0, "singleton stitched");
    assert!(engine.stats().singleton_batches > singletons0);

    // --- Router happy path: Arc-shared inputs, zero failovers, zero copies. ---
    let router_store = Arc::new(ModelStore::new(EstimatorRegistry::with_builtin()));
    router_store.insert(
        "pca",
        registry
            .fit("PCA", &views, &FitSpec::with_rank(2).seed(2))
            .unwrap(),
    );
    let router = serve::RouterBuilder::new(RouterConfig {
        replication: 1,
        ..RouterConfig::default()
    })
    .local_shard(
        router_store,
        BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(50),
            ..BatchConfig::default()
        },
    )
    .build();
    let warm = submit_view_burst(&router, "pca", 1, &slices[..1]);
    assert_eq!(warm[0], direct.select_rows(&(0..4).collect::<Vec<_>>()));

    let clones2 = matrix_clones();
    let stitches2 = input_stitches();
    let results = submit_view_burst(&router, "pca", 1, &slices);
    for (c, z) in results.iter().enumerate() {
        let expected = direct.select_rows(&(4 * c..4 * (c + 1)).collect::<Vec<_>>());
        assert_eq!(z, &expected, "routed result diverged for request {c}");
    }
    assert_eq!(router.stats().failovers, 0, "happy path must not fail over");
    assert_eq!(
        matrix_clones() - clones2,
        0,
        "router happy path deep-copied an input matrix"
    );
    assert_eq!(
        input_stitches() - stitches2,
        0,
        "router happy path stitched the input"
    );

    // --- Control: a coalesced *full* transform still stitches (and is counted),
    // proving the counter observes the non-zero-copy path. ---
    let full_inputs: Vec<Arc<Vec<Matrix>>> = (0..2)
        .map(|c| {
            Arc::new(
                views
                    .iter()
                    .map(|v| v.select_columns(&(8 * c..8 * (c + 1)).collect::<Vec<_>>()))
                    .collect::<Vec<Matrix>>(),
            )
        })
        .collect();
    let coalesced0 = engine.stats().coalesced_requests;
    let stitches3 = input_stitches();
    let (tx, rx) = sync_channel(2);
    for inputs in &full_inputs {
        let tx = tx.clone();
        engine.submit_transform(
            "pca",
            Arc::clone(inputs),
            None,
            Box::new(move |r| drop(tx.send(r))),
        );
    }
    let a = rx.recv().unwrap().unwrap();
    let b = rx.recv().unwrap().unwrap();
    assert_eq!(a.rows() + b.rows(), 16);
    if engine.stats().coalesced_requests > coalesced0 {
        // The two requests coalesced: the full-transform path stitches each of the
        // m views exactly once. (If the window raced closed they ran as singletons,
        // which stitch nothing — the documented bypass.)
        assert_eq!(input_stitches() - stitches3, views.len());
    }
}
