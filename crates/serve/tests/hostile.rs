//! Fuzz-style wire tests: the server must answer malformed or hostile frames with
//! an in-band protocol error — never hang, never panic, never take down service
//! for other connections.

use linalg::Matrix;
use mvcore::{EstimatorRegistry, FitSpec};
use serve::wire::{read_frame, Response, MAX_FRAME_LEN};
use serve::{BatchConfig, Client, ModelStore, Server};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn fixture_views() -> Vec<Matrix> {
    let data = datasets::secstr_dataset(&datasets::SecStrConfig {
        n_instances: 24,
        seed: 3,
        difficulty: 0.8,
    });
    data.views()
        .iter()
        .map(|v| v.select_rows(&(0..6.min(v.rows())).collect::<Vec<_>>()))
        .collect()
}

fn start_server() -> (SocketAddr, impl FnOnce()) {
    let views = fixture_views();
    let registry = EstimatorRegistry::with_builtin();
    let model = registry
        .fit("PCA", &views, &FitSpec::with_rank(2).seed(7))
        .unwrap();
    let store = Arc::new(ModelStore::new(EstimatorRegistry::with_builtin()));
    store.insert("pca", model);
    let server = Server::bind(
        "127.0.0.1:0",
        store,
        BatchConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(1),
            ..BatchConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run().unwrap());
    (addr, move || {
        shutdown.shutdown();
        thread.join().unwrap();
    })
}

/// Read one frame with a deadline so a hung server fails the test instead of
/// wedging it.
fn read_reply(stream: &mut TcpStream) -> Response {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let payload = read_frame(stream)
        .expect("reading the server's reply")
        .expect("server closed without replying");
    Response::decode(&payload).expect("decoding the server's reply")
}

fn expect_protocol_error(resp: Response, needle: &str) {
    match resp {
        Response::Error(msg) => {
            assert!(
                msg.contains(needle),
                "error {msg:?} must mention {needle:?}"
            )
        }
        other => panic!("expected an error reply, got {other:?}"),
    }
}

#[test]
fn truncated_length_prefix_gets_an_error_not_a_hang() {
    let (addr, stop) = start_server();
    let mut stream = TcpStream::connect(addr).unwrap();
    // Two bytes of a four-byte length prefix, then half-close: the server sees EOF
    // mid frame header and must reply with a protocol error, then close.
    stream.write_all(&[0x10, 0x00]).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    expect_protocol_error(read_reply(&mut stream), "protocol violation");
    // The connection then closes cleanly.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "no trailing bytes after the error reply");
    stop();
}

#[test]
fn truncated_payload_gets_an_error_not_a_hang() {
    let (addr, stop) = start_server();
    let mut stream = TcpStream::connect(addr).unwrap();
    // Frame declares 64 bytes but only 3 arrive before the peer gives up.
    stream.write_all(&64u32.to_le_bytes()).unwrap();
    stream.write_all(&[1, 2, 3]).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    expect_protocol_error(read_reply(&mut stream), "protocol violation");
    stop();
}

#[test]
fn oversized_declared_length_is_refused_without_allocation() {
    let (addr, stop) = start_server();
    let mut stream = TcpStream::connect(addr).unwrap();
    // Length far beyond the cap: the server must refuse it outright (never try to
    // read or allocate the claimed 4 GiB) and report the limit.
    stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
    expect_protocol_error(
        read_reply(&mut stream),
        &format!("{MAX_FRAME_LEN}-byte limit"),
    );
    stop();
}

#[test]
fn junk_opcode_is_answered_in_band_and_the_connection_survives() {
    let (addr, stop) = start_server();
    let mut stream = TcpStream::connect(addr).unwrap();
    // A perfectly framed request with a nonsense opcode.
    stream.write_all(&1u32.to_le_bytes()).unwrap();
    stream.write_all(&[0xEE]).unwrap();
    expect_protocol_error(read_reply(&mut stream), "unknown request opcode");
    // The frame boundary held, so the same connection keeps working: a valid ping
    // (opcode 3) still gets its pong.
    stream.write_all(&1u32.to_le_bytes()).unwrap();
    stream.write_all(&[3]).unwrap();
    assert_eq!(read_reply(&mut stream), Response::Pong);
    stop();
}

#[test]
fn garbage_payload_inside_a_valid_opcode_is_answered_in_band() {
    let (addr, stop) = start_server();
    let mut stream = TcpStream::connect(addr).unwrap();
    // Opcode 1 (Transform) followed by a name length that runs past the frame.
    let mut payload = vec![1u8];
    payload.extend_from_slice(&1000u32.to_le_bytes());
    payload.extend_from_slice(b"short");
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .unwrap();
    stream.write_all(&payload).unwrap();
    expect_protocol_error(read_reply(&mut stream), "truncated");
    stop();
}

#[test]
fn half_closed_connection_still_receives_its_reply() {
    let (addr, stop) = start_server();
    let views = fixture_views();
    let mut stream = TcpStream::connect(addr).unwrap();
    // Send one well-formed transform, then shut down the write half and wait: the
    // async reply must still arrive (the server may not reap the connection while
    // a reply is owed).
    let req = serve::wire::Request::Transform {
        model: "pca".into(),
        inputs: views.clone(),
    };
    serve::wire::write_frame(&mut stream, &req.encode()).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    match read_reply(&mut stream) {
        Response::Embedding(z) => assert_eq!(z.rows(), views[0].cols()),
        other => panic!("expected the embedding, got {other:?}"),
    }
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    stop();
}

#[test]
fn pipelined_v1_requests_get_replies_in_request_order() {
    let (addr, stop) = start_server();
    let views = fixture_views();
    let mut stream = TcpStream::connect(addr).unwrap();
    // Two *untagged* frames back to back: a transform (async, slow) then a ping
    // (answered inline). A v1 client matches replies by order, so the embedding
    // must come back first even though the pong was ready earlier.
    let transform = serve::wire::Request::Transform {
        model: "pca".into(),
        inputs: views.clone(),
    };
    serve::wire::write_frame(&mut stream, &transform.encode()).unwrap();
    serve::wire::write_frame(&mut stream, &serve::wire::Request::Ping.encode()).unwrap();
    match read_reply(&mut stream) {
        Response::Embedding(z) => assert_eq!(z.rows(), views[0].cols()),
        other => panic!("v1 ordering violated: first reply was {other:?}"),
    }
    assert_eq!(read_reply(&mut stream), Response::Pong);
    stop();
}

/// Send one raw payload as a frame, expect an in-band error mentioning
/// `needle`, then prove the connection survived by pinging on it.
fn expect_error_then_ping_survives(addr: SocketAddr, payload: &[u8], needle: &str) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .unwrap();
    stream.write_all(payload).unwrap();
    expect_protocol_error(read_reply(&mut stream), needle);
    stream.write_all(&1u32.to_le_bytes()).unwrap();
    stream.write_all(&[3]).unwrap();
    assert_eq!(read_reply(&mut stream), Response::Pong);
}

#[test]
fn truncated_add_shard_address_is_answered_in_band() {
    let (addr, stop) = start_server();
    // Opcode 9 (AddShard) declaring a 1000-byte address with 4 bytes present.
    let mut payload = vec![9u8];
    payload.extend_from_slice(&1000u32.to_le_bytes());
    payload.extend_from_slice(b"10.0");
    expect_error_then_ping_survives(addr, &payload, "truncated");
    stop();
}

#[test]
fn oversized_add_shard_length_is_answered_in_band() {
    let (addr, stop) = start_server();
    // The declared address length alone exceeds any plausible frame.
    let mut payload = vec![9u8];
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    expect_error_then_ping_survives(addr, &payload, "truncated");
    stop();
}

#[test]
fn junk_utf8_add_shard_address_is_answered_in_band() {
    let (addr, stop) = start_server();
    // Well-framed AddShard whose address bytes are not UTF-8.
    let mut payload = vec![9u8];
    payload.extend_from_slice(&2u32.to_le_bytes());
    payload.extend_from_slice(&[0xFF, 0xFE]);
    expect_error_then_ping_survives(addr, &payload, "not valid UTF-8");
    stop();
}

#[test]
fn truncated_remove_shard_id_is_answered_in_band() {
    let (addr, stop) = start_server();
    // Opcode 10 (RemoveShard) with 3 of the 8 id bytes.
    expect_error_then_ping_survives(addr, &[10u8, 1, 2, 3], "truncated");
    stop();
}

#[test]
fn trailing_junk_after_cluster_info_is_answered_in_band() {
    let (addr, stop) = start_server();
    // Opcode 11 (ClusterInfo) takes no payload; trailing bytes are a violation.
    expect_error_then_ping_survives(addr, &[11u8, 0xAB, 0xCD], "trailing bytes");
    stop();
}

#[test]
fn valid_control_ops_against_an_engine_backed_server_error_in_band() {
    // This server fronts a local engine, not a router: every well-formed v5
    // control op must come back as an in-band error, and the connection (and
    // transform service) must survive.
    let (addr, stop) = start_server();
    let mut client = Client::connect(addr).unwrap();
    for result in [
        client.add_shard("127.0.0.1:1").map(|_| ()),
        client.remove_shard(0).map(|_| ()),
        client.cluster_info().map(|_| ()),
    ] {
        let err = result.expect_err("engine-backed servers have no control plane");
        assert!(
            err.to_string().contains("no shard control plane"),
            "unexpected error: {err}"
        );
    }
    client.ping().unwrap();
    let views = fixture_views();
    let z = client.transform("pca", &views).unwrap();
    assert_eq!(z.rows(), views[0].cols());
    stop();
}

#[test]
fn hostile_connections_do_not_poison_service_for_others() {
    let (addr, stop) = start_server();
    let views = fixture_views();

    // A pile of hostile connections in every flavour...
    let mut hostiles = Vec::new();
    for flavour in 0..12u8 {
        let mut stream = TcpStream::connect(addr).unwrap();
        match flavour % 4 {
            0 => stream.write_all(&[0xFF]).unwrap(), // partial prefix, left open
            1 => stream.write_all(&u32::MAX.to_le_bytes()).unwrap(), // absurd length
            2 => {
                stream.write_all(&1u32.to_le_bytes()).unwrap();
                stream.write_all(&[0x7F]).unwrap(); // junk opcode
            }
            _ => {
                // Claims 1 KiB, delivers half, stalls.
                stream.write_all(&1024u32.to_le_bytes()).unwrap();
                stream.write_all(&vec![0u8; 512]).unwrap();
            }
        }
        hostiles.push(stream);
    }

    // ...while a well-behaved client gets correct service throughout.
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    let z = client.transform("pca", &views).unwrap();
    assert_eq!(z.rows(), views[0].cols());
    drop(hostiles);
    client.ping().unwrap();
    stop();
}
