//! Overload-protection contract tests: a server under pressure must shed,
//! throttle or reject *in band* — never hang, never buffer without bound,
//! never silently drop a request that was admitted.

use linalg::Matrix;
use mvcore::{EstimatorRegistry, FitSpec};
use serve::wire::{read_frame, write_frame, Request, Response};
use serve::{BatchConfig, Client, ModelStore, ServeError, Server, ServerTuning};
use std::collections::BTreeSet;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fixture_views() -> Vec<Matrix> {
    let data = datasets::secstr_dataset(&datasets::SecStrConfig {
        n_instances: 24,
        seed: 3,
        difficulty: 0.8,
    });
    data.views()
        .iter()
        .map(|v| v.select_rows(&(0..8.min(v.rows())).collect::<Vec<_>>()))
        .collect()
}

fn fixture_store(rank: usize) -> Arc<ModelStore> {
    let views = fixture_views();
    let registry = EstimatorRegistry::with_builtin();
    let model = registry
        .fit("PCA", &views, &FitSpec::with_rank(rank).seed(7))
        .unwrap();
    let store = Arc::new(ModelStore::new(EstimatorRegistry::with_builtin()));
    store.insert("pca", model);
    store
}

fn start_tuned(
    batch: BatchConfig,
    tuning: ServerTuning,
    rank: usize,
) -> (SocketAddr, impl FnOnce()) {
    let engine = Arc::new(serve::BatchEngine::start(fixture_store(rank), batch));
    let server = Server::bind_service_tuned("127.0.0.1:0", engine, tuning).unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run().unwrap());
    (addr, move || {
        shutdown.shutdown();
        thread.join().unwrap();
    })
}

fn counter(stats: &[(String, u64)], name: &str) -> u64 {
    stats
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("counter {name} missing from {stats:?}"))
}

/// A connection whose pending replies pile up must trip the write-buffer
/// high-water mark (visible in `server/throttled`) instead of growing buffers
/// without bound — and still receive every reply, in order, once the jam
/// clears. Throttling is backpressure, not loss.
///
/// The jam is built deterministically through the v1 ordering gate: one
/// untagged transform parks in a wide batching window at the head of the
/// line, so every fast sync reply behind it is *held* by the gate (held bytes
/// count against the mark) — no dependence on kernel socket buffer sizes.
#[test]
fn slow_reader_is_throttled_not_buffered_unboundedly() {
    let followers: usize = 200;
    let (addr, stop) = start_tuned(
        BatchConfig {
            max_batch: 64,
            // Parks the head-of-line transform so held replies accumulate.
            max_wait: Duration::from_millis(400),
            ..BatchConfig::default()
        },
        ServerTuning {
            // Far below the held-reply volume, so the mark must trip.
            wbuf_high_water: 2 * 1024,
            ..ServerTuning::default()
        },
        2,
    );
    let views = fixture_views();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let head = Request::Transform {
        model: "pca".into(),
        inputs: views.clone(),
    };
    write_frame(&mut stream, &head.encode()).unwrap();
    for _ in 0..followers {
        write_frame(&mut stream, &Request::ListModels.encode()).unwrap();
    }

    // A second connection watches the throttle counter. The counter is
    // cumulative (it counts excursions), so there is no race with the jam
    // clearing before we look.
    let mut observer = Client::connect(addr).unwrap();
    let tripped_by = Instant::now() + Duration::from_secs(30);
    loop {
        let throttled = counter(&observer.stats().unwrap(), "server/throttled");
        if throttled >= 1 {
            break;
        }
        assert!(
            Instant::now() < tripped_by,
            "high-water mark never tripped while {followers} held replies piled up"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Once the head-of-line batch executes, everything flushes — every
    // request answered, v1 ordering intact.
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let payload = read_frame(&mut stream)
        .unwrap()
        .expect("reply stream ended early");
    assert!(
        matches!(Response::decode(&payload).unwrap(), Response::Embedding(_)),
        "the head-of-line transform must be answered first"
    );
    for i in 0..followers {
        let payload = read_frame(&mut stream)
            .unwrap()
            .unwrap_or_else(|| panic!("reply stream ended after {i} of {followers} held replies"));
        assert!(
            matches!(Response::decode(&payload).unwrap(), Response::Models(_)),
            "held replies must flush in order"
        );
    }
    stop();
}

/// Pipelining past the per-connection in-flight limit gets the excess shed
/// with an in-band `Overloaded` reply — every request is answered, none hang.
#[test]
fn pipelined_flood_beyond_inflight_limit_is_shed_in_band() {
    let requests: u64 = 64;
    let (addr, stop) = start_tuned(
        BatchConfig {
            max_batch: 64,
            // A wide window parks admitted work so the in-flight count stays
            // up while the flood arrives.
            max_wait: Duration::from_millis(200),
            ..BatchConfig::default()
        },
        ServerTuning {
            max_inflight_per_conn: 4,
            ..ServerTuning::default()
        },
        2,
    );
    let views = fixture_views();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    for id in 0..requests {
        let frame = Request::Transform {
            model: "pca".into(),
            inputs: views.clone(),
        }
        .tagged(id)
        .encode();
        write_frame(&mut stream, &frame).unwrap();
    }
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let (mut served, mut shed) = (0u64, 0u64);
    let mut seen = BTreeSet::new();
    for _ in 0..requests {
        let payload = read_frame(&mut stream)
            .unwrap()
            .expect("reply stream ended early");
        match Response::decode(&payload).unwrap() {
            Response::Tagged { id, inner } => {
                assert!(seen.insert(id), "duplicate reply for request {id}");
                match *inner {
                    Response::Embedding(_) => served += 1,
                    Response::Overloaded(_) => shed += 1,
                    other => panic!("unexpected reply {other:?}"),
                }
            }
            other => panic!("expected a tagged reply, got {other:?}"),
        }
    }
    assert_eq!(
        seen.len() as u64,
        requests,
        "every request must be answered"
    );
    assert!(served >= 1, "the in-flight window must serve something");
    assert!(
        shed >= 1,
        "a 64-deep pipeline against a 4-deep limit must shed ({served} served)"
    );
    let mut observer = Client::connect(addr).unwrap();
    assert!(
        counter(&observer.stats().unwrap(), "server/shed_inflight") >= shed,
        "sheds must be visible in server/shed_inflight"
    );
    stop();
}

/// A wire deadline (opcode 17) shorter than the batching window expires while
/// the request is parked, and the client gets an in-band `DeadlineExceeded` —
/// the work is discarded, not computed late.
#[test]
fn expired_wire_deadline_is_answered_in_band() {
    let (addr, stop) = start_tuned(
        BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(300),
            ..BatchConfig::default()
        },
        ServerTuning::default(),
        2,
    );
    let views = fixture_views();
    let mut client = Client::connect(addr).unwrap();
    match client.transform_deadline("pca", &views, 1) {
        Err(ServeError::DeadlineExceeded(_)) => {}
        other => panic!("expected an in-band deadline verdict, got {other:?}"),
    }
    // A deadline-free request on the same connection still works: the expired
    // one was discarded cleanly, not left to poison the stream.
    client.transform("pca", &views).unwrap();
    assert!(
        counter(&client.stats().unwrap(), "deadline_dropped") >= 1,
        "the engine must count the dropped-deadline request"
    );
    stop();
}

/// The client's per-operation timeout bounds every socket wait: a server that
/// accepts and then stalls forever surfaces as a transport error in bounded
/// time, not a hung caller.
#[test]
fn per_op_timeout_bounds_a_stalled_server() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
    let stall = std::thread::spawn(move || {
        // Accept and hold the socket open without ever replying.
        let conn = listener.accept().map(|(s, _)| s);
        let _ = done_rx.recv();
        drop(conn);
    });
    let mut client = Client::connect(addr).unwrap();
    client.set_op_timeout(Some(Duration::from_millis(300)));
    let started = Instant::now();
    let err = client.ping().expect_err("a stalled server cannot pong");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the op timeout must bound the wait (took {:?})",
        started.elapsed()
    );
    assert_eq!(err.class(), serve::ErrorClass::Transport, "got {err:?}");
    done_tx.send(()).unwrap();
    stall.join().unwrap();
}
