//! End-to-end smoke test of the serving stack **through the real binary**: fit and
//! save a model with `tcca_serve demo`, start `tcca_serve serve` on a loopback port,
//! round-trip a coalesced multi-client batch of transform requests over TCP and diff
//! every reply against the in-process result. This is the test CI runs as the serve
//! smoke job.

use linalg::Matrix;
use mvcore::EstimatorRegistry;
use serve::Client;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

const BIN: &str = env!("CARGO_BIN_EXE_tcca_serve");

/// Kills the server process even when an assertion panics.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tcca-smoke-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn read_csv(path: &PathBuf) -> Matrix {
    let text = std::fs::read_to_string(path).unwrap();
    let rows: Vec<Vec<f64>> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.split(',').map(|c| c.trim().parse().unwrap()).collect())
        .collect();
    Matrix::from_rows(&rows).unwrap()
}

#[test]
fn binary_serves_coalesced_batches_bit_identically() {
    let dir = tmp_dir("serve");

    // 1. Fit + save a small TCCA model (and its training views) via the binary.
    let status = Command::new(BIN)
        .args(["demo", "--out"])
        .arg(&dir)
        .args(["--method", "TCCA", "--instances", "48", "--rank", "2"])
        .status()
        .expect("running tcca_serve demo");
    assert!(status.success(), "demo failed");
    let model_path = dir.join("tcca.mvm");
    assert!(model_path.exists());

    // 2. In-process ground truth from the same file.
    let registry = EstimatorRegistry::with_builtin();
    let model = registry
        .load_model(&mut std::io::BufReader::new(
            std::fs::File::open(&model_path).unwrap(),
        ))
        .unwrap();
    let views: Vec<Matrix> = (0..model.num_views())
        .map(|p| read_csv(&dir.join(format!("tcca.view{p}.csv"))))
        .collect();
    let expected = model.transform(&views).unwrap();

    // 3. Start the server on an OS-assigned loopback port and parse the bound
    //    address from its stdout.
    let mut child = Command::new(BIN)
        .args(["serve", "--models"])
        .arg(&dir)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--max-batch",
            "64",
            "--max-wait-ms",
            "10",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("running tcca_serve serve");
    let stdout = child.stdout.take().expect("server stdout");
    let guard = ChildGuard(child);
    let mut addr = None;
    for line in BufReader::new(stdout).lines() {
        let line = line.expect("server stdout line");
        if let Some(rest) = line.strip_prefix("listening on ") {
            addr = Some(rest.trim().to_string());
            break;
        }
    }
    let addr = addr.expect("server never printed its address");

    // 4. The catalog lists the model with header metadata.
    let mut client = Client::connect(&addr).expect("connecting to the server");
    client.ping().unwrap();
    let catalog = client.list_models().unwrap();
    assert_eq!(catalog.len(), 1);
    assert_eq!(catalog[0].name, "tcca");
    assert_eq!(catalog[0].method, "TCCA");
    assert_eq!(catalog[0].dim, expected.cols());

    // 5. A multi-client burst: each of 8 concurrent connections requests a distinct
    //    6-instance slice. The engine coalesces same-model requests; every reply
    //    must equal the matching rows of the in-process embedding bit for bit.
    let views = Arc::new(views);
    let expected = Arc::new(expected);
    let mut handles = Vec::new();
    for c in 0..8usize {
        let addr = addr.clone();
        let views = Arc::clone(&views);
        let expected = Arc::clone(&expected);
        handles.push(std::thread::spawn(move || {
            let cols: Vec<usize> = (6 * c..6 * (c + 1)).collect();
            let slice: Vec<Matrix> = views.iter().map(|v| v.select_columns(&cols)).collect();
            let mut client = Client::connect(&addr).expect("client connect");
            let z = client.transform("tcca", &slice).expect("transform");
            let want = expected.select_rows(&cols);
            assert_eq!(z, want, "client {c}: served rows differ from in-process");
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }

    // 6. Full-batch request over the same connection, also bit-exact.
    let z = client.transform("tcca", &views).unwrap();
    assert_eq!(z, *expected);

    drop(guard);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn one_shot_embed_mode_matches_in_process_transform() {
    let dir = tmp_dir("embed");
    let status = Command::new(BIN)
        .args(["demo", "--out"])
        .arg(&dir)
        .args(["--method", "CCA-LS", "--instances", "30", "--rank", "2"])
        .status()
        .unwrap();
    assert!(status.success());
    let model_path = dir.join("cca-ls.mvm");

    // inspect prints the header without loading the payload.
    let out = Command::new(BIN)
        .args(["inspect", "--model"])
        .arg(&model_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("CCA-LS"), "{text}");

    // embed writes the embedding CSV; diff against the in-process transform.
    let registry = EstimatorRegistry::with_builtin();
    let model = registry
        .load_model(&mut std::io::BufReader::new(
            std::fs::File::open(&model_path).unwrap(),
        ))
        .unwrap();
    let views: Vec<Matrix> = (0..model.num_views())
        .map(|p| read_csv(&dir.join(format!("cca-ls.view{p}.csv"))))
        .collect();
    let expected = model.transform(&views).unwrap();

    let out_path = dir.join("embedding.csv");
    let mut cmd = Command::new(BIN);
    cmd.args(["embed", "--model"]).arg(&model_path);
    for p in 0..views.len() {
        cmd.arg("--view")
            .arg(dir.join(format!("cca-ls.view{p}.csv")));
    }
    cmd.arg("--out").arg(&out_path);
    let status = cmd.status().unwrap();
    assert!(status.success());
    let embedded = read_csv(&out_path);
    assert_eq!(embedded, expected, "CSV round-trip must be exact");
    let _ = std::fs::remove_dir_all(&dir);
}
