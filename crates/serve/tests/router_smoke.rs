//! Multi-shard failover smoke **through the real binaries**: two `tcca_serve
//! serve` child processes act as shards behind a `tcca_serve route` router
//! process. We embed through the router, SIGKILL one shard mid-run, and assert the
//! next request still succeeds bit-identically via failover. This is the test CI
//! runs as the router smoke job.

use linalg::Matrix;
use mvcore::EstimatorRegistry;
use serve::Client;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_tcca_serve");

/// Kills the process even when an assertion panics first.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tcca-rsmoke-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn read_csv(path: &PathBuf) -> Matrix {
    let text = std::fs::read_to_string(path).unwrap();
    let rows: Vec<Vec<f64>> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.split(',').map(|c| c.trim().parse().unwrap()).collect())
        .collect();
    Matrix::from_rows(&rows).unwrap()
}

/// Spawn a `tcca_serve` subcommand and parse the `listening on ADDR` line.
fn spawn_listening(args: &[&str], dir: &PathBuf) -> (ChildGuard, String) {
    let mut cmd = Command::new(BIN);
    cmd.arg(args[0]);
    for a in &args[1..] {
        if *a == "{dir}" {
            cmd.arg(dir);
        } else {
            cmd.arg(a);
        }
    }
    let mut child = cmd
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawning tcca_serve");
    let stdout = child.stdout.take().expect("child stdout");
    let guard = ChildGuard(child);
    let mut addr = None;
    for line in BufReader::new(stdout).lines() {
        let line = line.expect("child stdout line");
        if let Some(rest) = line.strip_prefix("listening on ") {
            addr = Some(rest.trim().to_string());
            break;
        }
    }
    (guard, addr.expect("child never printed its address"))
}

#[test]
fn router_fails_over_when_a_shard_is_killed() {
    let dir = tmp_dir("failover");

    // 1. Fit + save a small TCCA model (and its training views) via the binary.
    let status = Command::new(BIN)
        .args(["demo", "--out"])
        .arg(&dir)
        .args(["--method", "TCCA", "--instances", "48", "--rank", "2"])
        .status()
        .expect("running tcca_serve demo");
    assert!(status.success(), "demo failed");

    // 2. In-process ground truth from the same file.
    let registry = EstimatorRegistry::with_builtin();
    let model = registry
        .load_model(&mut std::io::BufReader::new(
            std::fs::File::open(dir.join("tcca.mvm")).unwrap(),
        ))
        .unwrap();
    let views: Vec<Matrix> = (0..model.num_views())
        .map(|p| read_csv(&dir.join(format!("tcca.view{p}.csv"))))
        .collect();
    let expected = model.transform(&views).unwrap();

    // 3. Two shard child processes, then the router in front of them.
    let (shard_a, addr_a) = spawn_listening(
        &[
            "serve",
            "--models",
            "{dir}",
            "--addr",
            "127.0.0.1:0",
            "--max-wait-ms",
            "1",
        ],
        &dir,
    );
    let (_shard_b, addr_b) = spawn_listening(
        &[
            "serve",
            "--models",
            "{dir}",
            "--addr",
            "127.0.0.1:0",
            "--max-wait-ms",
            "1",
        ],
        &dir,
    );
    let (_router, router_addr) = spawn_listening(
        &[
            "route",
            "--shard",
            &addr_a,
            "--shard",
            &addr_b,
            "--addr",
            "127.0.0.1:0",
        ],
        &dir,
    );

    // 4. The router serves the catalog and bit-exact embeddings.
    let mut client = Client::connect(&router_addr).expect("connecting to the router");
    client.ping().unwrap();
    let catalog = client.list_models().unwrap();
    assert_eq!(catalog.len(), 1);
    assert_eq!(catalog[0].name, "tcca");
    for _ in 0..4 {
        let z = client.transform("tcca", &views).expect("routed transform");
        assert_eq!(z, expected, "routed reply differs from in-process");
    }

    // 5. Kill shard A outright (SIGKILL, no goodbye). With replication 2, half the
    //    requests would land on the corpse — every one must fail over to shard B
    //    and still come back bit-identical. Several requests in a row exercise
    //    both the dead-connection discovery and the post-mortem routing table.
    drop(shard_a);
    for attempt in 0..6 {
        let z = client
            .transform("tcca", &views)
            .unwrap_or_else(|e| panic!("failover attempt {attempt} failed: {e}"));
        assert_eq!(z, expected, "failover changed the embedding");
    }

    // 6. New models keep flowing through the surviving topology: drop another
    //    model file in, rescan through the router, embed through it.
    let status = Command::new(BIN)
        .args(["demo", "--out"])
        .arg(&dir)
        .args(["--method", "PCA", "--instances", "48", "--rank", "2"])
        .status()
        .unwrap();
    assert!(status.success());
    let report = client.rescan().expect("rescan through the router");
    assert!(
        report.added >= 1,
        "rescan must index the new model: {report:?}"
    );
    let z = client
        .transform("pca", &views)
        .expect("new model transform");
    assert_eq!(z.rows(), views[0].cols());

    let _ = std::fs::remove_dir_all(&dir);
}
