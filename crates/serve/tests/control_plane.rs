//! Live control-plane integration tests: runtime shard membership over the
//! wire (protocol v5), drain-before-remove under concurrent traffic, and the
//! health probe tracking shards that join or leave after startup.

use linalg::Matrix;
use mvcore::{EstimatorRegistry, FitSpec, MultiViewModel};
use serve::wire::{Request, Response};
use serve::{
    BatchConfig, Client, ModelStore, Router, RouterBuilder, RouterConfig, Server, TransformService,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fixture_views() -> Vec<Matrix> {
    let data = datasets::secstr_dataset(&datasets::SecStrConfig {
        n_instances: 24,
        seed: 11,
        difficulty: 0.8,
    });
    data.views()
        .iter()
        .map(|v| v.select_rows(&(0..6.min(v.rows())).collect::<Vec<_>>()))
        .collect()
}

/// Deterministic fit: every call returns a bit-identical model, so embeddings
/// computed on any shard (or in process) must match exactly.
fn fixture_model(views: &[Matrix]) -> Box<dyn MultiViewModel> {
    EstimatorRegistry::with_builtin()
        .fit("PCA", views, &FitSpec::with_rank(2).seed(13))
        .unwrap()
}

fn fixture_store(views: &[Matrix]) -> Arc<ModelStore> {
    let store = Arc::new(ModelStore::new(EstimatorRegistry::with_builtin()));
    store.insert("pca", fixture_model(views));
    store
}

/// An in-process backend shard the router can dial over loopback.
struct Backend {
    addr: std::net::SocketAddr,
    shutdown: serve::ShutdownHandle,
    thread: std::thread::JoinHandle<()>,
}

impl Backend {
    fn start(addr: &str, views: &[Matrix]) -> Self {
        let server = Server::bind(
            addr,
            fixture_store(views),
            BatchConfig {
                max_batch: 16,
                max_wait: Duration::from_millis(1),
                ..BatchConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.run().unwrap());
        Backend {
            addr,
            shutdown,
            thread,
        }
    }

    fn kill(self) -> std::net::SocketAddr {
        self.shutdown.shutdown();
        self.thread.join().unwrap();
        self.addr
    }
}

/// A router with one local shard, fronted by a wire server.
fn front_router(views: &[Matrix]) -> (Arc<Router>, std::net::SocketAddr, serve::ShutdownHandle) {
    let router = Arc::new(
        RouterBuilder::new(RouterConfig {
            replication: 2,
            probe_interval: Duration::ZERO,
            drain_timeout: Duration::from_secs(5),
            ..RouterConfig::default()
        })
        .local_shard(
            fixture_store(views),
            BatchConfig {
                max_batch: 16,
                max_wait: Duration::from_millis(1),
                ..BatchConfig::default()
            },
        )
        .build(),
    );
    let front = Server::bind_service("127.0.0.1:0", Arc::clone(&router) as _).unwrap();
    let addr = front.local_addr().unwrap();
    let shutdown = front.shutdown_handle();
    std::thread::spawn(move || front.run().unwrap());
    (router, addr, shutdown)
}

#[test]
fn add_cluster_remove_roundtrip_over_the_wire() {
    let views = fixture_views();
    let expected = fixture_model(&views).transform(&views).unwrap();
    let (_router, addr, shutdown) = front_router(&views);
    let mut client = Client::connect(addr).unwrap();

    // The starting table: one local shard, alive, not draining.
    let cluster = client.cluster_info().unwrap();
    assert_eq!(cluster.len(), 1);
    assert!(cluster[0].alive && !cluster[0].draining);

    // Admit a remote shard; the reply is the post-op table, labelled by address.
    let backend = Backend::start("127.0.0.1:0", &views);
    let cluster = client.add_shard(&backend.addr.to_string()).unwrap();
    assert_eq!(cluster.len(), 2);
    let added = cluster
        .iter()
        .find(|s| s.label == backend.addr.to_string())
        .expect("the admitted shard is in the table");
    assert!(added.alive && !added.draining);
    assert_ne!(added.id, cluster[0].id, "shard ids are distinct");

    // Traffic keeps flowing, bit-identically, through the grown cluster.
    for _ in 0..6 {
        assert_eq!(client.transform("pca", &views).unwrap(), expected);
    }

    // Drain and remove the admitted shard; the table shrinks back.
    let cluster = client.remove_shard(added.id).unwrap();
    assert_eq!(cluster.len(), 1);
    assert!(cluster.iter().all(|s| s.label != backend.addr.to_string()));
    assert_eq!(client.cluster_info().unwrap().len(), 1);
    assert_eq!(client.transform("pca", &views).unwrap(), expected);

    // Removing an id that is not in the table is an in-band error, and ids are
    // never reused, so the removed id stays invalid forever.
    let err = client.remove_shard(added.id).unwrap_err();
    assert!(err.to_string().contains("no shard"), "got: {err}");
    let err = client.add_shard("127.0.0.1:1").unwrap_err();
    assert!(
        !err.to_string().is_empty(),
        "unreachable shard address must be refused"
    );

    backend.kill();
    shutdown.shutdown();
}

#[test]
fn drain_before_remove_drops_no_replies() {
    let views = fixture_views();
    let expected = fixture_model(&views).transform(&views).unwrap();
    let (_router, addr, shutdown) = front_router(&views);
    let mut control = Client::connect(addr).unwrap();
    let mut traffic = Client::connect(addr).unwrap();

    // Two add → burst → remove cycles: tagged transforms are pipelined deep
    // enough that the RemoveShard lands while many are still in flight. Drain
    // semantics require every one of them to come back exactly once,
    // bit-identical — no drops, no duplicates, no errors.
    for cycle in 0..2 {
        let backend = Backend::start("127.0.0.1:0", &views);
        let table = control.add_shard(&backend.addr.to_string()).unwrap();
        let added_id = table
            .iter()
            .find(|s| s.label == backend.addr.to_string())
            .unwrap()
            .id;

        let mut sent = std::collections::BTreeSet::new();
        for _ in 0..48 {
            let id = traffic
                .send(&Request::Transform {
                    model: "pca".into(),
                    inputs: views.clone(),
                })
                .unwrap();
            assert!(sent.insert(id), "client reused a request id");
        }

        // Remove mid-burst: this blocks until the draining shard's in-flight
        // work completes (or fails over), then drops it from the table.
        let table = control.remove_shard(added_id).unwrap();
        assert!(
            table.iter().all(|s| s.id != added_id),
            "cycle {cycle}: removed shard still in the table"
        );

        let mut got = std::collections::BTreeSet::new();
        for _ in 0..sent.len() {
            let (id, resp) = traffic.recv().unwrap();
            assert!(got.insert(id), "cycle {cycle}: duplicate reply for {id}");
            match resp {
                Response::Embedding(z) => assert_eq!(z, expected, "cycle {cycle}: wrong bits"),
                other => panic!("cycle {cycle}: request {id} failed in-band: {other:?}"),
            }
        }
        assert_eq!(got, sent, "cycle {cycle}: dropped replies");
        backend.kill();
    }

    shutdown.shutdown();
}

#[test]
fn probe_tracks_shards_added_and_removed_at_runtime() {
    let views = fixture_views();
    let router = Arc::new(
        RouterBuilder::new(RouterConfig {
            replication: 2,
            probe_interval: Duration::ZERO, // probe runs only via probe_now()
            drain_timeout: Duration::from_secs(2),
            ..RouterConfig::default()
        })
        .local_shard(
            fixture_store(&views),
            BatchConfig {
                max_batch: 16,
                max_wait: Duration::from_millis(1),
                ..BatchConfig::default()
            },
        )
        .build(),
    );

    // Admit a shard at runtime, then knock it out: probing while the backend
    // is down must leave it dead.
    let backend = Backend::start("127.0.0.1:0", &views);
    let table = router.add_shard(&backend.addr.to_string()).unwrap();
    let added = table
        .iter()
        .find(|s| s.label == backend.addr.to_string())
        .unwrap()
        .clone();
    let dead_addr = backend.kill();
    router.mark_dead(added.id as usize);
    router.probe_now();
    let snapshot = router.cluster_snapshot();
    let entry = snapshot.iter().find(|s| s.id == added.id).unwrap();
    assert!(!entry.alive, "probe revived a shard whose backend is down");

    // The backend comes back on its old port: the probe must return the
    // *runtime-added* shard to rotation (the original bug only revived shards
    // known at startup).
    let mut revived = None;
    let rebind_by = Instant::now() + Duration::from_secs(10);
    while revived.is_none() && Instant::now() < rebind_by {
        let server = Server::bind(
            dead_addr.to_string(),
            fixture_store(&views),
            BatchConfig::default(),
        );
        match server {
            Ok(s) => {
                revived = Some(Backend {
                    addr: s.local_addr().unwrap(),
                    shutdown: s.shutdown_handle(),
                    thread: {
                        let (tx, rx) = std::sync::mpsc::channel();
                        tx.send(s).unwrap();
                        std::thread::spawn(move || rx.recv().unwrap().run().unwrap())
                    },
                })
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    let revived = revived.expect("could not rebind the dead shard's port");
    router.probe_now();
    let snapshot = router.cluster_snapshot();
    let entry = snapshot.iter().find(|s| s.id == added.id).unwrap();
    assert!(entry.alive, "probe never revived the runtime-added shard");

    // Remove it: the probe walks the current table, so a removed shard is
    // forgotten — probing again neither resurrects it nor panics.
    router.remove_shard(added.id).unwrap();
    router.probe_now();
    assert!(
        router.cluster_snapshot().iter().all(|s| s.id != added.id),
        "removed shard reappeared after a probe pass"
    );
    revived.kill();
}
