//! [`TrainerService`] — zero-downtime model refresh from live serving traffic.
//!
//! The trainer wraps a [`BatchEngine`] behind the same [`TransformService`]
//! surface the TCP front speaks, and *taps* the transform stream: every request
//! for the watched model clones the request's `Arc`'d input handle (never the
//! matrices) into a bounded reservoir of recent chunks. A background worker —
//! woken by a wire-level `Refit` trigger or a periodic timer, never the event
//! loop — then:
//!
//! 1. folds the reservoir into mergeable sufficient statistics
//!    ([`stream::StreamingRegistry`]), so refit cost is independent of how much
//!    traffic was observed;
//! 2. refits the method, warm-starting iterative solvers (TCCA's CP-ALS) from
//!    the currently served factors;
//! 3. writes the new generation to `<name>.mvm.tmp` with bumped lineage
//!    (`model_version + 1`, `parent_crc` = serving model's payload CRC),
//!    atomically renames it over `<name>.mvm`, and swaps it in through
//!    [`ModelStore::rescan`].
//!
//! The swap is the only serving-visible moment, and it blocks nothing: requests
//! in flight hold the old model's `Arc` and finish on it, requests arriving
//! after the rescan load the new generation. The measured rename+rescan window
//! is exported as `trainer/last_swap_micros`.

use crate::batch::{OutputsCallback, ReplyCallback};
use crate::service::TransformService;
use crate::wire::{ModelInfo, Precision, RescanReport};
use crate::{BatchEngine, Result, ServeError, MODEL_EXTENSION};
use linalg::Matrix;
use mvcore::FitSpec;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use stream::StreamingRegistry;

/// Trainer knobs.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// The model (store name) to watch and refresh.
    pub model: String,
    /// Fit parameters for refits (rank and epsilon should match the serving
    /// model; the iterative knobs may differ — e.g. a tighter tolerance).
    pub spec: FitSpec,
    /// Refit on this cadence even without an explicit trigger (`None`: refit
    /// only on wire-level `Refit` requests).
    pub interval: Option<Duration>,
    /// Bounded memory: at most this many recent input chunks are retained;
    /// older chunks fall off the front. One chunk is one request's views.
    pub reservoir_chunks: usize,
    /// Keep each superseded generation as `<name>@v<N>.mvm` beside the live
    /// file instead of overwriting it — the history stays servable by name.
    pub keep_history: bool,
}

impl TrainerConfig {
    /// Sensible defaults for watching `model`: trigger-only refits over a
    /// 256-chunk reservoir, no history.
    pub fn watching(model: impl Into<String>, spec: FitSpec) -> Self {
        Self {
            model: model.into(),
            spec,
            interval: None,
            reservoir_chunks: 256,
            keep_history: false,
        }
    }
}

#[derive(Debug, Default, Clone)]
struct TrainerCounters {
    refits: u64,
    skipped: u64,
    errors: u64,
    model_version: u64,
    last_sweeps: u64,
    last_refit_micros: u64,
    last_swap_micros: u64,
    observed_chunks: u64,
}

struct TrainerState {
    reservoir: VecDeque<Arc<Vec<Matrix>>>,
    pending: bool,
    shutdown: bool,
    counters: TrainerCounters,
}

struct Shared {
    engine: Arc<BatchEngine>,
    dir: PathBuf,
    config: TrainerConfig,
    streaming: StreamingRegistry,
    state: Mutex<TrainerState>,
    wake: Condvar,
}

/// A [`TransformService`] that serves through a wrapped [`BatchEngine`] while a
/// background worker refreshes one model from the traffic it observes. Drop
/// (the last handle) to stop the worker.
pub struct TrainerService {
    shared: Arc<Shared>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl TrainerService {
    /// Wrap `engine` (serving models out of `dir`) with a refresh worker for
    /// `config.model`. The directory must be the one backing the engine's
    /// store — refreshed generations are written there and picked up by
    /// rescan.
    pub fn start(engine: Arc<BatchEngine>, dir: impl Into<PathBuf>, config: TrainerConfig) -> Self {
        let shared = Arc::new(Shared {
            engine,
            dir: dir.into(),
            config,
            streaming: StreamingRegistry::with_builtin(),
            state: Mutex::new(TrainerState {
                reservoir: VecDeque::new(),
                pending: false,
                shutdown: false,
                counters: TrainerCounters::default(),
            }),
            wake: Condvar::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("tcca-trainer".into())
            .spawn(move || worker_loop(worker_shared))
            .expect("spawn trainer worker");
        Self {
            shared,
            worker: Mutex::new(Some(handle)),
        }
    }

    /// The wrapped engine (e.g. for direct in-process transforms in tests).
    pub fn engine(&self) -> &Arc<BatchEngine> {
        &self.shared.engine
    }

    /// Run one refit synchronously on the calling thread (tests, CLI). The
    /// serving path never calls this — wire triggers go through the worker.
    pub fn refit_now(&self) -> Result<()> {
        do_refit(&self.shared).map(|_| ())
    }

    fn counters(&self) -> Vec<(String, u64)> {
        let st = self.shared.state.lock().expect("trainer state lock");
        let c = &st.counters;
        vec![
            ("trainer/refits".into(), c.refits),
            ("trainer/skipped".into(), c.skipped),
            ("trainer/errors".into(), c.errors),
            ("trainer/model_version".into(), c.model_version),
            ("trainer/last_sweeps".into(), c.last_sweeps),
            ("trainer/last_refit_micros".into(), c.last_refit_micros),
            ("trainer/last_swap_micros".into(), c.last_swap_micros),
            ("trainer/observed_chunks".into(), c.observed_chunks),
            ("trainer/reservoir_chunks".into(), st.reservoir.len() as u64),
        ]
    }
}

impl Drop for TrainerService {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("trainer state lock");
            st.shutdown = true;
        }
        self.shared.wake.notify_all();
        if let Some(handle) = self.worker.lock().expect("trainer worker lock").take() {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        {
            let mut st = shared.state.lock().expect("trainer state lock");
            while !st.shutdown && !st.pending {
                match shared.config.interval {
                    Some(interval) => {
                        let (guard, timeout) = shared
                            .wake
                            .wait_timeout(st, interval)
                            .expect("trainer state lock");
                        st = guard;
                        if timeout.timed_out() {
                            break; // periodic tick: refit without a trigger
                        }
                    }
                    None => st = shared.wake.wait(st).expect("trainer state lock"),
                }
            }
            if st.shutdown {
                return;
            }
            st.pending = false;
        }
        if do_refit(&shared).is_err() {
            let mut st = shared.state.lock().expect("trainer state lock");
            st.counters.errors += 1;
        }
    }
}

/// One full accumulate → refit → swap cycle. Returns `false` when there was
/// nothing to do (empty reservoir). The reservoir is *not* drained: it is a
/// sliding window over recent traffic, so consecutive refits see overlapping
/// (progressively fresher) samples.
fn do_refit(shared: &Shared) -> Result<bool> {
    let chunks: Vec<Arc<Vec<Matrix>>> = {
        let st = shared.state.lock().expect("trainer state lock");
        st.reservoir.iter().cloned().collect()
    };
    if chunks.is_empty() {
        let mut st = shared.state.lock().expect("trainer state lock");
        st.counters.skipped += 1;
        return Ok(false);
    }

    let name = &shared.config.model;
    let store = shared.engine.store();
    let meta = store.entry(name)?.meta().clone();
    if !shared.streaming.supports(&meta.method) {
        return Err(ServeError::Remote(format!(
            "model {name:?} uses {}, which has no streaming refit",
            meta.method
        )));
    }

    let t_refit = Instant::now();
    let dims: Vec<usize> = chunks[0].iter().map(|m| m.rows()).collect();
    let mut stats = shared
        .streaming
        .new_stats(&meta.method, &dims, &shared.config.spec)?;
    for chunk in &chunks {
        let chunk_dims: Vec<usize> = chunk.iter().map(|m| m.rows()).collect();
        if chunk_dims == dims {
            stats.partial_fit(chunk)?;
        }
        // Mismatched chunks (the model was already swapped for different view
        // dims mid-window) are silently skipped — they belong to a dead shape.
    }
    let prev = store.get(name)?;
    let (model, sweeps) =
        shared
            .streaming
            .refit(&meta.method, Some(prev.as_ref()), stats.as_ref())?;
    let refit_micros = t_refit.elapsed().as_micros() as u64;

    // New generation: bumped version, parented on the serving payload's CRC.
    let version = meta.model_version + 1;
    let final_path = shared.dir.join(format!("{name}.{MODEL_EXTENSION}"));
    let tmp_path = shared.dir.join(format!("{name}.{MODEL_EXTENSION}.tmp"));
    {
        let mut w = std::io::BufWriter::new(std::fs::File::create(&tmp_path)?);
        mvcore::persist::write_model_versioned(
            &mut w,
            &meta.method,
            model.dim(),
            model.num_views(),
            model.input_kind(),
            version,
            meta.checksum,
            &model.save_state()?,
        )?;
        std::io::Write::flush(&mut w)?;
    }
    if shared.config.keep_history {
        let kept = shared
            .dir
            .join(format!("{name}@v{}.{MODEL_EXTENSION}", meta.model_version));
        let _ = std::fs::copy(&final_path, kept);
    }

    // The swap: an atomic rename, then the store's CRC-aware rescan picks the
    // changed file up. In-flight requests keep their `Arc` on the old model.
    let t_swap = Instant::now();
    std::fs::rename(&tmp_path, &final_path)?;
    store.rescan()?;
    let swap_micros = t_swap.elapsed().as_micros() as u64;

    let mut st = shared.state.lock().expect("trainer state lock");
    st.counters.refits += 1;
    st.counters.model_version = version;
    st.counters.last_sweeps = sweeps as u64;
    st.counters.last_refit_micros = refit_micros;
    st.counters.last_swap_micros = swap_micros;
    Ok(true)
}

impl TransformService for TrainerService {
    fn submit_transform(
        &self,
        model: &str,
        inputs: Arc<Vec<Matrix>>,
        deadline: Option<Instant>,
        reply: ReplyCallback,
    ) {
        if model == shared_model(&self.shared) {
            let mut st = self.shared.state.lock().expect("trainer state lock");
            st.counters.observed_chunks += 1;
            st.reservoir.push_back(Arc::clone(&inputs));
            while st.reservoir.len() > self.shared.config.reservoir_chunks.max(1) {
                st.reservoir.pop_front();
            }
        }
        self.shared
            .engine
            .submit_transform(model, inputs, deadline, reply);
    }

    fn submit_transform_view(
        &self,
        model: &str,
        which: usize,
        input: Arc<Matrix>,
        precision: Precision,
        deadline: Option<Instant>,
        reply: ReplyCallback,
    ) {
        // Single-view requests are not recorded: a sufficient-statistics update
        // needs every view of an instance.
        self.shared
            .engine
            .submit_transform_view(model, which, input, precision, deadline, reply);
    }

    fn submit_outputs(
        &self,
        model: &str,
        inputs: Arc<Vec<Matrix>>,
        deadline: Option<Instant>,
        reply: OutputsCallback,
    ) {
        self.shared
            .engine
            .submit_outputs(model, inputs, deadline, reply);
    }

    fn catalog(&self) -> Result<Vec<ModelInfo>> {
        TransformService::catalog(self.shared.engine.as_ref())
    }

    fn rescan(&self) -> Result<RescanReport> {
        TransformService::rescan(self.shared.engine.as_ref())
    }

    fn stats(&self) -> Vec<(String, u64)> {
        let mut counters = self.shared.engine.stats().counters();
        counters.extend(self.counters());
        counters
    }

    /// Signal the worker and return the counter snapshot at trigger time — the
    /// refit itself runs off the caller's thread. Poll [`TransformService::stats`]
    /// for `trainer/refits` advancing to watch it land.
    fn trigger_refit(&self) -> Result<Vec<(String, u64)>> {
        {
            let mut st = self.shared.state.lock().expect("trainer state lock");
            st.pending = true;
        }
        self.shared.wake.notify_all();
        Ok(TransformService::stats(self))
    }
}

fn shared_model(shared: &Shared) -> &str {
    &shared.config.model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BatchConfig;
    use datasets::{secstr_dataset, SecStrConfig};
    use mvcore::EstimatorRegistry;
    use std::path::Path;

    fn fixture_views(n: usize, seed: u64) -> Vec<Matrix> {
        let data = secstr_dataset(&SecStrConfig {
            n_instances: n,
            seed,
            difficulty: 0.8,
        });
        data.views().to_vec()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tcca-trainer-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn save_pca(dir: &Path, name: &str, views: &[Matrix], spec: &FitSpec) {
        let registry = EstimatorRegistry::with_builtin();
        let model = registry.fit("PCA", views, spec).unwrap();
        ModelStore::new(EstimatorRegistry::with_builtin())
            .save(dir, name, model.as_ref())
            .unwrap();
    }

    use crate::ModelStore;

    fn trainer_over(dir: &Path, config: TrainerConfig) -> TrainerService {
        let store = Arc::new(ModelStore::open(EstimatorRegistry::with_builtin(), dir).unwrap());
        let engine = Arc::new(BatchEngine::start(
            store,
            BatchConfig {
                max_batch: 32,
                max_wait: Duration::from_millis(1),
                ..BatchConfig::default()
            },
        ));
        TrainerService::start(engine, dir, config)
    }

    fn transform(svc: &TrainerService, model: &str, inputs: Vec<Matrix>) -> Result<Matrix> {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        svc.submit_transform(
            model,
            Arc::new(inputs),
            None,
            Box::new(move |r| drop(tx.send(r))),
        );
        rx.recv().expect("trainer reply")
    }

    fn counter(svc: &TrainerService, name: &str) -> u64 {
        TransformService::stats(svc)
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing counter {name}"))
    }

    #[test]
    fn refit_swaps_in_a_new_generation_with_lineage() {
        let spec = FitSpec::with_rank(2).epsilon(1e-2).seed(3);
        let views = fixture_views(40, 11);
        let dir = tmp_dir("swap");
        save_pca(&dir, "m", &views, &spec);
        let svc = trainer_over(&dir, TrainerConfig::watching("m", spec));

        // Traffic lands in the reservoir and is served normally.
        let before = transform(&svc, "m", views.clone()).unwrap();
        assert_eq!(counter(&svc, "trainer/reservoir_chunks"), 1);

        // Synchronous refit: version bumps, parent CRC links to the old payload.
        let old_meta = svc.engine().store().entry("m").unwrap().meta().clone();
        assert_eq!(old_meta.model_version, 0);
        svc.refit_now().unwrap();
        let meta = svc.engine().store().entry("m").unwrap().meta().clone();
        assert_eq!(meta.model_version, 1);
        assert_eq!(meta.parent_crc, old_meta.checksum);
        assert_eq!(counter(&svc, "trainer/refits"), 1);
        assert!(counter(&svc, "trainer/last_swap_micros") > 0);

        // The reservoir held exactly the fit sample, so the exact-moment
        // streaming PCA must reproduce the one-shot model bit-for-bit: replies
        // across the swap are identical.
        let after = transform(&svc, "m", views.clone()).unwrap();
        assert_eq!(after.as_slice(), before.as_slice(), "swap changed replies");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trigger_is_asynchronous_and_lands_via_the_worker() {
        let spec = FitSpec::with_rank(2).epsilon(1e-2).seed(3);
        let views = fixture_views(40, 12);
        let dir = tmp_dir("async");
        save_pca(&dir, "m", &views, &spec);
        let svc = trainer_over(&dir, TrainerConfig::watching("m", spec));
        let _ = transform(&svc, "m", views.clone()).unwrap();

        let snapshot = svc.trigger_refit().unwrap();
        assert!(snapshot.iter().any(|(n, _)| n == "trainer/refits"));
        let deadline = Instant::now() + Duration::from_secs(10);
        while counter(&svc, "trainer/refits") == 0 {
            assert!(
                Instant::now() < deadline,
                "worker never completed the refit"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(counter(&svc, "trainer/model_version"), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_reservoir_skips_and_history_keeps_generations() {
        let spec = FitSpec::with_rank(2).epsilon(1e-2).seed(3);
        let views = fixture_views(40, 13);
        let dir = tmp_dir("history");
        save_pca(&dir, "m", &views, &spec);
        let mut config = TrainerConfig::watching("m", spec);
        config.keep_history = true;
        let svc = trainer_over(&dir, config);

        // No traffic yet: the refit is a counted no-op, the file is untouched.
        svc.refit_now().unwrap();
        assert_eq!(counter(&svc, "trainer/skipped"), 1);
        assert_eq!(counter(&svc, "trainer/refits"), 0);

        let _ = transform(&svc, "m", views.clone()).unwrap();
        svc.refit_now().unwrap();
        assert!(dir.join("m@v0.mvm").exists(), "history generation missing");
        // The preserved generation is indexed by rescan and stays servable.
        svc.rescan().unwrap();
        assert!(transform(&svc, "m@v0", views.clone()).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
