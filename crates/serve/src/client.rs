//! Blocking TCP client for the `tcca_serve` protocol (v1–v5).
//!
//! The one-call-at-a-time methods ([`Client::transform`], [`Client::ping`], …)
//! speak plain v1 frames. The v2 surface is [`Client::send`] / [`Client::recv`]:
//! `send` fires a [`Request`] wrapped in a tagged envelope *without waiting*, and
//! `recv` returns the next `(id, response)` pair the server produced — possibly out
//! of request order. Pipelining many tagged requests over one connection keeps the
//! socket full instead of paying a round trip per request. The `*_deadline`
//! variants speak the v4 envelope: the remaining time budget rides the wire, so
//! the server sheds work it cannot finish in time with an in-band verdict.
//!
//! ## Timeouts
//!
//! [`Client::connect_timeout`] used to arm one socket timeout for the life of
//! the connection, which let a long-lived connection accumulate slack: a write
//! that burned most of the budget left the read with a full, fresh timeout.
//! The client now carries a per-**operation** budget ([`Client::set_op_timeout`]):
//! each call re-arms the socket with the time *remaining* in that operation's
//! budget before every write and read, so one call can never take more than its
//! budget end to end.
//!
//! ## Fault injection
//!
//! When a [`crate::FaultPlan`] targeting this connection's port is installed,
//! each connect/read/write consults the deterministic fault layer
//! ([`crate::faults`]) — injected refusals, stalls and truncated frames exercise
//! exactly the failure paths the router's retry discipline must survive. With no
//! plan installed the entire cost is one relaxed atomic load per connection.

use crate::faults::{self, Site};
use crate::wire::{
    read_frame, write_frame, ModelInfo, NamedOutput, Precision, Request, RescanReport, Response,
    ShardInfo,
};
use crate::{Result, ServeError};
use linalg::Matrix;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// One connection to a serving endpoint.
pub struct Client {
    reader: std::io::BufReader<TcpStream>,
    writer: std::io::BufWriter<TcpStream>,
    next_id: u64,
    /// Per-operation time budget; `None` waits indefinitely.
    op_timeout: Option<Duration>,
    /// Whether this connection's peer port was in the installed fault plan's
    /// blast radius at connect time (re-checked against the layer's activity
    /// flag on every use, so clearing the plan instantly restores clean I/O).
    faulty: bool,
}

impl Client {
    /// Connect to a serving endpoint.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let resolved = resolve(addr)?;
        let faulty = check_connect_fault(resolved.port())?;
        let stream = TcpStream::connect(resolved)?;
        Self::from_stream(stream, None, faulty)
    }

    /// Connect with a deadline on the connect and a per-operation budget on
    /// every subsequent call. The router uses this for its shard links: a hung
    /// shard then surfaces as an I/O error (and fails over) instead of wedging
    /// a worker forever.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Self> {
        let resolved = resolve(addr)?;
        let faulty = check_connect_fault(resolved.port())?;
        let stream = TcpStream::connect_timeout(&resolved, timeout)?;
        Self::from_stream(stream, Some(timeout), faulty)
    }

    fn from_stream(stream: TcpStream, op_timeout: Option<Duration>, faulty: bool) -> Result<Self> {
        stream.set_nodelay(true)?;
        Ok(Self {
            reader: std::io::BufReader::new(stream.try_clone()?),
            writer: std::io::BufWriter::new(stream),
            next_id: 1,
            op_timeout,
            faulty,
        })
    }

    /// Set the per-operation time budget (`None` waits indefinitely). Each
    /// subsequent call gets a fresh budget; the socket is re-armed with the
    /// remaining slice before every write and read inside the call.
    pub fn set_op_timeout(&mut self, timeout: Option<Duration>) {
        self.op_timeout = timeout;
    }

    /// This operation's absolute deadline under the current budget.
    fn op_deadline(&self) -> Option<Instant> {
        self.op_timeout.map(|t| Instant::now() + t)
    }

    fn faults_armed(&self) -> bool {
        self.faulty && faults::active()
    }

    /// Time left before `deadline`, or the in-band timeout error.
    fn remaining(deadline: Instant) -> Result<Duration> {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "operation deadline elapsed",
            )));
        }
        Ok(left)
    }

    /// Write one request frame, re-arming the write timeout with the remaining
    /// budget (and consulting the fault layer when this connection is in a
    /// plan's blast radius).
    fn write_request(&mut self, payload: &[u8], deadline: Option<Instant>) -> Result<()> {
        if self.faults_armed() {
            if let Some(delay) = faults::fires(Site::WriteDelay) {
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
            if faults::fires(Site::WriteTrunc).is_some() {
                // Emit half a length prefix, then fail: the peer is left
                // holding an unfinishable frame, exactly like a sender dying
                // mid-write.
                use std::io::Write;
                let len = (payload.len() as u32).to_le_bytes();
                let _ = self.writer.write_all(&len[..2]);
                let _ = self.writer.flush();
                return Err(ServeError::Io(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "injected truncated frame (fault layer)",
                )));
            }
        }
        if let Some(d) = deadline {
            self.writer
                .get_ref()
                .set_write_timeout(Some(Self::remaining(d)?))?;
        }
        write_frame(&mut self.writer, payload)?;
        Ok(())
    }

    /// Read one reply frame, re-arming the read timeout with the remaining
    /// budget.
    fn read_reply(&mut self, deadline: Option<Instant>) -> Result<Vec<u8>> {
        if self.faults_armed() {
            if let Some(delay) = faults::fires(Site::ReadDelay) {
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
        }
        if let Some(d) = deadline {
            self.reader
                .get_ref()
                .set_read_timeout(Some(Self::remaining(d)?))?;
        }
        read_frame(&mut self.reader)?.ok_or_else(|| {
            ServeError::Protocol("server closed the connection before replying".into())
        })
    }

    fn call(&mut self, request: &Request) -> Result<Response> {
        let deadline = self.op_deadline();
        self.write_request(&request.encode(), deadline)?;
        let payload = self.read_reply(deadline)?;
        Response::decode(&payload)
    }

    /// One blocking call under the v4 deadline envelope: the remaining budget
    /// (`budget_ms`, relative to the server's receipt) rides the wire, so the
    /// server itself drops the work in-band if it cannot finish in time.
    fn call_deadline(&mut self, request: Request, budget_ms: u32) -> Result<Response> {
        let deadline = self.op_deadline();
        let id = self.next_id;
        self.next_id += 1;
        let tagged = request.tagged_deadline(id, budget_ms);
        self.write_request(&tagged.encode(), deadline)?;
        let payload = self.read_reply(deadline)?;
        match Response::decode(&payload)? {
            Response::Tagged { id: rid, inner } if rid == id => Ok(*inner),
            other => Err(ServeError::Protocol(format!(
                "expected the reply tagged {id}, got {other:?}"
            ))),
        }
    }

    /// Pipelined send (protocol v2): wrap `request` in a tagged envelope with a
    /// fresh id, write it, and return the id without waiting for the reply.
    pub fn send(&mut self, request: &Request) -> Result<u64> {
        let deadline = self.op_deadline();
        let id = self.next_id;
        self.next_id += 1;
        let tagged = request.clone().tagged(id);
        self.write_request(&tagged.encode(), deadline)?;
        Ok(id)
    }

    /// Pipelined send carrying a deadline (protocol v4): like [`Client::send`]
    /// but the server is told it has `budget_ms` from receipt to answer.
    pub fn send_deadline(&mut self, request: &Request, budget_ms: u32) -> Result<u64> {
        let deadline = self.op_deadline();
        let id = self.next_id;
        self.next_id += 1;
        let tagged = request.clone().tagged_deadline(id, budget_ms);
        self.write_request(&tagged.encode(), deadline)?;
        Ok(id)
    }

    /// Pipelined receive (protocol v2): the next tagged reply as `(id, response)`.
    /// Replies may arrive out of request order; match them by id.
    pub fn recv(&mut self) -> Result<(u64, Response)> {
        let deadline = self.op_deadline();
        let payload = self.read_reply(deadline)?;
        match Response::decode(&payload)? {
            Response::Tagged { id, inner } => Ok((id, *inner)),
            other => Err(ServeError::Protocol(format!(
                "expected a tagged reply, got {other:?}"
            ))),
        }
    }

    /// Map a non-success reply onto the error taxonomy: overload and deadline
    /// verdicts keep their own variants (so retry policy never string-matches),
    /// plain errors become [`ServeError::Remote`].
    fn error_from(resp: Response, op: &str) -> ServeError {
        match resp {
            Response::Error(msg) => ServeError::Remote(msg),
            Response::Overloaded(msg) => ServeError::Overloaded(msg),
            Response::DeadlineExceeded(msg) => ServeError::DeadlineExceeded(msg),
            other => ServeError::Protocol(format!("unexpected reply to {op}: {other:?}")),
        }
    }

    /// Project instances through a stored model; the reply is bit-exact against the
    /// in-process `transform` of the same model.
    pub fn transform(&mut self, model: &str, inputs: &[Matrix]) -> Result<Matrix> {
        match self.call(&Request::Transform {
            model: model.to_string(),
            inputs: inputs.to_vec(),
        })? {
            Response::Embedding(z) => Ok(z),
            other => Err(Self::error_from(other, "Transform")),
        }
    }

    /// [`Client::transform`] with `budget_ms` of deadline on the wire (v4).
    pub fn transform_deadline(
        &mut self,
        model: &str,
        inputs: &[Matrix],
        budget_ms: u32,
    ) -> Result<Matrix> {
        match self.call_deadline(
            Request::Transform {
                model: model.to_string(),
                inputs: inputs.to_vec(),
            },
            budget_ms,
        )? {
            Response::Embedding(z) => Ok(z),
            other => Err(Self::error_from(other, "Transform")),
        }
    }

    /// Project a single view through the model's per-view projection (v2), at
    /// the default `f64` precision.
    pub fn transform_view(&mut self, model: &str, view: usize, input: &Matrix) -> Result<Matrix> {
        self.transform_view_precision(model, view, input, Precision::F64)
    }

    /// [`Client::transform_view`] with an explicit compute precision (v6).
    /// [`Precision::F32`] travels as the v6 opcode; servers without an `f32`
    /// shadow for the model serve the `f64` path and the reply is
    /// indistinguishable in shape.
    pub fn transform_view_precision(
        &mut self,
        model: &str,
        view: usize,
        input: &Matrix,
        precision: Precision,
    ) -> Result<Matrix> {
        match self.call(&Request::TransformView {
            model: model.to_string(),
            view: view as u32,
            input: input.clone(),
            precision,
        })? {
            Response::Embedding(z) => Ok(z),
            other => Err(Self::error_from(other, "TransformView")),
        }
    }

    /// [`Client::transform_view`] with `budget_ms` of deadline on the wire (v4).
    pub fn transform_view_deadline(
        &mut self,
        model: &str,
        view: usize,
        input: &Matrix,
        budget_ms: u32,
    ) -> Result<Matrix> {
        self.transform_view_deadline_precision(model, view, input, budget_ms, Precision::F64)
    }

    /// [`Client::transform_view_deadline`] with an explicit compute precision
    /// (v6).
    pub fn transform_view_deadline_precision(
        &mut self,
        model: &str,
        view: usize,
        input: &Matrix,
        budget_ms: u32,
        precision: Precision,
    ) -> Result<Matrix> {
        match self.call_deadline(
            Request::TransformView {
                model: model.to_string(),
                view: view as u32,
                input: input.clone(),
                precision,
            },
            budget_ms,
        )? {
            Response::Embedding(z) => Ok(z),
            other => Err(Self::error_from(other, "TransformView")),
        }
    }

    /// All named candidate outputs of a stored model (v2) — the serving path for
    /// the multi-candidate baselines whose `transform` rejects by design.
    pub fn outputs(&mut self, model: &str, inputs: &[Matrix]) -> Result<Vec<NamedOutput>> {
        match self.call(&Request::Outputs {
            model: model.to_string(),
            inputs: inputs.to_vec(),
        })? {
            Response::Outputs(candidates) => Ok(candidates),
            other => Err(Self::error_from(other, "Outputs")),
        }
    }

    /// [`Client::outputs`] with `budget_ms` of deadline on the wire (v4).
    pub fn outputs_deadline(
        &mut self,
        model: &str,
        inputs: &[Matrix],
        budget_ms: u32,
    ) -> Result<Vec<NamedOutput>> {
        match self.call_deadline(
            Request::Outputs {
                model: model.to_string(),
                inputs: inputs.to_vec(),
            },
            budget_ms,
        )? {
            Response::Outputs(candidates) => Ok(candidates),
            other => Err(Self::error_from(other, "Outputs")),
        }
    }

    /// Ask the server to re-scan its model directory (v2). Returns what changed.
    pub fn rescan(&mut self) -> Result<RescanReport> {
        match self.call(&Request::Rescan)? {
            Response::Rescanned(report) => Ok(report),
            other => Err(Self::error_from(other, "Rescan")),
        }
    }

    /// The server's observability counters (v3): engine statistics plus trainer
    /// counters when a live-refresh trainer is attached.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>> {
        match self.call(&Request::Stats)? {
            Response::Stats(counters) => Ok(counters),
            other => Err(Self::error_from(other, "Stats")),
        }
    }

    /// Trigger an asynchronous model refresh from live-traffic statistics (v3).
    /// Returns the counter snapshot at trigger time; poll [`Client::stats`] for
    /// `trainer/refits` to watch the refresh land.
    pub fn refit(&mut self) -> Result<Vec<(String, u64)>> {
        match self.call(&Request::Refit)? {
            Response::Stats(counters) => Ok(counters),
            other => Err(Self::error_from(other, "Refit")),
        }
    }

    /// The server's model catalog.
    pub fn list_models(&mut self) -> Result<Vec<ModelInfo>> {
        match self.call(&Request::ListModels)? {
            Response::Models(models) => Ok(models),
            other => Err(Self::error_from(other, "ListModels")),
        }
    }

    /// The cluster membership table of a router-backed server (v5).
    pub fn cluster_info(&mut self) -> Result<Vec<ShardInfo>> {
        match self.call(&Request::ClusterInfo)? {
            Response::Cluster(shards) => Ok(shards),
            other => Err(Self::error_from(other, "ClusterInfo")),
        }
    }

    /// Admit a new remote shard at `addr` into a router-backed server (v5).
    /// The server validates the shard (connect + ping) before admitting it;
    /// returns the updated cluster snapshot.
    pub fn add_shard(&mut self, addr: &str) -> Result<Vec<ShardInfo>> {
        match self.call(&Request::AddShard {
            addr: addr.to_string(),
        })? {
            Response::Cluster(shards) => Ok(shards),
            other => Err(Self::error_from(other, "AddShard")),
        }
    }

    /// Drain and remove the shard with the given stable id (v5). Blocks until
    /// in-flight work on the shard completed (or the server's drain timeout
    /// expired); returns the updated cluster snapshot.
    pub fn remove_shard(&mut self, shard: u64) -> Result<Vec<ShardInfo>> {
        match self.call(&Request::RemoveShard { shard })? {
            Response::Cluster(shards) => Ok(shards),
            other => Err(Self::error_from(other, "RemoveShard")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(Self::error_from(other, "Ping")),
        }
    }
}

fn resolve(addr: impl ToSocketAddrs) -> Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        ServeError::Io(std::io::Error::new(
            std::io::ErrorKind::AddrNotAvailable,
            "address resolved to nothing",
        ))
    })
}

/// Fault hook at connect time: decide whether this connection is in the
/// installed plan's blast radius, and if so whether this particular connect is
/// refused outright.
fn check_connect_fault(port: u16) -> Result<bool> {
    let faulty = faults::targets_port(port);
    if faulty && faults::fires(Site::ConnectRefuse).is_some() {
        return Err(ServeError::Io(faults::refusal()));
    }
    Ok(faulty)
}
