//! Blocking TCP client for the `tcca_serve` protocol.

use crate::wire::{read_frame, write_frame, ModelInfo, Request, Response};
use crate::{Result, ServeError};
use linalg::Matrix;
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to a serving endpoint. Requests are pipelined strictly one at a
/// time per connection; open several clients for concurrency (the server coalesces
/// same-model requests across connections).
pub struct Client {
    reader: std::io::BufReader<TcpStream>,
    writer: std::io::BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a serving endpoint.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            reader: std::io::BufReader::new(stream.try_clone()?),
            writer: std::io::BufWriter::new(stream),
        })
    }

    fn call(&mut self, request: &Request) -> Result<Response> {
        write_frame(&mut self.writer, &request.encode())?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            ServeError::Protocol("server closed the connection before replying".into())
        })?;
        Response::decode(&payload)
    }

    /// Project instances through a stored model; the reply is bit-exact against the
    /// in-process `transform` of the same model.
    pub fn transform(&mut self, model: &str, inputs: &[Matrix]) -> Result<Matrix> {
        match self.call(&Request::Transform {
            model: model.to_string(),
            inputs: inputs.to_vec(),
        })? {
            Response::Embedding(z) => Ok(z),
            Response::Error(msg) => Err(ServeError::Remote(msg)),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to Transform: {other:?}"
            ))),
        }
    }

    /// The server's model catalog.
    pub fn list_models(&mut self) -> Result<Vec<ModelInfo>> {
        match self.call(&Request::ListModels)? {
            Response::Models(models) => Ok(models),
            Response::Error(msg) => Err(ServeError::Remote(msg)),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to ListModels: {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to Ping: {other:?}"
            ))),
        }
    }
}
