//! Blocking TCP client for the `tcca_serve` protocol (v1 and v2).
//!
//! The one-call-at-a-time methods ([`Client::transform`], [`Client::ping`], …)
//! speak plain v1 frames. The v2 surface is [`Client::send`] / [`Client::recv`]:
//! `send` fires a [`Request`] wrapped in a tagged envelope *without waiting*, and
//! `recv` returns the next `(id, response)` pair the server produced — possibly out
//! of request order. Pipelining many tagged requests over one connection keeps the
//! socket full instead of paying a round trip per request.

use crate::wire::{
    read_frame, write_frame, ModelInfo, NamedOutput, Request, RescanReport, Response,
};
use crate::{Result, ServeError};
use linalg::Matrix;
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to a serving endpoint.
pub struct Client {
    reader: std::io::BufReader<TcpStream>,
    writer: std::io::BufWriter<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connect to a serving endpoint.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Connect with a deadline on the connect *and* every subsequent read/write.
    /// The router uses this for its shard links: a hung shard then surfaces as an
    /// I/O error (and fails over) instead of wedging a worker forever.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: std::time::Duration) -> Result<Self> {
        let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
            ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                "address resolved to nothing",
            ))
        })?;
        let stream = TcpStream::connect_timeout(&resolved, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Self::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> Result<Self> {
        stream.set_nodelay(true)?;
        Ok(Self {
            reader: std::io::BufReader::new(stream.try_clone()?),
            writer: std::io::BufWriter::new(stream),
            next_id: 1,
        })
    }

    fn call(&mut self, request: &Request) -> Result<Response> {
        write_frame(&mut self.writer, &request.encode())?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            ServeError::Protocol("server closed the connection before replying".into())
        })?;
        Response::decode(&payload)
    }

    /// Pipelined send (protocol v2): wrap `request` in a tagged envelope with a
    /// fresh id, write it, and return the id without waiting for the reply.
    pub fn send(&mut self, request: &Request) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let tagged = request.clone().tagged(id);
        write_frame(&mut self.writer, &tagged.encode())?;
        Ok(id)
    }

    /// Pipelined receive (protocol v2): the next tagged reply as `(id, response)`.
    /// Replies may arrive out of request order; match them by id.
    pub fn recv(&mut self) -> Result<(u64, Response)> {
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            ServeError::Protocol("server closed the connection before replying".into())
        })?;
        match Response::decode(&payload)? {
            Response::Tagged { id, inner } => Ok((id, *inner)),
            other => Err(ServeError::Protocol(format!(
                "expected a tagged reply, got {other:?}"
            ))),
        }
    }

    /// Project instances through a stored model; the reply is bit-exact against the
    /// in-process `transform` of the same model.
    pub fn transform(&mut self, model: &str, inputs: &[Matrix]) -> Result<Matrix> {
        match self.call(&Request::Transform {
            model: model.to_string(),
            inputs: inputs.to_vec(),
        })? {
            Response::Embedding(z) => Ok(z),
            Response::Error(msg) => Err(ServeError::Remote(msg)),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to Transform: {other:?}"
            ))),
        }
    }

    /// Project a single view through the model's per-view projection (v2).
    pub fn transform_view(&mut self, model: &str, view: usize, input: &Matrix) -> Result<Matrix> {
        match self.call(&Request::TransformView {
            model: model.to_string(),
            view: view as u32,
            input: input.clone(),
        })? {
            Response::Embedding(z) => Ok(z),
            Response::Error(msg) => Err(ServeError::Remote(msg)),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to TransformView: {other:?}"
            ))),
        }
    }

    /// All named candidate outputs of a stored model (v2) — the serving path for
    /// the multi-candidate baselines whose `transform` rejects by design.
    pub fn outputs(&mut self, model: &str, inputs: &[Matrix]) -> Result<Vec<NamedOutput>> {
        match self.call(&Request::Outputs {
            model: model.to_string(),
            inputs: inputs.to_vec(),
        })? {
            Response::Outputs(candidates) => Ok(candidates),
            Response::Error(msg) => Err(ServeError::Remote(msg)),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to Outputs: {other:?}"
            ))),
        }
    }

    /// Ask the server to re-scan its model directory (v2). Returns what changed.
    pub fn rescan(&mut self) -> Result<RescanReport> {
        match self.call(&Request::Rescan)? {
            Response::Rescanned(report) => Ok(report),
            Response::Error(msg) => Err(ServeError::Remote(msg)),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to Rescan: {other:?}"
            ))),
        }
    }

    /// The server's observability counters (v3): engine statistics plus trainer
    /// counters when a live-refresh trainer is attached.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>> {
        match self.call(&Request::Stats)? {
            Response::Stats(counters) => Ok(counters),
            Response::Error(msg) => Err(ServeError::Remote(msg)),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to Stats: {other:?}"
            ))),
        }
    }

    /// Trigger an asynchronous model refresh from live-traffic statistics (v3).
    /// Returns the counter snapshot at trigger time; poll [`Client::stats`] for
    /// `trainer/refits` to watch the refresh land.
    pub fn refit(&mut self) -> Result<Vec<(String, u64)>> {
        match self.call(&Request::Refit)? {
            Response::Stats(counters) => Ok(counters),
            Response::Error(msg) => Err(ServeError::Remote(msg)),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to Refit: {other:?}"
            ))),
        }
    }

    /// The server's model catalog.
    pub fn list_models(&mut self) -> Result<Vec<ModelInfo>> {
        match self.call(&Request::ListModels)? {
            Response::Models(models) => Ok(models),
            Response::Error(msg) => Err(ServeError::Remote(msg)),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to ListModels: {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply to Ping: {other:?}"
            ))),
        }
    }
}
