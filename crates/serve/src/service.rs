//! [`TransformService`] — the uniform asynchronous interface the TCP front speaks.
//!
//! The event-loop server in [`crate::Server`] never blocks on model execution: it
//! submits work with a completion callback and keeps polling sockets. Anything that
//! can answer those submissions can sit behind the server — a single
//! [`BatchEngine`] (one-process serving) or a [`crate::Router`] fanning out to
//! shards. Catalog and rescan are synchronous: they are cheap metadata operations
//! served from headers, never from payloads.

use crate::batch::{OutputsCallback, ReplyCallback};
use crate::wire::{ModelInfo, Precision, RescanReport, ShardInfo};
use crate::{BatchEngine, ModelStore, Result};
use linalg::Matrix;
use std::sync::Arc;
use std::time::Instant;

/// An asynchronous transform backend: the [`crate::Server`] submits requests and
/// returns to its poll loop; the backend invokes each callback exactly once.
///
/// Inputs are `Arc`-shared end to end: the server wraps each decoded request once,
/// and every layer below (router failover retries, engine queueing, coalescing)
/// clones the handle, never the matrices.
///
/// Every submission carries an optional **deadline**: the instant past which the
/// caller no longer wants the answer. Backends drop expired work in-band (with
/// [`crate::ServeError::DeadlineExceeded`]) rather than computing dead answers,
/// and forward the remaining budget across process boundaries (the router
/// re-encodes it into the v4 wire envelope).
pub trait TransformService: Send + Sync {
    /// Project instances through the named model (all views).
    fn submit_transform(
        &self,
        model: &str,
        inputs: Arc<Vec<Matrix>>,
        deadline: Option<Instant>,
        reply: ReplyCallback,
    );

    /// Project a single view through the model's per-view projection.
    /// `precision` is the v6 opt-in: [`Precision::F32`] asks for the engine's
    /// cached single-precision shadow of the factor matrices, falling back to
    /// the bit-exact `f64` path when the model has none.
    fn submit_transform_view(
        &self,
        model: &str,
        which: usize,
        input: Arc<Matrix>,
        precision: Precision,
        deadline: Option<Instant>,
        reply: ReplyCallback,
    );

    /// Compute all named candidate outputs of the model.
    fn submit_outputs(
        &self,
        model: &str,
        inputs: Arc<Vec<Matrix>>,
        deadline: Option<Instant>,
        reply: OutputsCallback,
    );

    /// The model catalog (header metadata only).
    fn catalog(&self) -> Result<Vec<ModelInfo>>;

    /// Re-scan backing model directories for new/changed/removed files.
    fn rescan(&self) -> Result<RescanReport>;

    /// Observability counters as name/value pairs (engine statistics, and
    /// `trainer/*` counters when a live-refresh trainer sits in the stack). A
    /// router sums them across live shards.
    fn stats(&self) -> Vec<(String, u64)> {
        Vec::new()
    }

    /// Trigger an asynchronous model refresh from accumulated live-traffic
    /// statistics, returning the counter snapshot at trigger time. Backends
    /// without a trainer report an error.
    fn trigger_refit(&self) -> Result<Vec<(String, u64)>> {
        Err(crate::ServeError::Remote(
            "this serving backend has no trainer attached".into(),
        ))
    }

    /// The cluster membership table (v5). Backends without a shard table — a
    /// plain [`BatchEngine`] — report an error; the [`crate::Router`]
    /// overrides all three control-plane ops.
    fn cluster(&self) -> Result<Vec<ShardInfo>> {
        Err(crate::ServeError::Remote(
            "this serving backend has no shard control plane".into(),
        ))
    }

    /// Validate and admit a new remote shard at `addr`, returning the updated
    /// cluster snapshot (v5).
    fn add_shard(&self, addr: &str) -> Result<Vec<ShardInfo>> {
        let _ = addr;
        Err(crate::ServeError::Remote(
            "this serving backend has no shard control plane".into(),
        ))
    }

    /// Drain and remove the shard with the given stable id, returning the
    /// updated cluster snapshot (v5). Blocks until in-flight work on the shard
    /// has completed (or the backend's drain timeout expired).
    fn remove_shard(&self, shard: u64) -> Result<Vec<ShardInfo>> {
        let _ = shard;
        Err(crate::ServeError::Remote(
            "this serving backend has no shard control plane".into(),
        ))
    }
}

/// Catalog of one store, from header metadata alone.
pub fn store_catalog(store: &ModelStore) -> Vec<ModelInfo> {
    store
        .names()
        .into_iter()
        .filter_map(|name| store.entry(&name).ok())
        .map(|entry| ModelInfo {
            name: entry.name().to_string(),
            method: entry.meta().method.clone(),
            dim: entry.meta().dim,
            num_views: entry.meta().num_views,
            input_kind: entry.meta().input_kind,
            version: entry.meta().model_version,
        })
        .collect()
}

impl TransformService for BatchEngine {
    fn submit_transform(
        &self,
        model: &str,
        inputs: Arc<Vec<Matrix>>,
        deadline: Option<Instant>,
        reply: ReplyCallback,
    ) {
        BatchEngine::submit_transform(self, model, inputs, deadline, reply);
    }

    fn submit_transform_view(
        &self,
        model: &str,
        which: usize,
        input: Arc<Matrix>,
        precision: Precision,
        deadline: Option<Instant>,
        reply: ReplyCallback,
    ) {
        BatchEngine::submit_transform_view(self, model, which, input, precision, deadline, reply);
    }

    fn submit_outputs(
        &self,
        model: &str,
        inputs: Arc<Vec<Matrix>>,
        deadline: Option<Instant>,
        reply: OutputsCallback,
    ) {
        BatchEngine::submit_outputs(self, model, inputs, deadline, reply);
    }

    fn catalog(&self) -> Result<Vec<ModelInfo>> {
        Ok(store_catalog(self.store()))
    }

    fn rescan(&self) -> Result<RescanReport> {
        self.store().rescan()
    }

    fn stats(&self) -> Vec<(String, u64)> {
        let mut counters = BatchEngine::stats(self).counters();
        counters.extend(self.store().counters());
        // Kernel-level observability (v6): how many B-panel packs the shared
        // arena saved other row bands, and which kernel mode this process
        // resolved to (0 = strict, 1 = fma) — a gauge, reported through the
        // same name/value pairs the Stats op merges by name.
        counters.push((
            "engine/shared_pack_hits".into(),
            linalg::gemm::shared_pack_hits(),
        ));
        counters.push(("kernel/mode".into(), linalg::gemm::kernel_mode() as u64));
        counters
    }
}
