//! `tcca_serve` — serve fitted multi-view models over TCP, or embed offline.
//!
//! ```text
//! tcca_serve serve   --models DIR [--addr HOST:PORT] [--max-batch N] [--max-wait-ms M]
//! tcca_serve embed   --model FILE --view CSV [--view CSV ...] [--out FILE]
//! tcca_serve inspect --model FILE
//! tcca_serve demo    --out DIR [--method NAME] [--instances N] [--rank R]
//! ```
//!
//! * `serve` indexes a directory of `.mvm` files and answers length-prefixed frame
//!   requests (see `serve::wire`), printing `listening on ADDR` once bound — with
//!   `--addr 127.0.0.1:0` the OS picks the port and the printed line is the source
//!   of truth (the CI smoke test parses it).
//! * `embed` is the one-shot offline mode: load one model file, read one CSV per
//!   view (rows = features, columns = instances, matching the `d × N` layout), and
//!   write the `N × dim` embedding as CSV to `--out` (default stdout).
//! * `inspect` prints a model file's header metadata without loading the payload.
//! * `demo` fits a small model on synthetic SecStr-like data and saves it — enough
//!   to smoke-test the serving path end to end without a dataset download.

use linalg::Matrix;
use mvcore::{EstimatorRegistry, FitSpec, MultiViewModel};
use serve::{BatchConfig, ModelStore, Server};
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("embed") => cmd_embed(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("demo") => cmd_demo(&args[1..]),
        Some("--help" | "-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("tcca_serve: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  tcca_serve serve   --models DIR [--addr HOST:PORT] [--max-batch N] [--max-wait-ms M]
  tcca_serve embed   --model FILE --view CSV [--view CSV ...] [--out FILE]
  tcca_serve inspect --model FILE
  tcca_serve demo    --out DIR [--method NAME] [--instances N] [--rank R]";

/// Minimal `--flag value` parser; repeated flags accumulate.
struct Flags {
    values: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut values = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let flag = &args[i];
            if !flag.starts_with("--") {
                return Err(format!("expected a --flag, got {flag:?}\n{USAGE}"));
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("{flag} requires a value"))?;
            values.push((flag[2..].to_string(), value.clone()));
            i += 2;
        }
        Ok(Self { values })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required\n{USAGE}"))
    }

    fn all(&self, name: &str) -> Vec<&str> {
        self.values
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} takes a number, got {v:?}")),
        }
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let dir = flags.require("models")?;
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7878");
    let config = BatchConfig {
        max_batch: flags.parsed("max-batch", BatchConfig::default().max_batch)?,
        max_wait: Duration::from_millis(flags.parsed("max-wait-ms", 2u64)?),
    };
    let store = Arc::new(
        ModelStore::open(EstimatorRegistry::with_builtin(), dir)
            .map_err(|e| format!("indexing {dir}: {e}"))?,
    );
    let names = store.names();
    let server = Server::bind(addr, store, config).map_err(|e| format!("binding {addr}: {e}"))?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    println!("serving {} model(s): {}", names.len(), names.join(", "));
    println!("listening on {bound}");
    std::io::stdout().flush().ok();
    server.run().map_err(|e| e.to_string())
}

fn cmd_embed(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let model_path = flags.require("model")?;
    let view_paths = flags.all("view");
    if view_paths.is_empty() {
        return Err("at least one --view CSV is required".into());
    }
    let model = load_model_file(model_path)?;
    if view_paths.len() != model.num_views() {
        return Err(format!(
            "model expects {} views, got {}",
            model.num_views(),
            view_paths.len()
        ));
    }
    let views = view_paths
        .iter()
        .map(|p| read_csv_matrix(p))
        .collect::<Result<Vec<_>, _>>()?;
    let z = model
        .transform(&views)
        .map_err(|e| format!("transform failed: {e}"))?;
    let csv = matrix_to_csv(&z);
    match flags.get("out") {
        Some(path) => std::fs::write(path, csv).map_err(|e| format!("writing {path}: {e}"))?,
        None => print!("{csv}"),
    }
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let path = flags.require("model")?;
    let file = std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    let mut reader = std::io::BufReader::new(file);
    let meta = mvcore::persist::read_meta(&mut reader).map_err(|e| e.to_string())?;
    println!("method:     {}", meta.method);
    println!("dim:        {}", meta.dim);
    println!("views:      {}", meta.num_views);
    println!("input kind: {:?}", meta.input_kind);
    println!("payload:    {} bytes", meta.payload_len);
    println!("checksum:   {:#010x}", meta.checksum);
    Ok(())
}

fn cmd_demo(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let dir = PathBuf::from(flags.require("out")?);
    let method = flags.get("method").unwrap_or("TCCA");
    let instances: usize = flags.parsed("instances", 60)?;
    let rank: usize = flags.parsed("rank", 2)?;
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;

    let data = datasets::secstr_dataset(&datasets::SecStrConfig {
        n_instances: instances,
        seed: 7,
        difficulty: 0.8,
    });
    let views: Vec<Matrix> = data
        .views()
        .iter()
        .map(|v| v.select_rows(&(0..10.min(v.rows())).collect::<Vec<_>>()))
        .collect();

    let registry = EstimatorRegistry::with_builtin();
    let spec = FitSpec::with_rank(rank)
        .epsilon(1e-2)
        .seed(7)
        .per_view_dim(8);
    let model = registry
        .fit(method, &views, &spec)
        .map_err(|e| format!("fitting {method}: {e}"))?;

    let name = method.to_lowercase().replace([' ', '(', ')'], "");
    let store = ModelStore::new(EstimatorRegistry::with_builtin());
    store
        .save(&dir, &name, model.as_ref())
        .map_err(|e| format!("saving: {e}"))?;
    for (p, v) in views.iter().enumerate() {
        let path = dir.join(format!("{name}.view{p}.csv"));
        std::fs::write(&path, matrix_to_csv(v))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    println!(
        "saved {name}.{} and {} view CSV(s) to {}",
        serve::MODEL_EXTENSION,
        views.len(),
        dir.display()
    );
    Ok(())
}

fn load_model_file(path: &str) -> Result<Box<dyn MultiViewModel>, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    let mut reader = std::io::BufReader::new(file);
    EstimatorRegistry::with_builtin()
        .load_model(&mut reader)
        .map_err(|e| format!("loading {path}: {e}"))
}

fn read_csv_matrix(path: &str) -> Result<Matrix, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut rows = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let row = line
            .split(',')
            .map(|cell| {
                cell.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("{path}:{}: not a number: {cell:?}", lineno + 1))
            })
            .collect::<Result<Vec<f64>, _>>()?;
        rows.push(row);
    }
    Matrix::from_rows(&rows).map_err(|e| format!("{path}: {e}"))
}

fn matrix_to_csv(m: &Matrix) -> String {
    let mut out = String::new();
    for i in 0..m.rows() {
        let row: Vec<String> = m.row(i).iter().map(|v| format!("{v:?}")).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}
