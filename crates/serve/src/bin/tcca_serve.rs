//! `tcca_serve` — serve fitted multi-view models over TCP, or embed offline.
//!
//! ```text
//! tcca_serve serve   --models DIR [--addr HOST:PORT] [--reactor poll|epoll]
//!                    [--max-batch N] [--max-wait-ms M]
//!                    [--max-queue N] [--max-per-model N]
//!                    [--rescan-ms MS] [--payload-budget-mb MB]
//!                    [--train MODEL] [--train-interval-ms MS] [--train-reservoir N]
//!                    [--train-rank R] [--train-seed S] [--train-history true]
//! tcca_serve route   [--models DIR --shards N] [--shard ADDR ...] [--addr HOST:PORT]
//!                    [--reactor poll|epoll] [--replication R] [--max-batch N]
//!                    [--max-wait-ms M] [--max-queue N] [--max-per-model N]
//! tcca_serve cluster --addr HOST:PORT [--add ADDR ...] [--remove ID ...]
//! tcca_serve bench   [--clients N] [--requests N] [--shards N] [--models N] [--out FILE]
//! tcca_serve reactor-bench [--conns N ...] [--wakeups N] [--out FILE]
//! tcca_serve soak    [--seed S] [--clients N] [--models N] [--local-shards N]
//!                    [--remote-shards N] [--phase-ms MS]
//!                    [--deadline-ms MS] [--max-queue N] [--max-per-model N]
//!                    [--assert true] [--out FILE]
//! tcca_serve embed   --model FILE --view CSV [--view CSV ...] [--out FILE]
//! tcca_serve inspect --model FILE
//! tcca_serve stats   --addr HOST:PORT [--refit true]
//! tcca_serve demo    --out DIR [--method NAME] [--instances N] [--rank R]
//! ```
//!
//! * `serve` indexes a directory of `.mvm` files and answers length-prefixed frame
//!   requests (see `serve::wire`), printing `listening on ADDR` once bound — with
//!   `--addr 127.0.0.1:0` the OS picks the port and the printed line is the source
//!   of truth (the CI smoke test parses it). `--rescan-ms` re-scans the directory on
//!   that period so new models become servable without a restart; the `Rescan` wire
//!   op does the same on demand. `--payload-budget-mb` bounds resident payload bytes
//!   with LRU eviction.
//! * `route` runs the sharded tier: N in-process shards over `--models`, and/or one
//!   remote shard per `--shard ADDR` (typically `tcca_serve serve` children).
//!   Requests shard by model name (rendezvous hashing, `--replication` replicas) and
//!   fail over when a shard dies. Prints one `shard N: LABEL` line per shard, then
//!   `listening on ADDR`. The shard set is **live**: `cluster --add/--remove` (or
//!   the v5 wire ops) admits and drains shards at runtime.
//! * `--reactor` (on `serve` and `route`) pins the event loop's readiness backend
//!   (`poll` or `epoll`); unset, the `TCCA_REACTOR` environment variable and then
//!   the platform default (epoll on Linux) decide.
//! * `cluster` talks the v5 control ops to a live router-backed server: each
//!   `--add ADDR` admits a validated remote shard, each `--remove ID` drains and
//!   removes one, then the final membership table prints.
//! * `bench` measures loopback throughput: a single-process server vs a local
//!   `--shards`-way router under the same many-client small-request workload, plus
//!   the batched `transform_view` path vs full `transform`. Emits JSON.
//! * `reactor-bench` measures per-wakeup cost against idle-connection count for
//!   both reactor backends (the poll(2) loop scans every parked socket per wakeup;
//!   epoll stays O(ready)). Emits JSON for the CI perf artifact.
//! * `soak` runs the seeded chaos harness (`serve::soak`): a sharded tier under
//!   Zipf/bursty traffic with a mid-run shard crash, injected link faults, rescan
//!   churn and eviction pressure. Emits JSON (phase metrics + counters + the fault
//!   seed for replay); `--assert true` exits non-zero if the overload contract was
//!   violated (any front-connection hang, transport error or protocol violation,
//!   or recovery below 90% of the pre-chaos baseline).
//! * `--max-queue` / `--max-per-model` bound each engine's admission queue; work
//!   beyond a bound is shed with an in-band `Overloaded` reply instead of queuing
//!   without limit (0 = unbounded).
//! * `embed` is the one-shot offline mode: load one model file, read one CSV per
//!   view (rows = features, columns = instances, matching the `d × N` layout), and
//!   write the `N × dim` embedding as CSV to `--out` (default stdout).
//! * `--train MODEL` (under `serve`) opts into live refresh: transform traffic for
//!   that model feeds a bounded reservoir, and the `Refit` wire op (or the
//!   `--train-interval-ms` timer) refits off the event loop and atomically swaps
//!   the new generation in — requests never block or fail across the swap.
//! * `inspect` prints a model file's header metadata without loading the payload,
//!   including refit lineage (`version`, `parent crc`).
//! * `stats` dumps a live server's counters (engine + `trainer/*` + `router/*`);
//!   `--refit true` also triggers an asynchronous refresh first.
//! * `demo` fits a small model on synthetic SecStr-like data and saves it — enough
//!   to smoke-test the serving path end to end without a dataset download.

use linalg::Matrix;
use mvcore::{EstimatorRegistry, FitSpec, MultiViewModel};
use serve::{
    BatchConfig, Client, ModelStore, ReactorKind, Router, RouterBuilder, RouterConfig, Server,
    ServerTuning, TrainerConfig, TrainerService,
};
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("route") => cmd_route(&args[1..]),
        Some("cluster") => cmd_cluster(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("reactor-bench") => cmd_reactor_bench(&args[1..]),
        Some("soak") => cmd_soak(&args[1..]),
        Some("embed") => cmd_embed(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("demo") => cmd_demo(&args[1..]),
        Some("--help" | "-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("tcca_serve: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  tcca_serve serve   --models DIR [--addr HOST:PORT] [--reactor poll|epoll]
                     [--max-batch N] [--max-wait-ms M]
                     [--max-queue N] [--max-per-model N]
                     [--rescan-ms MS] [--payload-budget-mb MB]
                     [--train MODEL] [--train-interval-ms MS] [--train-reservoir N]
                     [--train-rank R] [--train-seed S] [--train-history true]
  tcca_serve route   [--models DIR --shards N] [--shard ADDR ...] [--addr HOST:PORT]
                     [--reactor poll|epoll] [--replication R] [--max-batch N]
                     [--max-wait-ms M] [--max-queue N] [--max-per-model N]
  tcca_serve cluster --addr HOST:PORT [--add ADDR ...] [--remove ID ...]
  tcca_serve bench   [--clients N] [--requests N] [--shards N] [--models N] [--out FILE]
  tcca_serve reactor-bench [--conns N ...] [--wakeups N] [--out FILE]
  tcca_serve soak    [--seed S] [--clients N] [--models N] [--local-shards N]
                     [--remote-shards N] [--phase-ms MS]
                     [--deadline-ms MS] [--max-queue N] [--max-per-model N]
                     [--assert true] [--out FILE]
  tcca_serve embed   --model FILE --view CSV [--view CSV ...] [--out FILE]
  tcca_serve inspect --model FILE
  tcca_serve stats   --addr HOST:PORT [--refit true]
  tcca_serve demo    --out DIR [--method NAME] [--instances N] [--rank R]";

/// Parse the optional `--reactor poll|epoll` flag into a tuning override.
fn reactor_flag(flags: &Flags) -> Result<Option<ReactorKind>, String> {
    match flags.get("reactor") {
        None => Ok(None),
        Some(v) => ReactorKind::parse(v)
            .map(Some)
            .ok_or_else(|| format!("--reactor takes poll or epoll, got {v:?}")),
    }
}

/// Parse the shared `--max-batch/--max-wait-ms/--max-queue/--max-per-model`
/// engine flags on top of the defaults.
fn batch_flags(flags: &Flags) -> Result<BatchConfig, String> {
    let defaults = BatchConfig::default();
    Ok(BatchConfig {
        max_batch: flags.parsed("max-batch", defaults.max_batch)?,
        max_wait: Duration::from_millis(flags.parsed("max-wait-ms", 2u64)?),
        max_queue: flags.parsed("max-queue", defaults.max_queue)?,
        max_per_model: flags.parsed("max-per-model", defaults.max_per_model)?,
    })
}

/// Minimal `--flag value` parser; repeated flags accumulate.
struct Flags {
    values: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut values = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let flag = &args[i];
            if !flag.starts_with("--") {
                return Err(format!("expected a --flag, got {flag:?}\n{USAGE}"));
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("{flag} requires a value"))?;
            values.push((flag[2..].to_string(), value.clone()));
            i += 2;
        }
        Ok(Self { values })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required\n{USAGE}"))
    }

    fn all(&self, name: &str) -> Vec<&str> {
        self.values
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} takes a number, got {v:?}")),
        }
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let dir = flags.require("models")?;
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7878");
    let config = batch_flags(&flags)?;
    let rescan_ms: u64 = flags.parsed("rescan-ms", 0)?;
    let budget_mb: u64 = flags.parsed("payload-budget-mb", 0)?;
    let store = Arc::new(
        ModelStore::open(EstimatorRegistry::with_builtin(), dir)
            .map_err(|e| format!("indexing {dir}: {e}"))?,
    );
    if budget_mb > 0 {
        store.set_payload_budget(budget_mb * 1024 * 1024);
    }
    if rescan_ms > 0 {
        let store = Arc::clone(&store);
        std::thread::Builder::new()
            .name("tcca-serve-rescan".into())
            .spawn(move || loop {
                std::thread::sleep(Duration::from_millis(rescan_ms));
                match store.rescan() {
                    Ok(report) if report.added + report.removed + report.reloaded > 0 => {
                        eprintln!(
                            "tcca_serve: rescan: +{} -{} ~{}",
                            report.added, report.removed, report.reloaded
                        );
                    }
                    Ok(_) => {}
                    Err(e) => eprintln!("tcca_serve: rescan failed: {e}"),
                }
            })
            .map_err(|e| format!("spawning the rescan thread: {e}"))?;
    }
    let names = store.names();
    let tuning = ServerTuning {
        reactor: reactor_flag(&flags)?,
        ..ServerTuning::default()
    };
    // Opt-in live refresh: wrap the engine in a trainer watching one model.
    let server = if let Some(train_model) = flags.get("train") {
        let spec = FitSpec::with_rank(flags.parsed("train-rank", 2usize)?)
            .epsilon(1e-2)
            .seed(flags.parsed("train-seed", 7u64)?);
        let interval_ms: u64 = flags.parsed("train-interval-ms", 0)?;
        let mut trainer_config = TrainerConfig::watching(train_model, spec);
        trainer_config.interval = (interval_ms > 0).then(|| Duration::from_millis(interval_ms));
        trainer_config.reservoir_chunks = flags.parsed("train-reservoir", 256usize)?;
        trainer_config.keep_history = flags.get("train-history").map(str::parse) == Some(Ok(true));
        let engine = Arc::new(serve::BatchEngine::start(Arc::clone(&store), config));
        let trainer = Arc::new(TrainerService::start(
            engine,
            PathBuf::from(dir),
            trainer_config,
        ));
        Server::bind_service_tuned(addr, trainer as Arc<dyn serve::TransformService>, tuning)
    } else {
        Server::bind_tuned(addr, store, config, tuning)
    }
    .map_err(|e| format!("binding {addr}: {e}"))?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    println!("serving {} model(s): {}", names.len(), names.join(", "));
    println!("reactor: {}", server.backend().name());
    println!("listening on {bound}");
    std::io::stdout().flush().ok();
    server.run().map_err(|e| e.to_string())
}

fn cmd_route(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7879");
    let batch = batch_flags(&flags)?;
    let config = RouterConfig {
        replication: flags.parsed("replication", RouterConfig::default().replication)?,
        ..RouterConfig::default()
    };
    let local_shards: usize = flags.parsed("shards", 0)?;
    let remote_shards = flags.all("shard");
    if local_shards == 0 && remote_shards.is_empty() {
        return Err("route needs --shards N (with --models DIR) and/or --shard ADDR".into());
    }
    let mut builder = RouterBuilder::new(config);
    if local_shards > 0 {
        let dir = flags.require("models")?;
        for _ in 0..local_shards {
            let store = Arc::new(
                ModelStore::open(EstimatorRegistry::with_builtin(), dir)
                    .map_err(|e| format!("indexing {dir}: {e}"))?,
            );
            builder = builder.local_shard(store, batch);
        }
    }
    for shard_addr in &remote_shards {
        builder = builder.remote_shard(*shard_addr);
    }
    let router = Arc::new(builder.build());
    for shard in router.shards().iter() {
        println!("shard {}: {}", shard.id(), shard.label());
    }
    let tuning = ServerTuning {
        reactor: reactor_flag(&flags)?,
        ..ServerTuning::default()
    };
    let server = Server::bind_service_tuned(addr, Arc::clone(&router) as _, tuning)
        .map_err(|e| format!("binding {addr}: {e}"))?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    println!("reactor: {}", server.backend().name());
    println!("listening on {bound}");
    std::io::stdout().flush().ok();
    server.run().map_err(|e| e.to_string())
}

/// Talk the v5 control ops to a live router-backed server: admit shards
/// (`--add`, validated before entering the table), drain-and-remove shards
/// (`--remove`), then print the final membership table.
fn cmd_cluster(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let addr = flags.require("addr")?;
    let mut client = Client::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    client.set_op_timeout(Some(Duration::from_secs(30)));
    for shard_addr in flags.all("add") {
        client
            .add_shard(shard_addr)
            .map_err(|e| format!("adding shard {shard_addr}: {e}"))?;
        println!("added {shard_addr}");
    }
    for id in flags.all("remove") {
        let id: u64 = id
            .parse()
            .map_err(|_| format!("--remove takes a shard id, got {id:?}"))?;
        client
            .remove_shard(id)
            .map_err(|e| format!("removing shard {id}: {e}"))?;
        println!("removed {id}");
    }
    let cluster = client
        .cluster_info()
        .map_err(|e| format!("cluster info: {e}"))?;
    println!("{} shard(s):", cluster.len());
    for shard in cluster {
        let state = match (shard.alive, shard.draining) {
            (_, true) => "draining",
            (true, false) => "alive",
            (false, false) => "dead",
        };
        println!(
            "  {:>3}  {:<24} {:<8} inflight {:>4}  routed {}",
            shard.id, shard.label, state, shard.inflight, shard.routed
        );
    }
    Ok(())
}

/// Fit `n_models` small PCA models over shared synthetic views and save them into
/// a fresh temp directory. Returns `(dir, model names, views)`.
fn bench_fixture(n_models: usize) -> Result<(PathBuf, Vec<String>, Vec<Matrix>), String> {
    let dir = std::env::temp_dir().join(format!("tcca-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let data = datasets::secstr_dataset(&datasets::SecStrConfig {
        n_instances: 64,
        seed: 13,
        difficulty: 0.8,
    });
    let views: Vec<Matrix> = data
        .views()
        .iter()
        .map(|v| v.select_rows(&(0..8.min(v.rows())).collect::<Vec<_>>()))
        .collect();
    let registry = EstimatorRegistry::with_builtin();
    let store = ModelStore::new(EstimatorRegistry::with_builtin());
    let mut names = Vec::with_capacity(n_models);
    for i in 0..n_models {
        let name = format!("m{i}");
        let model = registry
            .fit(
                "PCA",
                &views,
                &FitSpec::with_rank(2).epsilon(1e-2).seed(40 + i as u64),
            )
            .map_err(|e| format!("fitting {name}: {e}"))?;
        store
            .save(&dir, &name, model.as_ref())
            .map_err(|e| format!("saving {name}: {e}"))?;
        names.push(name);
    }
    Ok((dir, names, views))
}

/// Drive `clients` concurrent connections of `requests` small transform requests
/// each against a serving endpoint; client `c` always requests model `c % models`
/// (the multi-tenant shape: distinct callers hammer distinct models). Returns
/// requests/second over the timed (post-warmup) phase.
fn run_workload(
    addr: std::net::SocketAddr,
    clients: usize,
    requests: usize,
    names: &[String],
    views: &[Matrix],
) -> Result<f64, String> {
    let block = 4usize;
    let blocks = views[0].cols() / block;
    let slices: Arc<Vec<Vec<Matrix>>> = Arc::new(
        (0..blocks)
            .map(|b| {
                views
                    .iter()
                    .map(|v| v.select_columns(&(block * b..block * (b + 1)).collect::<Vec<_>>()))
                    .collect()
            })
            .collect(),
    );
    // Warmup: touch every model a few times so payload loads and replica warmup
    // happen outside the timed window.
    let mut warm = Client::connect(addr).map_err(|e| format!("warmup connect: {e}"))?;
    for _ in 0..4 {
        for name in names {
            warm.transform(name, &slices[0])
                .map_err(|e| format!("warmup {name}: {e}"))?;
        }
    }
    let names: Arc<Vec<String>> = Arc::new(names.to_vec());
    let start = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let names = Arc::clone(&names);
        let slices = Arc::clone(&slices);
        handles.push(std::thread::spawn(move || -> Result<(), String> {
            let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
            let name = &names[c % names.len()];
            for i in 0..requests {
                let slice = &slices[i % slices.len()];
                client
                    .transform(name, slice)
                    .map_err(|e| format!("client {c} request {i} ({name}): {e}"))?;
            }
            Ok(())
        }));
    }
    for h in handles {
        h.join()
            .map_err(|_| "client thread panicked".to_string())??;
    }
    let secs = start.elapsed().as_secs_f64();
    Ok((clients * requests) as f64 / secs)
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let clients: usize = flags.parsed("clients", 16)?;
    let requests: usize = flags.parsed("requests", 100)?;
    let shards: usize = flags.parsed("shards", 4)?;
    let n_models: usize = flags.parsed("models", 8)?;
    // The production-shaped batching window. In the single-process server ONE
    // dispatcher opens one model's window at a time, so an 8-model workload pays up
    // to 8 windows of latency per round; the router runs one dispatcher per shard
    // and the windows overlap. That serialization — not CPU — is what sharding
    // removes (and all a 1-core container can honestly measure).
    let max_wait_ms: u64 = flags.parsed("max-wait-ms", 5)?;
    let (dir, names, views) = bench_fixture(n_models.max(1))?;
    let batch = BatchConfig {
        max_batch: 256,
        max_wait: Duration::from_millis(max_wait_ms),
        ..BatchConfig::default()
    };

    // Baseline: the single-process server (one engine, one dispatcher).
    let single_rps = {
        let store = Arc::new(
            ModelStore::open(EstimatorRegistry::with_builtin(), &dir)
                .map_err(|e| format!("indexing: {e}"))?,
        );
        let server =
            Server::bind("127.0.0.1:0", store, batch).map_err(|e| format!("binding: {e}"))?;
        let addr = server.local_addr().map_err(|e| e.to_string())?;
        let shutdown = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.run());
        let rps = run_workload(addr, clients, requests, &names, &views)?;
        shutdown.shutdown();
        let _ = thread.join();
        rps
    };

    // The sharded router over the same models, same workload.
    let router_rps = {
        let router = Router::open_local(&dir, shards, batch, RouterConfig::default())
            .map_err(|e| format!("building the router: {e}"))?;
        let router = Arc::new(router);
        let server = Server::bind_service("127.0.0.1:0", Arc::clone(&router) as _)
            .map_err(|e| format!("binding: {e}"))?;
        let addr = server.local_addr().map_err(|e| e.to_string())?;
        let shutdown = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.run());
        let rps = run_workload(addr, clients, requests, &names, &views)?;
        shutdown.shutdown();
        let _ = thread.join();
        rps
    };

    // Satellite: per-coalesced-batch execution cost of serving a *single-view*
    // projection before vs after the batched `transform_view` path. Before, the
    // only batched route was the full `transform`: stitch all `m` views, project
    // all `m` views. Now: stitch one view, one `transform_view` call. Measured on
    // the model directly (what a pool worker executes per batch), so the batching
    // window does not mask the saving.
    let (full_bps, view_bps) = {
        let file = std::fs::File::open(dir.join(format!("{}.mvm", names[0])))
            .map_err(|e| format!("opening model: {e}"))?;
        let model = EstimatorRegistry::with_builtin()
            .load_model(&mut std::io::BufReader::new(file))
            .map_err(|e| format!("loading model: {e}"))?;
        let block = 4usize;
        let batch_requests = 16usize;
        let slices: Vec<Vec<Matrix>> = (0..batch_requests)
            .map(|b| {
                let start = (block * b) % (views[0].cols() - block);
                let cols: Vec<usize> = (start..start + block).collect();
                views.iter().map(|v| v.select_columns(&cols)).collect()
            })
            .collect();
        let stitch = |v: usize| -> Matrix {
            let d = slices[0][v].rows();
            let total: usize = slices.iter().map(|s| s[v].cols()).sum();
            let mut out = Matrix::zeros(d, total);
            let mut col = 0;
            for s in &slices {
                let part = &s[v];
                for i in 0..d {
                    out.row_mut(i)[col..col + part.cols()].copy_from_slice(part.row(i));
                }
                col += part.cols();
            }
            out
        };
        let iters = 2000usize;
        let full = {
            let start = Instant::now();
            for _ in 0..iters {
                let stitched: Vec<Matrix> = (0..views.len()).map(stitch).collect();
                model
                    .transform(&stitched)
                    .map_err(|e| format!("transform: {e}"))?;
            }
            iters as f64 / start.elapsed().as_secs_f64()
        };
        let view = {
            let start = Instant::now();
            for _ in 0..iters {
                let stitched = stitch(0);
                model
                    .transform_view(0, &stitched)
                    .map_err(|e| format!("transform_view: {e}"))?;
            }
            iters as f64 / start.elapsed().as_secs_f64()
        };
        (full, view)
    };

    let json = format!(
        "{{\n  \"workload\": {{\"clients\": {clients}, \"requests_per_client\": {requests}, \
         \"models\": {n_models}, \"instances_per_request\": 4, \
         \"batch_window_ms\": {max_wait_ms}}},\n  \
         \"loopback_throughput\": {{\"single_server_rps\": {single_rps:.1}, \
         \"router_{shards}_shards_rps\": {router_rps:.1}, \
         \"speedup\": {:.2}}},\n  \
         \"transform_view_batched\": {{\"full_transform_batches_per_s\": {full_bps:.1}, \
         \"transform_view_batches_per_s\": {view_bps:.1}, \"speedup\": {:.2}}}\n}}",
        router_rps / single_rps,
        view_bps / full_bps,
    );
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, format!("{json}\n")).map_err(|e| format!("writing {path}: {e}"))?
        }
        None => println!("{json}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

/// Raise the soft open-file limit toward the hard limit so the idle-connection
/// scaling bench can hold thousands of sockets. Best-effort: a failure leaves
/// the limit unchanged and the bench degrades to whatever fits.
#[cfg(unix)]
fn raise_nofile_limit() {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    const RLIMIT_NOFILE: i32 = 7;
    unsafe extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }
    unsafe {
        let mut lim = RLimit { cur: 0, max: 0 };
        if getrlimit(RLIMIT_NOFILE, &mut lim) == 0 && lim.cur < lim.max {
            lim.cur = lim.max;
            let _ = setrlimit(RLIMIT_NOFILE, &lim);
        }
    }
}

/// Measure per-wakeup reactor cost as a function of idle-connection count.
///
/// For each backend and each `--conns` value, registers that many idle
/// loopback connections plus one active pair, then times a poke → wait →
/// drain cycle on the active connection. poll(2) rescans every registration
/// per wakeup so its cost grows with the idle count; epoll(7) should stay
/// flat. Emits the same JSON shape the perf CI artifact collects.
#[cfg(unix)]
fn cmd_reactor_bench(args: &[String]) -> Result<(), String> {
    use serve::reactor::{self, Event, Interest, ReactorKind};
    use std::io::Read as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    let flags = Flags::parse(args)?;
    let mut conn_counts: Vec<usize> = flags
        .all("conns")
        .iter()
        .map(|v| {
            v.parse()
                .map_err(|_| format!("--conns takes a number, got {v:?}"))
        })
        .collect::<Result<_, _>>()?;
    if conn_counts.is_empty() {
        conn_counts = vec![64, 4096];
    }
    let wakeups: usize = flags.parsed("wakeups", 2000)?;
    raise_nofile_limit();

    let mut backends = vec![ReactorKind::Poll];
    if cfg!(target_os = "linux") {
        backends.push(ReactorKind::Epoll);
    }

    let mut rows = Vec::new();
    for &kind in &backends {
        for &idle in &conn_counts {
            let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
            let addr = listener.local_addr().map_err(|e| e.to_string())?;
            let mut reactor =
                reactor::new_reactor(kind).map_err(|e| format!("{} reactor: {e}", kind.name()))?;

            // Idle registrations: both ends kept open, read interest, never poked.
            let mut idle_conns: Vec<(TcpStream, TcpStream)> = Vec::with_capacity(idle);
            for i in 0..idle {
                let peer = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
                let (server_side, _) = listener.accept().map_err(|e| format!("accept: {e}"))?;
                server_side
                    .set_nonblocking(true)
                    .map_err(|e| e.to_string())?;
                reactor
                    .register(server_side.as_raw_fd(), i as u64, Interest::READ)
                    .map_err(|e| format!("register: {e}"))?;
                idle_conns.push((server_side, peer));
            }

            // The active pair the timed loop pokes.
            let mut active_peer = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
            let (mut active, _) = listener.accept().map_err(|e| format!("accept: {e}"))?;
            active.set_nonblocking(true).map_err(|e| e.to_string())?;
            let active_token = u64::MAX - 2;
            reactor
                .register(active.as_raw_fd(), active_token, Interest::READ)
                .map_err(|e| format!("register: {e}"))?;

            let mut events: Vec<Event> = Vec::new();
            let mut byte = [0u8; 8];
            let start = Instant::now();
            for _ in 0..wakeups {
                active_peer.write_all(&[1]).map_err(|e| e.to_string())?;
                loop {
                    reactor
                        .wait(&mut events, 1000)
                        .map_err(|e| format!("wait: {e}"))?;
                    if events.iter().any(|e| e.token == active_token) {
                        break;
                    }
                }
                // Drain so level-triggered readiness clears before the next poke.
                while matches!(active.read(&mut byte), Ok(n) if n > 0) {}
            }
            let ns_per_wakeup = start.elapsed().as_nanos() as f64 / wakeups as f64;
            println!(
                "{:<6} idle {:>5}: {:>10.0} ns/wakeup",
                kind.name(),
                idle,
                ns_per_wakeup
            );
            rows.push(format!(
                "{{\"backend\": \"{}\", \"idle_conns\": {}, \"ns_per_wakeup\": {:.0}}}",
                kind.name(),
                idle,
                ns_per_wakeup
            ));
            reactor
                .deregister(active.as_raw_fd())
                .map_err(|e| e.to_string())?;
            for (server_side, _) in &idle_conns {
                reactor
                    .deregister(server_side.as_raw_fd())
                    .map_err(|e| e.to_string())?;
            }
        }
    }

    let json = format!(
        "{{\n  \"wakeups_per_point\": {wakeups},\n  \"reactor_wakeup\": [\n    {}\n  ]\n}}",
        rows.join(",\n    ")
    );
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, format!("{json}\n")).map_err(|e| format!("writing {path}: {e}"))?
        }
        None => println!("{json}"),
    }
    Ok(())
}

#[cfg(not(unix))]
fn cmd_reactor_bench(_args: &[String]) -> Result<(), String> {
    Err("reactor-bench requires a unix platform".into())
}

fn cmd_soak(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let defaults = serve::soak::SoakConfig::default();
    let config = serve::soak::SoakConfig {
        seed: flags.parsed("seed", defaults.seed)?,
        models: flags.parsed("models", defaults.models)?,
        clients: flags.parsed("clients", defaults.clients)?,
        phase: Duration::from_millis(flags.parsed("phase-ms", defaults.phase.as_millis() as u64)?),
        deadline_ms: flags.parsed("deadline-ms", defaults.deadline_ms)?,
        max_queue: flags.parsed("max-queue", defaults.max_queue)?,
        max_per_model: flags.parsed("max-per-model", defaults.max_per_model)?,
        // --shards is the historical spelling of --local-shards.
        local_shards: flags.parsed(
            "local-shards",
            flags.parsed("shards", defaults.local_shards)?,
        )?,
        remote_shards: flags.parsed("remote-shards", defaults.remote_shards)?,
    };
    let report = serve::soak::run_soak(&config)?;
    let json = report.to_json();
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, format!("{json}\n")).map_err(|e| format!("writing {path}: {e}"))?
        }
        None => println!("{json}"),
    }
    for phase in &report.phases {
        eprintln!(
            "{}: {} req, {} ok, {} overloaded, {} deadline, {:.0} rps, p99 {}us",
            phase.name,
            phase.requests,
            phase.ok,
            phase.overloaded,
            phase.deadline_exceeded,
            phase.rps,
            phase.p99_us
        );
    }
    let violations = report.violations();
    if flags.get("assert").map(str::parse) == Some(Ok(true)) && !violations.is_empty() {
        return Err(format!(
            "overload contract violated (seed {}):\n  {}",
            report.seed,
            violations.join("\n  ")
        ));
    }
    for v in &violations {
        eprintln!("tcca_serve: soak violation: {v}");
    }
    Ok(())
}

fn cmd_embed(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let model_path = flags.require("model")?;
    let view_paths = flags.all("view");
    if view_paths.is_empty() {
        return Err("at least one --view CSV is required".into());
    }
    let model = load_model_file(model_path)?;
    if view_paths.len() != model.num_views() {
        return Err(format!(
            "model expects {} views, got {}",
            model.num_views(),
            view_paths.len()
        ));
    }
    let views = view_paths
        .iter()
        .map(|p| read_csv_matrix(p))
        .collect::<Result<Vec<_>, _>>()?;
    let z = model
        .transform(&views)
        .map_err(|e| format!("transform failed: {e}"))?;
    let csv = matrix_to_csv(&z);
    match flags.get("out") {
        Some(path) => std::fs::write(path, csv).map_err(|e| format!("writing {path}: {e}"))?,
        None => print!("{csv}"),
    }
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let path = flags.require("model")?;
    let file = std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    let mut reader = std::io::BufReader::new(file);
    let meta = mvcore::persist::read_meta(&mut reader).map_err(|e| e.to_string())?;
    println!("method:     {}", meta.method);
    println!("dim:        {}", meta.dim);
    println!("views:      {}", meta.num_views);
    println!("input kind: {:?}", meta.input_kind);
    println!("payload:    {} bytes", meta.payload_len);
    println!("checksum:   {:#010x}", meta.checksum);
    println!("version:    {}", meta.model_version);
    println!("parent crc: {:#010x}", meta.parent_crc);
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let addr = flags.require("addr")?;
    let mut client = serve::Client::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    if flags.get("refit").map(str::parse) == Some(Ok(true)) {
        client.refit().map_err(|e| format!("refit: {e}"))?;
        println!("refit triggered");
    }
    let counters = client.stats().map_err(|e| format!("stats: {e}"))?;
    if counters.is_empty() {
        println!("(no counters reported)");
    }
    for (name, value) in counters {
        println!("{name}: {value}");
    }
    Ok(())
}

fn cmd_demo(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let dir = PathBuf::from(flags.require("out")?);
    let method = flags.get("method").unwrap_or("TCCA");
    let instances: usize = flags.parsed("instances", 60)?;
    let rank: usize = flags.parsed("rank", 2)?;
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;

    let data = datasets::secstr_dataset(&datasets::SecStrConfig {
        n_instances: instances,
        seed: 7,
        difficulty: 0.8,
    });
    let views: Vec<Matrix> = data
        .views()
        .iter()
        .map(|v| v.select_rows(&(0..10.min(v.rows())).collect::<Vec<_>>()))
        .collect();

    let registry = EstimatorRegistry::with_builtin();
    let spec = FitSpec::with_rank(rank)
        .epsilon(1e-2)
        .seed(7)
        .per_view_dim(8);
    let model = registry
        .fit(method, &views, &spec)
        .map_err(|e| format!("fitting {method}: {e}"))?;

    let name = method.to_lowercase().replace([' ', '(', ')'], "");
    let store = ModelStore::new(EstimatorRegistry::with_builtin());
    store
        .save(&dir, &name, model.as_ref())
        .map_err(|e| format!("saving: {e}"))?;
    for (p, v) in views.iter().enumerate() {
        let path = dir.join(format!("{name}.view{p}.csv"));
        std::fs::write(&path, matrix_to_csv(v))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    println!(
        "saved {name}.{} and {} view CSV(s) to {}",
        serve::MODEL_EXTENSION,
        views.len(),
        dir.display()
    );
    Ok(())
}

fn load_model_file(path: &str) -> Result<Box<dyn MultiViewModel>, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    let mut reader = std::io::BufReader::new(file);
    EstimatorRegistry::with_builtin()
        .load_model(&mut reader)
        .map_err(|e| format!("loading {path}: {e}"))
}

fn read_csv_matrix(path: &str) -> Result<Matrix, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut rows = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let row = line
            .split(',')
            .map(|cell| {
                cell.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("{path}:{}: not a number: {cell:?}", lineno + 1))
            })
            .collect::<Result<Vec<f64>, _>>()?;
        rows.push(row);
    }
    Matrix::from_rows(&rows).map_err(|e| format!("{path}: {e}"))
}

fn matrix_to_csv(m: &Matrix) -> String {
    let mut out = String::new();
    for i in 0..m.rows() {
        let row: Vec<String> = m.row(i).iter().map(|v| format!("{v:?}")).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}
