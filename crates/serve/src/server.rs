//! The TCP front of the serving stack.
//!
//! One listener thread accepts connections; each connection gets its own handler
//! thread that reads request frames, routes `Transform` requests through the shared
//! [`BatchEngine`] (where same-model requests from *different* connections coalesce)
//! and writes response frames. Request errors are reported in-band as
//! [`Response::Error`]; protocol violations close the connection.

use crate::wire::{read_frame, write_frame, ModelInfo, Request, Response};
use crate::{BatchConfig, BatchEngine, ModelStore, Result, ServeError};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A bound serving endpoint.
pub struct Server {
    listener: TcpListener,
    engine: Arc<BatchEngine>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Bind a listener and start a batch engine over the store. Use port 0 to let
    /// the OS pick a free port (see [`Server::local_addr`]).
    pub fn bind(
        addr: impl ToSocketAddrs,
        store: Arc<ModelStore>,
        config: BatchConfig,
    ) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let engine = Arc::new(BatchEngine::start(store, config));
        Ok(Self {
            listener,
            engine,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (the real port when bound with port 0).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// The engine requests are routed through (exposed for stats).
    pub fn engine(&self) -> &Arc<BatchEngine> {
        &self.engine
    }

    /// A handle that makes [`Server::run`] return: sets the stop flag and pokes the
    /// listener with a throwaway connection.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            stop: Arc::clone(&self.stop),
            addr: self.listener.local_addr().ok(),
        }
    }

    /// Accept connections until shut down, spawning one handler thread per
    /// connection. Blocks the calling thread.
    pub fn run(&self) -> Result<()> {
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) => {
                    // A failed accept (e.g. the peer vanished) is not fatal.
                    if self.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    eprintln!("tcca_serve: accept failed: {e}");
                    continue;
                }
            };
            let engine = Arc::clone(&self.engine);
            std::thread::Builder::new()
                .name("tcca-serve-conn".into())
                .spawn(move || {
                    if let Err(e) = handle_connection(stream, &engine) {
                        // Protocol violations and broken pipes end the connection;
                        // the server keeps running.
                        eprintln!("tcca_serve: connection closed: {e}");
                    }
                })
                .expect("spawning a connection handler");
        }
        Ok(())
    }
}

/// Makes a running [`Server::run`] loop return.
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
    addr: Option<SocketAddr>,
}

impl ShutdownHandle {
    /// Signal the accept loop to exit.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(addr) = self.addr {
            // Unblock the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(addr);
        }
    }
}

fn catalog(store: &ModelStore) -> Vec<ModelInfo> {
    store
        .names()
        .into_iter()
        .filter_map(|name| store.entry(&name).ok())
        .map(|entry| ModelInfo {
            name: entry.name().to_string(),
            method: entry.meta().method.clone(),
            dim: entry.meta().dim,
            num_views: entry.meta().num_views,
            input_kind: entry.meta().input_kind,
        })
        .collect()
}

fn handle_connection(stream: TcpStream, engine: &BatchEngine) -> Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = std::io::BufReader::new(stream.try_clone()?);
    let mut writer = std::io::BufWriter::new(stream);
    while let Some(payload) = read_frame(&mut reader)? {
        let response = match Request::decode(&payload) {
            Ok(Request::Transform { model, inputs }) => match engine.transform(&model, inputs) {
                Ok(z) => Response::Embedding(z),
                Err(e) => Response::Error(e.to_string()),
            },
            Ok(Request::ListModels) => Response::Models(catalog(engine.store())),
            Ok(Request::Ping) => Response::Pong,
            Err(e @ ServeError::Protocol(_)) => return Err(e),
            Err(e) => Response::Error(e.to_string()),
        };
        write_frame(&mut writer, &response.encode())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Client;
    use datasets::{secstr_dataset, SecStrConfig};
    use linalg::Matrix;
    use mvcore::{EstimatorRegistry, FitSpec, InputKind};
    use std::time::Duration;

    fn fixture_views() -> Vec<Matrix> {
        let data = secstr_dataset(&SecStrConfig {
            n_instances: 24,
            seed: 31,
            difficulty: 0.8,
        });
        data.views()
            .iter()
            .map(|v| v.select_rows(&(0..6.min(v.rows())).collect::<Vec<_>>()))
            .collect()
    }

    #[test]
    fn tcp_roundtrip_matches_in_process_transform() {
        let views = fixture_views();
        let registry = EstimatorRegistry::with_builtin();
        let model = registry
            .fit("TCCA", &views, &FitSpec::with_rank(2).seed(6))
            .unwrap();
        let expected = model.transform(&views).unwrap();

        let store = Arc::new(ModelStore::new(EstimatorRegistry::with_builtin()));
        store.insert("tcca", model);
        let server = Server::bind(
            "127.0.0.1:0",
            store,
            BatchConfig {
                max_batch: 16,
                max_wait: Duration::from_millis(1),
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = server.shutdown_handle();
        let server_thread = std::thread::spawn(move || server.run().unwrap());

        let mut client = Client::connect(addr).unwrap();
        client.ping().unwrap();

        let catalog = client.list_models().unwrap();
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog[0].name, "tcca");
        assert_eq!(catalog[0].method, "TCCA");
        assert_eq!(catalog[0].input_kind, InputKind::Views);

        let served = client.transform("tcca", &views).unwrap();
        assert_eq!(served, expected, "wire transport must be bit-exact");

        // Request errors arrive in-band and the connection survives them.
        let err = client.transform("missing", &views).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
        let err = client
            .transform("tcca", &views[..1])
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("view"), "{err}");
        client.ping().unwrap();

        shutdown.shutdown();
        server_thread.join().unwrap();
    }
}
