//! The TCP front of the serving stack: a reactor-based event loop.
//!
//! One thread owns every socket. The loop multiplexes the listener and all
//! client connections through nonblocking readiness on a pluggable
//! [`Reactor`](crate::reactor::Reactor) — epoll(7) on Linux by default, the
//! portable poll(2) backend as fallback, selected at runtime via
//! [`ServerTuning::reactor`] or the `TCCA_REACTOR` environment variable.
//! Registrations are persistent: interest is modified only when a connection's
//! state changes (backpressure, pending writes, closing), so an epoll wakeup
//! costs O(ready events) no matter how many idle connections are parked.
//!
//! Nothing slow runs on the loop. Transform work is submitted to a
//! [`TransformService`] (a [`BatchEngine`] or a [`crate::Router`]) with a
//! completion callback that encodes the reply, pushes it onto a completion
//! queue and pokes the waker. Metadata and control-plane ops (`ListModels`,
//! `Rescan`, `Stats`, `Refit`, and the v5 `AddShard`/`RemoveShard`/
//! `ClusterInfo`) run on a dedicated **control thread** through the same
//! completion-queue handoff — a rescan fanning out to slow remote shards, or a
//! drain-before-remove that waits for in-flight work, can never stall
//! transform traffic. Only `Ping` is answered inline. Tagged (protocol v2)
//! replies may overtake in-flight work out of request order; untagged (v1)
//! replies pass through a per-connection sequencing gate instead, so a v1
//! client pipelining plain frames still sees replies in request order, exactly
//! like the thread-per-connection server this replaced. A connection that
//! half-closes after sending requests stays alive until every owed reply has
//! been written.
//!
//! Malformed frames get an in-band [`Response::Error`] instead of a dropped
//! connection wherever the frame boundary is still trustworthy (bad opcode, bad
//! payload); only framing-level violations (oversized declared length, EOF mid
//! frame) close the connection — after an error reply is flushed where possible.

use crate::service::TransformService;
use crate::wire::{Request, Response};
use crate::{BatchConfig, BatchEngine, ModelStore, ReactorKind, Result, ServeError};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

#[cfg(unix)]
use crate::reactor::{self, Event, Interest, Reactor};
#[cfg(unix)]
use crate::wire::MAX_FRAME_LEN;
#[cfg(unix)]
use std::io::Read;

/// Connections accepted at once; beyond this the listener's read interest is
/// dropped until a slot frees up (pending connections wait in the OS backlog).
const MAX_CONNS: usize = 4096;

/// Read-buffer chunk size for one `read` call.
const READ_CHUNK: usize = 64 * 1024;

/// Bytes read per readiness event per socket before yielding back to the loop, so
/// one firehose connection cannot starve its neighbours (both reactor backends
/// are level-triggered: leftover bytes re-report readiness on the next pass).
#[cfg(unix)]
const READ_BUDGET: usize = 4 * READ_CHUNK;

/// Write-buffer high-water mark: while a connection has this many unflushed reply
/// bytes, the loop stops reading (and so parsing) new requests from it. A client
/// that pipelines requests but never reads its replies gets backpressure instead
/// of growing `wbuf` without bound — the same effect the old thread-per-connection
/// server got from blocking on `write_frame`.
const WBUF_HIGH_WATER: usize = 8 * 1024 * 1024;

/// Default cap on async replies owed to a single connection before further
/// transform submissions are shed with an in-band [`Response::Overloaded`].
const MAX_INFLIGHT_PER_CONN: usize = 1024;

/// Token the listener is registered under; connection tokens are slot indices,
/// far below this.
#[cfg(unix)]
const TOKEN_LISTENER: u64 = u64::MAX - 1;

/// Tunable per-connection limits for a bound server. The defaults match the
/// historical constants; tests and the soak harness shrink them to provoke
/// backpressure and shedding deterministically.
#[derive(Debug, Clone, Copy)]
pub struct ServerTuning {
    /// Write-buffer high-water mark: while a connection holds this many
    /// unflushed (or v1-order-held) reply bytes, the loop stops reading new
    /// requests from it.
    pub wbuf_high_water: usize,
    /// Maximum async replies owed to one connection. A request that would
    /// exceed it is answered with an in-band [`Response::Overloaded`] instead
    /// of being submitted — bounding per-connection queue memory no matter how
    /// aggressively a client pipelines.
    pub max_inflight_per_conn: usize,
    /// Readiness backend override. `None` resolves the `TCCA_REACTOR`
    /// environment variable, then the platform default (epoll on Linux, poll
    /// elsewhere).
    pub reactor: Option<ReactorKind>,
}

impl Default for ServerTuning {
    fn default() -> Self {
        Self {
            wbuf_high_water: WBUF_HIGH_WATER,
            max_inflight_per_conn: MAX_INFLIGHT_PER_CONN,
            reactor: None,
        }
    }
}

/// Map a service error to its wire response: overload and deadline verdicts
/// travel as their own opcodes so clients can apply retry policy without
/// string-matching; everything else stays a plain error.
fn error_response(e: ServeError) -> Response {
    match e {
        ServeError::Overloaded(msg) => Response::Overloaded(msg),
        ServeError::DeadlineExceeded(msg) => Response::DeadlineExceeded(msg),
        other => Response::Error(other.to_string()),
    }
}

/// Merge counters by name (used when layering this front's counters over the
/// service's: a front server over a router sees the same counter names again
/// from remote shards' servers).
fn merge_counters(counters: &mut Vec<(String, u64)>, extra: Vec<(String, u64)>) {
    for (name, value) in extra {
        match counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += value,
            None => counters.push((name, value)),
        }
    }
}

/// A completed transform reply waiting to be copied into a connection's write
/// buffer: `(connection slot, slot generation, v1 ordering sequence for untagged
/// requests, encoded response payload)`.
type Completion = (usize, u64, Option<u64>, Vec<u8>);

/// Wakes the event loop from worker threads (completion callbacks, shutdown).
struct LoopWaker {
    #[cfg(unix)]
    inner: reactor::Waker,
}

impl LoopWaker {
    fn wake(&self) {
        #[cfg(unix)]
        self.inner.wake();
    }
}

/// One queued metadata/control job: runs on the control thread, replies
/// through the completion queue.
type ControlJob = Box<dyn FnOnce() + Send>;

/// The control thread's work queue. Metadata and control-plane requests are
/// pushed here by the event loop and executed off-loop, so an op that talks to
/// slow remote shards (rescan fan-out, drain-before-remove) can never stall
/// socket traffic.
struct ControlQueue {
    state: Mutex<(VecDeque<ControlJob>, bool)>,
    cv: Condvar,
}

impl ControlQueue {
    fn new() -> Self {
        ControlQueue {
            state: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    fn push(&self, job: ControlJob) {
        let mut st = self.state.lock().expect("control queue lock");
        st.0.push_back(job);
        self.cv.notify_one();
    }

    fn stop(&self) {
        let mut st = self.state.lock().expect("control queue lock");
        st.1 = true;
        self.cv.notify_all();
    }

    /// Worker loop: run jobs until stopped *and* drained (queued ops still get
    /// their in-band replies attempted during shutdown).
    fn run(&self) {
        loop {
            let job = {
                let mut st = self.state.lock().expect("control queue lock");
                loop {
                    if let Some(job) = st.0.pop_front() {
                        break job;
                    }
                    if st.1 {
                        return;
                    }
                    st = self.cv.wait(st).expect("control queue lock");
                }
            };
            job();
        }
    }
}

/// A bound serving endpoint running a reactor-based event loop.
pub struct Server {
    listener: TcpListener,
    service: Arc<dyn TransformService>,
    engine: Option<Arc<BatchEngine>>,
    stop: Arc<AtomicBool>,
    completions: Arc<Mutex<Vec<Completion>>>,
    waker: Arc<LoopWaker>,
    tuning: ServerTuning,
    control: Arc<ControlQueue>,
    /// Connections that crossed the write-buffer high-water mark (counted once
    /// per excursion, not per loop pass).
    throttled: AtomicU64,
    /// Requests shed at the per-connection in-flight cap.
    shed_inflight: AtomicU64,
    /// Times the reactor's `wait` returned.
    wakeups: AtomicU64,
    /// Readiness events delivered across all wakeups.
    loop_events: AtomicU64,
    #[cfg(unix)]
    backend: ReactorKind,
    /// The reactor, parked here between bind and run (`run` takes it).
    #[cfg(unix)]
    reactor: Mutex<Option<Box<dyn Reactor>>>,
}

impl Server {
    /// Bind a listener and start a batch engine over the store. Use port 0 to let
    /// the OS pick a free port (see [`Server::local_addr`]).
    pub fn bind(
        addr: impl ToSocketAddrs,
        store: Arc<ModelStore>,
        config: BatchConfig,
    ) -> Result<Self> {
        Self::bind_tuned(addr, store, config, ServerTuning::default())
    }

    /// [`Server::bind`] with explicit per-connection limits and reactor backend
    /// choice.
    pub fn bind_tuned(
        addr: impl ToSocketAddrs,
        store: Arc<ModelStore>,
        config: BatchConfig,
        tuning: ServerTuning,
    ) -> Result<Self> {
        let engine = Arc::new(BatchEngine::start(store, config));
        let mut server = Self::bind_service_tuned(
            addr,
            Arc::clone(&engine) as Arc<dyn TransformService>,
            tuning,
        )?;
        server.engine = Some(engine);
        Ok(server)
    }

    /// Bind a listener over any [`TransformService`] — the entry point the sharded
    /// router uses to put the same wire protocol in front of many shards.
    pub fn bind_service(
        addr: impl ToSocketAddrs,
        service: Arc<dyn TransformService>,
    ) -> Result<Self> {
        Self::bind_service_tuned(addr, service, ServerTuning::default())
    }

    /// [`Server::bind_service`] with explicit per-connection limits and reactor
    /// backend choice.
    pub fn bind_service_tuned(
        addr: impl ToSocketAddrs,
        service: Arc<dyn TransformService>,
        tuning: ServerTuning,
    ) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        #[cfg(unix)]
        let (reactor, waker, backend) = {
            let r = reactor::new_reactor(ReactorKind::resolve(tuning.reactor))?;
            let waker = LoopWaker { inner: r.waker() };
            let backend = r.kind();
            (Mutex::new(Some(r)), waker, backend)
        };
        #[cfg(not(unix))]
        let waker = LoopWaker {};
        Ok(Self {
            listener,
            service,
            engine: None,
            stop: Arc::new(AtomicBool::new(false)),
            completions: Arc::new(Mutex::new(Vec::new())),
            waker: Arc::new(waker),
            tuning,
            control: Arc::new(ControlQueue::new()),
            throttled: AtomicU64::new(0),
            shed_inflight: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            loop_events: AtomicU64::new(0),
            #[cfg(unix)]
            backend,
            #[cfg(unix)]
            reactor,
        })
    }

    /// Which readiness backend this server's event loop runs on.
    pub fn backend(&self) -> ReactorKind {
        #[cfg(unix)]
        {
            self.backend
        }
        #[cfg(not(unix))]
        {
            ReactorKind::Poll
        }
    }

    /// This front's own counters (merged over the service's by `Stats`).
    fn own_counters(&self) -> Vec<(String, u64)> {
        let wakeups = self.wakeups.load(Ordering::Relaxed);
        let events = self.loop_events.load(Ordering::Relaxed);
        vec![
            ("server/backend".into(), self.backend().id()),
            (
                "server/throttled".into(),
                self.throttled.load(Ordering::Relaxed),
            ),
            (
                "server/shed_inflight".into(),
                self.shed_inflight.load(Ordering::Relaxed),
            ),
            ("server/wakeups".into(), wakeups),
            (
                "server/events_per_wakeup".into(),
                events.checked_div(wakeups).unwrap_or(0),
            ),
        ]
    }

    /// The bound address (the real port when bound with port 0).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// The engine requests are routed through, when the server was built with
    /// [`Server::bind`] (a router-backed server has no single engine).
    pub fn engine(&self) -> Option<&Arc<BatchEngine>> {
        self.engine.as_ref()
    }

    /// A handle that makes [`Server::run`] return.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            stop: Arc::clone(&self.stop),
            waker: Arc::clone(&self.waker),
            addr: self.listener.local_addr().ok(),
        }
    }

    /// Run the event loop until shut down. Blocks the calling thread; every
    /// connection is serviced by this one thread plus the service's workers and
    /// the control thread.
    pub fn run(&self) -> Result<()> {
        #[cfg(unix)]
        {
            self.run_event_loop()
        }
        #[cfg(not(unix))]
        {
            self.run_threaded()
        }
    }

    /// Dispatch one untagged request. `Ping` answers inline (the returned
    /// response, already tagged when `id` is set); everything else is
    /// asynchronous (returns `None`) and replies through the completion queue,
    /// carrying `v1_seq` so untagged replies regain request order — transforms
    /// via the service's workers, metadata and control-plane ops via the
    /// control thread.
    fn handle_request(
        &self,
        conn_id: usize,
        gen: u64,
        id: Option<u64>,
        v1_seq: Option<u64>,
        deadline: Option<Instant>,
        inner: Request,
    ) -> Option<Response> {
        let tag = move |resp: Response| match id {
            Some(id) => resp.tagged(id),
            None => resp,
        };
        match inner {
            Request::Ping => Some(tag(Response::Pong)),
            Request::ListModels => {
                let complete = self.completer(conn_id, gen, id, v1_seq);
                let service = Arc::clone(&self.service);
                self.control.push(Box::new(move || {
                    complete(match service.catalog() {
                        Ok(models) => Response::Models(models),
                        Err(e) => error_response(e),
                    })
                }));
                None
            }
            Request::Rescan => {
                let complete = self.completer(conn_id, gen, id, v1_seq);
                let service = Arc::clone(&self.service);
                self.control.push(Box::new(move || {
                    complete(match service.rescan() {
                        Ok(report) => Response::Rescanned(report),
                        Err(e) => error_response(e),
                    })
                }));
                None
            }
            Request::Stats => {
                let complete = self.completer(conn_id, gen, id, v1_seq);
                let service = Arc::clone(&self.service);
                // Snapshot this front's counters on the loop; the service's
                // counters (which may fan out to remote shards) off it.
                let own = self.own_counters();
                self.control.push(Box::new(move || {
                    let mut counters = service.stats();
                    // `server/backend` is an id, not a count: summing it across
                    // layered servers (a front over remote shards, each
                    // reporting its own loop) would scramble it. This front's
                    // value wins; query a shard directly for its backend.
                    counters.retain(|(name, _)| name != "server/backend");
                    merge_counters(&mut counters, own);
                    complete(Response::Stats(counters));
                }));
                None
            }
            Request::Refit => {
                let complete = self.completer(conn_id, gen, id, v1_seq);
                let service = Arc::clone(&self.service);
                self.control.push(Box::new(move || {
                    complete(match service.trigger_refit() {
                        Ok(counters) => Response::Stats(counters),
                        Err(e) => error_response(e),
                    })
                }));
                None
            }
            Request::AddShard { addr } => {
                let complete = self.completer(conn_id, gen, id, v1_seq);
                let service = Arc::clone(&self.service);
                self.control.push(Box::new(move || {
                    complete(match service.add_shard(&addr) {
                        Ok(shards) => Response::Cluster(shards),
                        Err(e) => error_response(e),
                    })
                }));
                None
            }
            Request::RemoveShard { shard } => {
                let complete = self.completer(conn_id, gen, id, v1_seq);
                let service = Arc::clone(&self.service);
                self.control.push(Box::new(move || {
                    // Blocks the control thread for the drain, not the loop.
                    complete(match service.remove_shard(shard) {
                        Ok(shards) => Response::Cluster(shards),
                        Err(e) => error_response(e),
                    })
                }));
                None
            }
            Request::ClusterInfo => {
                let complete = self.completer(conn_id, gen, id, v1_seq);
                let service = Arc::clone(&self.service);
                self.control.push(Box::new(move || {
                    complete(match service.cluster() {
                        Ok(shards) => Response::Cluster(shards),
                        Err(e) => error_response(e),
                    })
                }));
                None
            }
            Request::Transform { model, inputs } => {
                let complete = self.completer(conn_id, gen, id, v1_seq);
                self.service.submit_transform(
                    &model,
                    std::sync::Arc::new(inputs),
                    deadline,
                    Box::new(move |result| {
                        complete(match result {
                            Ok(z) => Response::Embedding(z),
                            Err(e) => error_response(e),
                        })
                    }),
                );
                None
            }
            Request::TransformView {
                model,
                view,
                input,
                precision,
            } => {
                let complete = self.completer(conn_id, gen, id, v1_seq);
                self.service.submit_transform_view(
                    &model,
                    view as usize,
                    std::sync::Arc::new(input),
                    precision,
                    deadline,
                    Box::new(move |result| {
                        complete(match result {
                            Ok(z) => Response::Embedding(z),
                            Err(e) => error_response(e),
                        })
                    }),
                );
                None
            }
            Request::Outputs { model, inputs } => {
                let complete = self.completer(conn_id, gen, id, v1_seq);
                self.service.submit_outputs(
                    &model,
                    std::sync::Arc::new(inputs),
                    deadline,
                    Box::new(move |result| {
                        complete(match result {
                            Ok(candidates) => Response::Outputs(candidates),
                            Err(e) => error_response(e),
                        })
                    }),
                );
                None
            }
            Request::Tagged { .. } => {
                // Decode rejects nested tags; unreachable but harmless.
                Some(tag(Response::Error("nested tagged request".into())))
            }
        }
    }

    /// A callback that encodes a reply (tagged when the request was), pushes it on
    /// the completion queue and wakes the event loop. Invoked once from a worker.
    fn completer(
        &self,
        conn_id: usize,
        gen: u64,
        id: Option<u64>,
        v1_seq: Option<u64>,
    ) -> impl Fn(Response) + Send {
        let completions = Arc::clone(&self.completions);
        let waker = Arc::clone(&self.waker);
        move |resp: Response| {
            let resp = match id {
                Some(id) => resp.tagged(id),
                None => resp,
            };
            completions.lock().expect("completion queue lock").push((
                conn_id,
                gen,
                v1_seq,
                resp.encode(),
            ));
            waker.wake();
        }
    }
}

/// Makes a running [`Server::run`] loop return.
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
    waker: Arc<LoopWaker>,
    addr: Option<SocketAddr>,
}

impl ShutdownHandle {
    /// Signal the event loop to exit.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        // Also poke the listener in case the loop is in a blocking accept
        // (non-unix threaded fallback).
        if let Some(addr) = self.addr {
            let _ = TcpStream::connect(addr);
        }
    }
}

/// One client connection's event-loop state.
#[cfg(unix)]
struct Conn {
    stream: TcpStream,
    /// Slot generation: completions for a previous tenant of this slot are dropped.
    gen: u64,
    /// The interest currently registered with the reactor (diffed each pass so
    /// unchanged connections cost no `modify` syscall).
    interest: Interest,
    /// Received, not yet parsed bytes.
    rbuf: Vec<u8>,
    /// Encoded frames not yet written to the socket.
    wbuf: Vec<u8>,
    /// Bytes of `wbuf` already written.
    wpos: usize,
    /// Peer hung up (or a framing violation): flush `wbuf`, then drop.
    closing: bool,
    /// Fatal socket error: drop immediately.
    dead: bool,
    /// Async replies still owed to this connection. A half-closed connection
    /// (client sent its requests, then `shutdown(SHUT_WR)`, and is reading) stays
    /// alive until every owed reply has been queued.
    inflight: usize,
    /// Next sequence number assigned to an untagged (v1) request.
    v1_assign: u64,
    /// Next untagged reply sequence allowed onto the wire.
    v1_send: u64,
    /// Untagged replies that completed out of order, held until their turn — v1
    /// clients are promised replies in request order.
    v1_held: std::collections::BTreeMap<u64, Vec<u8>>,
    /// Total payload bytes parked in `v1_held`, counted against the write
    /// backpressure high-water mark (a reply held behind a slow earlier request
    /// occupies memory just like one sitting in `wbuf`).
    v1_held_bytes: usize,
    /// Whether the last loop pass had this connection above the write-buffer
    /// high-water mark — lets the server count excursions, not loop passes.
    was_throttled: bool,
}

#[cfg(unix)]
impl Conn {
    fn queue_frame(&mut self, payload: &[u8]) {
        self.wbuf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.wbuf.extend_from_slice(payload);
    }

    /// Queue an untagged reply in request order: hold it until every untagged
    /// reply with a smaller sequence number has been queued.
    fn deliver_v1(&mut self, seq: u64, payload: Vec<u8>) {
        self.v1_held_bytes += payload.len();
        self.v1_held.insert(seq, payload);
        while let Some(ready) = self.v1_held.remove(&self.v1_send) {
            self.v1_held_bytes -= ready.len();
            self.queue_frame(&ready);
            self.v1_send += 1;
        }
    }

    /// Write as much of `wbuf` as the socket accepts right now.
    fn flush(&mut self) {
        use std::io::Write;
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
    }

    fn has_pending_writes(&self) -> bool {
        self.wpos < self.wbuf.len()
    }
}

#[cfg(unix)]
impl Server {
    fn run_event_loop(&self) -> Result<()> {
        let mut reactor = self
            .reactor
            .lock()
            .expect("reactor lock")
            .take()
            .ok_or_else(|| {
                ServeError::Io(std::io::Error::other(
                    "server event loop already ran; bind a fresh server",
                ))
            })?;

        // The control thread lives exactly as long as the loop: metadata and
        // control-plane ops queued by the loop run here, off the socket path.
        let control = Arc::clone(&self.control);
        let worker = std::thread::Builder::new()
            .name("tcca-serve-control".into())
            .spawn(move || control.run())
            .map_err(ServeError::Io)?;

        let result = self.event_loop(reactor.as_mut());
        self.control.stop();
        let _ = worker.join();
        result
    }

    fn event_loop(&self, reactor: &mut dyn Reactor) -> Result<()> {
        use std::os::unix::io::AsRawFd;

        self.listener.set_nonblocking(true)?;
        reactor.register(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        let mut listener_active = true;

        let mut conns: Vec<Option<Conn>> = Vec::new();
        let mut next_gen: u64 = 1;
        let mut events: Vec<Event> = Vec::new();

        loop {
            if self.stop.load(Ordering::SeqCst) {
                return Ok(());
            }

            // 1. Drain completions into per-connection write buffers (untagged
            //    replies via the v1 ordering gate).
            let ready: Vec<Completion> =
                std::mem::take(&mut *self.completions.lock().expect("completion queue lock"));
            for (conn_id, gen, v1_seq, payload) in ready {
                if let Some(Some(conn)) = conns.get_mut(conn_id) {
                    if conn.gen == gen && !conn.dead {
                        conn.inflight = conn.inflight.saturating_sub(1);
                        match v1_seq {
                            Some(seq) => conn.deliver_v1(seq, payload),
                            None => conn.queue_frame(&payload),
                        }
                    }
                }
            }

            // 2. Opportunistic flush (skips a wait round-trip for small replies).
            for conn in conns.iter_mut().flatten() {
                if conn.has_pending_writes() {
                    conn.flush();
                }
            }
            self.reap(reactor, &mut conns);

            // 3. Interest maintenance: diff each connection's desired interest
            //    against what the reactor has, and modify only on change — idle
            //    connections cost nothing here and nothing in the kernel (epoll).
            let mut live = 0usize;
            for (slot, conn) in conns.iter_mut().enumerate() {
                let Some(conn) = conn else { continue };
                live += 1;
                // Backpressure: stop reading while the peer owes us a drain.
                let throttled = conn.wbuf.len().saturating_sub(conn.wpos) + conn.v1_held_bytes
                    >= self.tuning.wbuf_high_water;
                if throttled && !conn.was_throttled {
                    self.throttled.fetch_add(1, Ordering::Relaxed);
                }
                conn.was_throttled = throttled;
                let desired = Interest {
                    read: !(conn.closing || throttled),
                    write: conn.has_pending_writes(),
                };
                if desired != conn.interest {
                    match reactor.modify(conn.stream.as_raw_fd(), slot as u64, desired) {
                        Ok(()) => conn.interest = desired,
                        Err(_) => conn.dead = true,
                    }
                }
            }
            let want_listener = live < MAX_CONNS;
            if want_listener != listener_active {
                let interest = if want_listener {
                    Interest::READ
                } else {
                    Interest::NONE
                };
                reactor.modify(self.listener.as_raw_fd(), TOKEN_LISTENER, interest)?;
                listener_active = want_listener;
            }

            // 4. Wait for readiness (bounded so the stop flag is honoured).
            reactor.wait(&mut events, 250)?;
            self.wakeups.fetch_add(1, Ordering::Relaxed);
            self.loop_events
                .fetch_add(events.len() as u64, Ordering::Relaxed);

            // 5. Dispatch. Tokens are stable across the pass: nothing is reaped
            //    between wait and dispatch, and connections accepted during the
            //    pass can have no events yet.
            for ev in &events {
                if ev.token == TOKEN_LISTENER {
                    self.accept_ready(reactor, &mut conns, &mut next_gen);
                    continue;
                }
                let slot = ev.token as usize;
                let Some(Some(conn)) = conns.get_mut(slot) else {
                    continue;
                };
                if ev.error {
                    conn.dead = true;
                    continue;
                }
                if ev.readable {
                    self.read_ready(slot, conn);
                }
                if (ev.writable || ev.hangup) && !conn.dead {
                    conn.flush();
                }
            }
            self.reap(reactor, &mut conns);
        }
    }

    /// Accept everything the listener has ready, registering each connection
    /// with the reactor under its slot token.
    fn accept_ready(
        &self,
        reactor: &mut dyn Reactor,
        conns: &mut Vec<Option<Conn>>,
        next_gen: &mut u64,
    ) {
        use std::os::unix::io::AsRawFd;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let conn = Conn {
                        stream,
                        gen: *next_gen,
                        interest: Interest::READ,
                        rbuf: Vec::new(),
                        wbuf: Vec::new(),
                        wpos: 0,
                        closing: false,
                        dead: false,
                        inflight: 0,
                        v1_assign: 0,
                        v1_send: 0,
                        v1_held: std::collections::BTreeMap::new(),
                        v1_held_bytes: 0,
                        was_throttled: false,
                    };
                    *next_gen += 1;
                    let slot = match conns.iter().position(Option::is_none) {
                        Some(slot) => slot,
                        None => {
                            conns.push(None);
                            conns.len() - 1
                        }
                    };
                    if reactor
                        .register(conn.stream.as_raw_fd(), slot as u64, Interest::READ)
                        .is_err()
                    {
                        // Registration failed (fd pressure): drop the socket.
                        continue;
                    }
                    conns[slot] = Some(conn);
                    if conns.iter().flatten().count() >= MAX_CONNS {
                        break; // interest maintenance mutes the listener next pass
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // A failed accept (peer vanished) is not fatal.
                    eprintln!("tcca_serve: accept failed: {e}");
                    break;
                }
            }
        }
    }

    /// Drop connections that are dead, or closing with nothing left to flush and
    /// no replies still owed (a half-closed peer is still waiting to read them).
    /// Deregisters each reaped socket before closing it.
    fn reap(&self, reactor: &mut dyn Reactor, conns: &mut [Option<Conn>]) {
        use std::os::unix::io::AsRawFd;
        for conn in conns.iter_mut() {
            let drop_it = match conn {
                Some(c) => c.dead || (c.closing && !c.has_pending_writes() && c.inflight == 0),
                None => false,
            };
            if drop_it {
                let c = conn.take().expect("reaped conn exists");
                let _ = reactor.deregister(c.stream.as_raw_fd());
            }
        }
    }

    /// Read up to [`READ_BUDGET`] bytes, then parse and dispatch complete frames.
    fn read_ready(&self, slot: usize, conn: &mut Conn) {
        let mut chunk = [0u8; READ_CHUNK];
        let mut eof = false;
        let mut taken = 0usize;
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    taken += n;
                    if taken >= READ_BUDGET {
                        break; // level-triggered readiness re-reports the leftovers
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }

        // Parse complete frames off the front of rbuf.
        let mut pos = 0usize;
        while conn.rbuf.len() - pos >= 4 && !conn.closing {
            let len =
                u32::from_le_bytes(conn.rbuf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            if len as u64 > u64::from(MAX_FRAME_LEN) {
                // Framing is lost: reply in-band (ordered behind any replies
                // still owed), then close after flushing.
                let seq = conn.v1_assign;
                conn.v1_assign += 1;
                let resp = Response::Error(format!(
                    "protocol violation: frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit"
                ));
                conn.deliver_v1(seq, resp.encode());
                conn.closing = true;
                break;
            }
            if conn.rbuf.len() - pos - 4 < len {
                break; // incomplete frame: wait for more bytes
            }
            let payload = conn.rbuf[pos + 4..pos + 4 + len].to_vec();
            pos += 4 + len;
            match Request::decode(&payload) {
                Ok(req) => {
                    let (id, deadline_ms, inner) = match req {
                        Request::Tagged {
                            id,
                            deadline_ms,
                            inner,
                        } => (Some(id), deadline_ms, *inner),
                        other => (None, None, other),
                    };
                    // The wire deadline is a relative budget: the clock starts
                    // at receipt (absolute instants don't survive the wire).
                    let deadline =
                        deadline_ms.map(|ms| Instant::now() + Duration::from_millis(u64::from(ms)));
                    // Untagged requests get a sequence number so their replies go
                    // out in request order even when an async transform is slower
                    // than a later cheap op. Tagged replies may overtake freely.
                    let v1_seq = if id.is_none() {
                        let seq = conn.v1_assign;
                        conn.v1_assign += 1;
                        Some(seq)
                    } else {
                        None
                    };
                    // Admission control: a connection already owed its full
                    // in-flight quota of async replies gets an in-band shed
                    // instead of another engine submission. Metadata and
                    // control ops are exempt — observability must stay
                    // responsive on a loaded connection.
                    let wants_transform = matches!(
                        inner,
                        Request::Transform { .. }
                            | Request::TransformView { .. }
                            | Request::Outputs { .. }
                    );
                    if wants_transform && conn.inflight >= self.tuning.max_inflight_per_conn {
                        self.shed_inflight.fetch_add(1, Ordering::Relaxed);
                        let resp = Response::Overloaded(format!(
                            "connection at its in-flight limit ({} pending)",
                            conn.inflight
                        ));
                        let resp = match id {
                            Some(id) => resp.tagged(id),
                            None => resp,
                        };
                        match v1_seq {
                            Some(seq) => conn.deliver_v1(seq, resp.encode()),
                            None => conn.queue_frame(&resp.encode()),
                        }
                        continue;
                    }
                    match self.handle_request(slot, conn.gen, id, v1_seq, deadline, inner) {
                        Some(resp) => match v1_seq {
                            Some(seq) => conn.deliver_v1(seq, resp.encode()),
                            None => conn.queue_frame(&resp.encode()),
                        },
                        None => conn.inflight += 1,
                    }
                }
                Err(e) => {
                    // The frame boundary held; the *content* was bad. Reply
                    // in-band (in order — the frame was untagged as far as the
                    // client's reply matching cares) and keep serving.
                    let seq = conn.v1_assign;
                    conn.v1_assign += 1;
                    conn.deliver_v1(seq, Response::Error(e.to_string()).encode());
                }
            }
        }
        conn.rbuf.drain(..pos);

        if eof {
            if !conn.rbuf.is_empty() && !conn.closing {
                // Peer hung up mid-frame; tell it (it may still read) and close.
                // Through the ordering gate, so earlier replies still in flight
                // reach the wire first.
                let seq = conn.v1_assign;
                conn.v1_assign += 1;
                conn.deliver_v1(
                    seq,
                    Response::Error("protocol violation: connection closed mid frame".into())
                        .encode(),
                );
            }
            conn.closing = true;
        }
    }
}

/// Fallback for platforms without `poll`: the classic thread-per-connection loop.
#[cfg(not(unix))]
impl Server {
    fn run_threaded(&self) -> Result<()> {
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let service = Arc::clone(&self.service);
            std::thread::spawn(move || {
                let _ = serve_blocking(stream, &service);
            });
        }
        Ok(())
    }
}

/// Blocking per-connection loop used by the non-unix fallback.
#[cfg(not(unix))]
fn serve_blocking(stream: TcpStream, service: &Arc<dyn TransformService>) -> Result<()> {
    use crate::wire::{read_frame, write_frame};
    use crate::ServeError;
    stream.set_nodelay(true)?;
    let mut reader = std::io::BufReader::new(stream.try_clone()?);
    let mut writer = std::io::BufWriter::new(stream);
    while let Some(payload) = read_frame(&mut reader)? {
        let response = match Request::decode(&payload) {
            Ok(req) => {
                let (id, deadline_ms, inner) = match req {
                    Request::Tagged {
                        id,
                        deadline_ms,
                        inner,
                    } => (Some(id), deadline_ms, *inner),
                    other => (None, None, other),
                };
                let deadline =
                    deadline_ms.map(|ms| Instant::now() + Duration::from_millis(u64::from(ms)));
                let resp = match inner {
                    Request::Ping => Response::Pong,
                    Request::ListModels => match service.catalog() {
                        Ok(models) => Response::Models(models),
                        Err(e) => error_response(e),
                    },
                    Request::Rescan => match service.rescan() {
                        Ok(report) => Response::Rescanned(report),
                        Err(e) => error_response(e),
                    },
                    Request::Stats => Response::Stats(service.stats()),
                    Request::Refit => match service.trigger_refit() {
                        Ok(counters) => Response::Stats(counters),
                        Err(e) => error_response(e),
                    },
                    Request::AddShard { addr } => match service.add_shard(&addr) {
                        Ok(shards) => Response::Cluster(shards),
                        Err(e) => error_response(e),
                    },
                    Request::RemoveShard { shard } => match service.remove_shard(shard) {
                        Ok(shards) => Response::Cluster(shards),
                        Err(e) => error_response(e),
                    },
                    Request::ClusterInfo => match service.cluster() {
                        Ok(shards) => Response::Cluster(shards),
                        Err(e) => error_response(e),
                    },
                    Request::Transform { model, inputs } => {
                        let (tx, rx) = std::sync::mpsc::sync_channel(1);
                        service.submit_transform(
                            &model,
                            std::sync::Arc::new(inputs),
                            deadline,
                            Box::new(move |r| drop(tx.send(r))),
                        );
                        match rx.recv() {
                            Ok(Ok(z)) => Response::Embedding(z),
                            Ok(Err(e)) => error_response(e),
                            Err(_) => Response::Error(ServeError::EngineStopped.to_string()),
                        }
                    }
                    Request::TransformView {
                        model,
                        view,
                        input,
                        precision,
                    } => {
                        let (tx, rx) = std::sync::mpsc::sync_channel(1);
                        service.submit_transform_view(
                            &model,
                            view as usize,
                            std::sync::Arc::new(input),
                            precision,
                            deadline,
                            Box::new(move |r| drop(tx.send(r))),
                        );
                        match rx.recv() {
                            Ok(Ok(z)) => Response::Embedding(z),
                            Ok(Err(e)) => error_response(e),
                            Err(_) => Response::Error(ServeError::EngineStopped.to_string()),
                        }
                    }
                    Request::Outputs { model, inputs } => {
                        let (tx, rx) = std::sync::mpsc::sync_channel(1);
                        service.submit_outputs(
                            &model,
                            std::sync::Arc::new(inputs),
                            deadline,
                            Box::new(move |r| drop(tx.send(r))),
                        );
                        match rx.recv() {
                            Ok(Ok(c)) => Response::Outputs(c),
                            Ok(Err(e)) => error_response(e),
                            Err(_) => Response::Error(ServeError::EngineStopped.to_string()),
                        }
                    }
                    Request::Tagged { .. } => Response::Error("nested tagged request".into()),
                };
                match id {
                    Some(id) => resp.tagged(id),
                    None => resp,
                }
            }
            Err(e) => Response::Error(e.to_string()),
        };
        write_frame(&mut writer, &response.encode())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Client;
    use datasets::{secstr_dataset, SecStrConfig};
    use linalg::Matrix;
    use mvcore::{EstimatorRegistry, FitSpec, InputKind};
    use std::time::Duration;

    fn fixture_views() -> Vec<Matrix> {
        let data = secstr_dataset(&SecStrConfig {
            n_instances: 24,
            seed: 31,
            difficulty: 0.8,
        });
        data.views()
            .iter()
            .map(|v| v.select_rows(&(0..6.min(v.rows())).collect::<Vec<_>>()))
            .collect()
    }

    fn bound_server(store: Arc<ModelStore>) -> (Server, SocketAddr) {
        bound_server_tuned(store, ServerTuning::default())
    }

    fn bound_server_tuned(store: Arc<ModelStore>, tuning: ServerTuning) -> (Server, SocketAddr) {
        let engine = Arc::new(BatchEngine::start(
            store,
            BatchConfig {
                max_batch: 16,
                max_wait: Duration::from_millis(1),
                ..BatchConfig::default()
            },
        ));
        let server =
            Server::bind_service_tuned("127.0.0.1:0", engine as Arc<dyn TransformService>, tuning)
                .unwrap();
        let addr = server.local_addr().unwrap();
        (server, addr)
    }

    #[test]
    fn tcp_roundtrip_matches_in_process_transform() {
        let views = fixture_views();
        let registry = EstimatorRegistry::with_builtin();
        let model = registry
            .fit("TCCA", &views, &FitSpec::with_rank(2).seed(6))
            .unwrap();
        let expected = model.transform(&views).unwrap();

        let store = Arc::new(ModelStore::new(EstimatorRegistry::with_builtin()));
        store.insert("tcca", model);
        let (server, addr) = bound_server(store);
        let shutdown = server.shutdown_handle();
        let server_thread = std::thread::spawn(move || server.run().unwrap());

        let mut client = Client::connect(addr).unwrap();
        client.ping().unwrap();

        let catalog = client.list_models().unwrap();
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog[0].name, "tcca");
        assert_eq!(catalog[0].method, "TCCA");
        assert_eq!(catalog[0].input_kind, InputKind::Views);

        let served = client.transform("tcca", &views).unwrap();
        assert_eq!(served, expected, "wire transport must be bit-exact");

        // Request errors arrive in-band and the connection survives them.
        let err = client.transform("missing", &views).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
        let err = client
            .transform("tcca", &views[..1])
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("view"), "{err}");
        client.ping().unwrap();

        shutdown.shutdown();
        server_thread.join().unwrap();
    }

    #[test]
    fn pipelined_tagged_requests_complete_out_of_order() {
        let views = fixture_views();
        let registry = EstimatorRegistry::with_builtin();
        let model = registry
            .fit("PCA", &views, &FitSpec::with_rank(2).seed(5))
            .unwrap();
        let expected = model.transform(&views).unwrap();

        let store = Arc::new(ModelStore::new(EstimatorRegistry::with_builtin()));
        store.insert("pca", model);
        let (server, addr) = bound_server(store);
        let shutdown = server.shutdown_handle();
        let server_thread = std::thread::spawn(move || server.run().unwrap());

        // Fire three tagged requests back to back without reading, then collect
        // replies by id: the transform is free to complete after the pings.
        let mut client = Client::connect(addr).unwrap();
        let id_a = client
            .send(&Request::Transform {
                model: "pca".into(),
                inputs: views.clone(),
            })
            .unwrap();
        let id_b = client.send(&Request::Ping).unwrap();
        let id_c = client.send(&Request::ListModels).unwrap();
        let mut replies = std::collections::BTreeMap::new();
        for _ in 0..3 {
            let (id, resp) = client.recv().unwrap();
            replies.insert(id, resp);
        }
        assert_eq!(replies.len(), 3);
        match replies.remove(&id_a) {
            Some(Response::Embedding(z)) => assert_eq!(z, expected),
            other => panic!("unexpected transform reply: {other:?}"),
        }
        assert_eq!(replies.remove(&id_b), Some(Response::Pong));
        match replies.remove(&id_c) {
            Some(Response::Models(models)) => assert_eq!(models.len(), 1),
            other => panic!("unexpected catalog reply: {other:?}"),
        }

        shutdown.shutdown();
        server_thread.join().unwrap();
    }

    #[test]
    fn many_idle_connections_do_not_block_service() {
        let views = fixture_views();
        let registry = EstimatorRegistry::with_builtin();
        let model = registry
            .fit("PCA", &views, &FitSpec::with_rank(2).seed(9))
            .unwrap();
        let store = Arc::new(ModelStore::new(EstimatorRegistry::with_builtin()));
        store.insert("pca", model);
        let (server, addr) = bound_server(store);
        let shutdown = server.shutdown_handle();
        let server_thread = std::thread::spawn(move || server.run().unwrap());

        // Park a pile of idle connections, then serve a request through a fresh
        // one — the event loop must not be pinned by the idlers.
        let idle: Vec<Client> = (0..64).map(|_| Client::connect(addr).unwrap()).collect();
        let mut client = Client::connect(addr).unwrap();
        assert!(client.transform("pca", &views).is_ok());
        drop(idle);
        client.ping().unwrap();

        shutdown.shutdown();
        server_thread.join().unwrap();
    }

    /// Serve one transform through a server pinned to the given backend and
    /// return the reply bytes plus the stats counters.
    #[cfg(unix)]
    fn transform_via_backend(kind: ReactorKind, views: &[Matrix]) -> (Matrix, Vec<(String, u64)>) {
        let registry = EstimatorRegistry::with_builtin();
        let model = registry
            .fit("TCCA", views, &FitSpec::with_rank(2).seed(6))
            .unwrap();
        let store = Arc::new(ModelStore::new(EstimatorRegistry::with_builtin()));
        store.insert("tcca", model);
        let (server, addr) = bound_server_tuned(
            store,
            ServerTuning {
                reactor: Some(kind),
                ..ServerTuning::default()
            },
        );
        assert_eq!(server.backend(), ReactorKind::resolve(Some(kind)));
        let shutdown = server.shutdown_handle();
        let server_thread = std::thread::spawn(move || server.run().unwrap());

        let mut client = Client::connect(addr).unwrap();
        let z = client.transform("tcca", views).unwrap();
        let stats = client.stats().unwrap();
        shutdown.shutdown();
        server_thread.join().unwrap();
        (z, stats)
    }

    #[cfg(unix)]
    #[test]
    fn replies_bit_identical_across_reactor_backends() {
        let views = fixture_views();
        let registry = EstimatorRegistry::with_builtin();
        let model = registry
            .fit("TCCA", &views, &FitSpec::with_rank(2).seed(6))
            .unwrap();
        let expected = model.transform(&views).unwrap();

        let (via_poll, poll_stats) = transform_via_backend(ReactorKind::Poll, &views);
        let (via_epoll, epoll_stats) = transform_via_backend(ReactorKind::Epoll, &views);
        assert_eq!(via_poll, expected, "poll backend must be bit-exact");
        assert_eq!(
            via_poll, via_epoll,
            "replies must be bit-identical across reactor backends"
        );

        // Reactor observability: backend id, wakeups and events/wakeup surface
        // through Stats under both backends.
        let get = |stats: &[(String, u64)], name: &str| {
            stats
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing counter {name}"))
        };
        assert_eq!(get(&poll_stats, "server/backend"), ReactorKind::Poll.id());
        assert!(get(&poll_stats, "server/wakeups") > 0);
        let _ = get(&poll_stats, "server/events_per_wakeup");
        let resolved = ReactorKind::resolve(Some(ReactorKind::Epoll));
        assert_eq!(get(&epoll_stats, "server/backend"), resolved.id());
        assert!(get(&epoll_stats, "server/wakeups") > 0);
    }

    #[test]
    fn control_ops_error_in_band_on_engine_backed_server() {
        let store = Arc::new(ModelStore::new(EstimatorRegistry::with_builtin()));
        let (server, addr) = bound_server(store);
        let shutdown = server.shutdown_handle();
        let server_thread = std::thread::spawn(move || server.run().unwrap());

        // A plain engine has no shard table: control ops answer with an
        // in-band error and the connection survives.
        let mut client = Client::connect(addr).unwrap();
        let err = client.cluster_info().unwrap_err();
        assert!(err.to_string().contains("control plane"), "{err}");
        let err = client.add_shard("127.0.0.1:1").unwrap_err();
        assert!(err.to_string().contains("control plane"), "{err}");
        let err = client.remove_shard(0).unwrap_err();
        assert!(err.to_string().contains("control plane"), "{err}");
        client.ping().unwrap();

        shutdown.shutdown();
        server_thread.join().unwrap();
    }
}
