//! The TCP front of the serving stack: a poll(2)-based event loop.
//!
//! One thread owns every socket. The loop multiplexes the listener, a self-pipe
//! waker and all client connections through nonblocking `poll` readiness — thousands
//! of idle connections cost one `pollfd` each, not one parked thread each (the
//! thread-per-connection model this replaced). Transform work never runs on the
//! loop: requests are submitted to a [`TransformService`] (a [`BatchEngine`] or a
//! [`crate::Router`]) with a completion callback that encodes the reply, pushes it
//! onto a completion queue and pokes the waker; the loop drains completions into
//! per-connection write buffers. Cheap metadata ops (`Ping`, `ListModels`,
//! `Rescan`) are answered inline — which is also what lets tagged (protocol v2)
//! replies overtake in-flight transforms out of request order. Untagged (v1)
//! replies pass through a per-connection sequencing gate instead, so a v1 client
//! pipelining plain frames still sees replies in request order, exactly like the
//! thread-per-connection server it replaced. A connection that half-closes after
//! sending requests stays alive until every owed reply has been written.
//!
//! Malformed frames get an in-band [`Response::Error`] instead of a dropped
//! connection wherever the frame boundary is still trustworthy (bad opcode, bad
//! payload); only framing-level violations (oversized declared length, EOF mid
//! frame) close the connection — after an error reply is flushed where possible.

use crate::service::TransformService;
use crate::wire::{Request, Response};
use crate::{BatchConfig, BatchEngine, ModelStore, Result, ServeError};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[cfg(unix)]
use crate::wire::MAX_FRAME_LEN;
#[cfg(unix)]
use std::io::{Read, Write};
#[cfg(unix)]
use std::os::unix::net::UnixStream;

/// Connections accepted at once; beyond this the listener stops accepting until a
/// slot frees up (pending connections wait in the OS backlog).
const MAX_CONNS: usize = 4096;

/// Read-buffer chunk size for one `read` call.
const READ_CHUNK: usize = 64 * 1024;

/// Bytes read per readiness event per socket before yielding back to the loop, so
/// one firehose connection cannot starve its neighbours (poll is level-triggered:
/// leftover bytes re-report readiness on the next pass).
const READ_BUDGET: usize = 4 * READ_CHUNK;

/// Write-buffer high-water mark: while a connection has this many unflushed reply
/// bytes, the loop stops reading (and so parsing) new requests from it. A client
/// that pipelines requests but never reads its replies gets backpressure instead
/// of growing `wbuf` without bound — the same effect the old thread-per-connection
/// server got from blocking on `write_frame`.
const WBUF_HIGH_WATER: usize = 8 * 1024 * 1024;

/// Default cap on async replies owed to a single connection before further
/// transform submissions are shed with an in-band [`Response::Overloaded`].
const MAX_INFLIGHT_PER_CONN: usize = 1024;

/// Tunable per-connection limits for a bound server. The defaults match the
/// historical constants; tests and the soak harness shrink them to provoke
/// backpressure and shedding deterministically.
#[derive(Debug, Clone, Copy)]
pub struct ServerTuning {
    /// Write-buffer high-water mark: while a connection holds this many
    /// unflushed (or v1-order-held) reply bytes, the loop stops reading new
    /// requests from it.
    pub wbuf_high_water: usize,
    /// Maximum async replies owed to one connection. A request that would
    /// exceed it is answered with an in-band [`Response::Overloaded`] instead
    /// of being submitted — bounding per-connection queue memory no matter how
    /// aggressively a client pipelines.
    pub max_inflight_per_conn: usize,
}

impl Default for ServerTuning {
    fn default() -> Self {
        Self {
            wbuf_high_water: WBUF_HIGH_WATER,
            max_inflight_per_conn: MAX_INFLIGHT_PER_CONN,
        }
    }
}

/// Map a service error to its wire response: overload and deadline verdicts
/// travel as their own opcodes so clients can apply retry policy without
/// string-matching; everything else stays a plain error.
fn error_response(e: ServeError) -> Response {
    match e {
        ServeError::Overloaded(msg) => Response::Overloaded(msg),
        ServeError::DeadlineExceeded(msg) => Response::DeadlineExceeded(msg),
        other => Response::Error(other.to_string()),
    }
}

/// Raw poll(2) FFI — the libc symbols are always linked; declaring them here keeps
/// the workspace free of external crates (the build environment has no registry).
#[cfg(unix)]
mod sys {
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// `poll` retrying on EINTR. `timeout` in milliseconds.
    pub fn poll_retry(fds: &mut [PollFd], timeout: i32) -> std::io::Result<usize> {
        loop {
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// A completed transform reply waiting to be copied into a connection's write
/// buffer: `(connection slot, slot generation, v1 ordering sequence for untagged
/// requests, encoded response payload)`.
type Completion = (usize, u64, Option<u64>, Vec<u8>);

/// Wakes the poll loop from worker threads (completion callbacks, shutdown).
struct Waker {
    #[cfg(unix)]
    tx: UnixStream,
}

impl Waker {
    fn wake(&self) {
        #[cfg(unix)]
        {
            // Nonblocking: if the pipe is already full the loop is awake anyway.
            let _ = (&self.tx).write(&[1u8]);
        }
    }
}

/// A bound serving endpoint running a poll-based event loop.
pub struct Server {
    listener: TcpListener,
    service: Arc<dyn TransformService>,
    engine: Option<Arc<BatchEngine>>,
    stop: Arc<AtomicBool>,
    completions: Arc<Mutex<Vec<Completion>>>,
    waker: Arc<Waker>,
    tuning: ServerTuning,
    /// Connections that crossed the write-buffer high-water mark (counted once
    /// per excursion, not per poll pass).
    throttled: AtomicU64,
    /// Requests shed at the per-connection in-flight cap.
    shed_inflight: AtomicU64,
    #[cfg(unix)]
    wake_rx: UnixStream,
}

impl Server {
    /// Bind a listener and start a batch engine over the store. Use port 0 to let
    /// the OS pick a free port (see [`Server::local_addr`]).
    pub fn bind(
        addr: impl ToSocketAddrs,
        store: Arc<ModelStore>,
        config: BatchConfig,
    ) -> Result<Self> {
        let engine = Arc::new(BatchEngine::start(store, config));
        let mut server =
            Self::bind_service(addr, Arc::clone(&engine) as Arc<dyn TransformService>)?;
        server.engine = Some(engine);
        Ok(server)
    }

    /// Bind a listener over any [`TransformService`] — the entry point the sharded
    /// router uses to put the same wire protocol in front of many shards.
    pub fn bind_service(
        addr: impl ToSocketAddrs,
        service: Arc<dyn TransformService>,
    ) -> Result<Self> {
        Self::bind_service_tuned(addr, service, ServerTuning::default())
    }

    /// [`Server::bind_service`] with explicit per-connection limits.
    pub fn bind_service_tuned(
        addr: impl ToSocketAddrs,
        service: Arc<dyn TransformService>,
        tuning: ServerTuning,
    ) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        #[cfg(unix)]
        let (wake_rx, wake_tx) = {
            let (rx, tx) = UnixStream::pair()?;
            rx.set_nonblocking(true)?;
            tx.set_nonblocking(true)?;
            (rx, tx)
        };
        Ok(Self {
            listener,
            service,
            engine: None,
            stop: Arc::new(AtomicBool::new(false)),
            completions: Arc::new(Mutex::new(Vec::new())),
            waker: Arc::new(Waker {
                #[cfg(unix)]
                tx: wake_tx,
            }),
            tuning,
            throttled: AtomicU64::new(0),
            shed_inflight: AtomicU64::new(0),
            #[cfg(unix)]
            wake_rx,
        })
    }

    /// Service counters plus this front's own overload counters.
    fn stats_snapshot(&self) -> Vec<(String, u64)> {
        let mut counters = self.service.stats();
        // Merge rather than append: a front server over a router sees the same
        // counter names again from remote shards' servers.
        for (name, value) in [
            ("server/throttled", self.throttled.load(Ordering::Relaxed)),
            (
                "server/shed_inflight",
                self.shed_inflight.load(Ordering::Relaxed),
            ),
        ] {
            match counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, v)) => *v += value,
                None => counters.push((name.into(), value)),
            }
        }
        counters
    }

    /// The bound address (the real port when bound with port 0).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// The engine requests are routed through, when the server was built with
    /// [`Server::bind`] (a router-backed server has no single engine).
    pub fn engine(&self) -> Option<&Arc<BatchEngine>> {
        self.engine.as_ref()
    }

    /// A handle that makes [`Server::run`] return.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            stop: Arc::clone(&self.stop),
            waker: Arc::clone(&self.waker),
            addr: self.listener.local_addr().ok(),
        }
    }

    /// Run the event loop until shut down. Blocks the calling thread; every
    /// connection is serviced by this one thread plus the service's workers.
    pub fn run(&self) -> Result<()> {
        #[cfg(unix)]
        {
            self.run_event_loop()
        }
        #[cfg(not(unix))]
        {
            self.run_threaded()
        }
    }

    /// Dispatch one untagged request. Metadata ops answer inline (the returned
    /// response, already tagged when `id` is set); transform ops are submitted
    /// asynchronously (returns `None`) and reply through the completion queue,
    /// carrying `v1_seq` so untagged replies regain request order.
    fn handle_request(
        &self,
        conn_id: usize,
        gen: u64,
        id: Option<u64>,
        v1_seq: Option<u64>,
        deadline: Option<Instant>,
        inner: Request,
    ) -> Option<Response> {
        let tag = move |resp: Response| match id {
            Some(id) => resp.tagged(id),
            None => resp,
        };
        match inner {
            Request::Ping => Some(tag(Response::Pong)),
            Request::ListModels => Some(tag(match self.service.catalog() {
                Ok(models) => Response::Models(models),
                Err(e) => error_response(e),
            })),
            Request::Rescan => Some(tag(match self.service.rescan() {
                Ok(report) => Response::Rescanned(report),
                Err(e) => error_response(e),
            })),
            Request::Stats => Some(tag(Response::Stats(self.stats_snapshot()))),
            Request::Refit => Some(tag(match self.service.trigger_refit() {
                Ok(counters) => Response::Stats(counters),
                Err(e) => error_response(e),
            })),
            Request::Transform { model, inputs } => {
                let complete = self.completer(conn_id, gen, id, v1_seq);
                self.service.submit_transform(
                    &model,
                    std::sync::Arc::new(inputs),
                    deadline,
                    Box::new(move |result| {
                        complete(match result {
                            Ok(z) => Response::Embedding(z),
                            Err(e) => error_response(e),
                        })
                    }),
                );
                None
            }
            Request::TransformView { model, view, input } => {
                let complete = self.completer(conn_id, gen, id, v1_seq);
                self.service.submit_transform_view(
                    &model,
                    view as usize,
                    std::sync::Arc::new(input),
                    deadline,
                    Box::new(move |result| {
                        complete(match result {
                            Ok(z) => Response::Embedding(z),
                            Err(e) => error_response(e),
                        })
                    }),
                );
                None
            }
            Request::Outputs { model, inputs } => {
                let complete = self.completer(conn_id, gen, id, v1_seq);
                self.service.submit_outputs(
                    &model,
                    std::sync::Arc::new(inputs),
                    deadline,
                    Box::new(move |result| {
                        complete(match result {
                            Ok(candidates) => Response::Outputs(candidates),
                            Err(e) => error_response(e),
                        })
                    }),
                );
                None
            }
            Request::Tagged { .. } => {
                // Decode rejects nested tags; unreachable but harmless.
                Some(tag(Response::Error("nested tagged request".into())))
            }
        }
    }

    /// A callback that encodes a reply (tagged when the request was), pushes it on
    /// the completion queue and wakes the poll loop. Invoked once from a worker.
    fn completer(
        &self,
        conn_id: usize,
        gen: u64,
        id: Option<u64>,
        v1_seq: Option<u64>,
    ) -> impl Fn(Response) + Send {
        let completions = Arc::clone(&self.completions);
        let waker = Arc::clone(&self.waker);
        move |resp: Response| {
            let resp = match id {
                Some(id) => resp.tagged(id),
                None => resp,
            };
            completions.lock().expect("completion queue lock").push((
                conn_id,
                gen,
                v1_seq,
                resp.encode(),
            ));
            waker.wake();
        }
    }
}

/// Makes a running [`Server::run`] loop return.
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
    waker: Arc<Waker>,
    addr: Option<SocketAddr>,
}

impl ShutdownHandle {
    /// Signal the event loop to exit.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        // Also poke the listener in case the loop is in a blocking accept
        // (non-unix threaded fallback).
        if let Some(addr) = self.addr {
            let _ = TcpStream::connect(addr);
        }
    }
}

/// One client connection's event-loop state.
#[cfg(unix)]
struct Conn {
    stream: TcpStream,
    /// Slot generation: completions for a previous tenant of this slot are dropped.
    gen: u64,
    /// Received, not yet parsed bytes.
    rbuf: Vec<u8>,
    /// Encoded frames not yet written to the socket.
    wbuf: Vec<u8>,
    /// Bytes of `wbuf` already written.
    wpos: usize,
    /// Peer hung up (or a framing violation): flush `wbuf`, then drop.
    closing: bool,
    /// Fatal socket error: drop immediately.
    dead: bool,
    /// Async replies still owed to this connection. A half-closed connection
    /// (client sent its requests, then `shutdown(SHUT_WR)`, and is reading) stays
    /// alive until every owed reply has been queued.
    inflight: usize,
    /// Next sequence number assigned to an untagged (v1) request.
    v1_assign: u64,
    /// Next untagged reply sequence allowed onto the wire.
    v1_send: u64,
    /// Untagged replies that completed out of order, held until their turn — v1
    /// clients are promised replies in request order.
    v1_held: std::collections::BTreeMap<u64, Vec<u8>>,
    /// Total payload bytes parked in `v1_held`, counted against the write
    /// backpressure high-water mark (a reply held behind a slow earlier request
    /// occupies memory just like one sitting in `wbuf`).
    v1_held_bytes: usize,
    /// Whether the last poll pass had this connection above the write-buffer
    /// high-water mark — lets the server count excursions, not poll passes.
    was_throttled: bool,
}

#[cfg(unix)]
impl Conn {
    fn queue_frame(&mut self, payload: &[u8]) {
        self.wbuf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.wbuf.extend_from_slice(payload);
    }

    /// Queue an untagged reply in request order: hold it until every untagged
    /// reply with a smaller sequence number has been queued.
    fn deliver_v1(&mut self, seq: u64, payload: Vec<u8>) {
        self.v1_held_bytes += payload.len();
        self.v1_held.insert(seq, payload);
        while let Some(ready) = self.v1_held.remove(&self.v1_send) {
            self.v1_held_bytes -= ready.len();
            self.queue_frame(&ready);
            self.v1_send += 1;
        }
    }

    /// Write as much of `wbuf` as the socket accepts right now.
    fn flush(&mut self) {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
    }

    fn has_pending_writes(&self) -> bool {
        self.wpos < self.wbuf.len()
    }
}

#[cfg(unix)]
impl Server {
    fn run_event_loop(&self) -> Result<()> {
        use std::os::unix::io::AsRawFd;
        use sys::*;

        self.listener.set_nonblocking(true)?;
        let mut conns: Vec<Option<Conn>> = Vec::new();
        let mut next_gen: u64 = 1;

        loop {
            if self.stop.load(Ordering::SeqCst) {
                return Ok(());
            }

            // 1. Drain completions into per-connection write buffers (untagged
            //    replies via the v1 ordering gate).
            let ready: Vec<Completion> =
                std::mem::take(&mut *self.completions.lock().expect("completion queue lock"));
            for (conn_id, gen, v1_seq, payload) in ready {
                if let Some(Some(conn)) = conns.get_mut(conn_id) {
                    if conn.gen == gen && !conn.dead {
                        conn.inflight = conn.inflight.saturating_sub(1);
                        match v1_seq {
                            Some(seq) => conn.deliver_v1(seq, payload),
                            None => conn.queue_frame(&payload),
                        }
                    }
                }
            }

            // 2. Opportunistic flush (skips a poll round-trip for small replies).
            for conn in conns.iter_mut().flatten() {
                if conn.has_pending_writes() {
                    conn.flush();
                }
            }
            self.reap(&mut conns);

            // 3. Build the pollfd set: waker, listener, then live connections.
            let live = conns.iter().flatten().count();
            let mut fds = Vec::with_capacity(live + 2);
            fds.push(PollFd {
                fd: self.wake_rx.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            fds.push(PollFd {
                fd: self.listener.as_raw_fd(),
                events: if live < MAX_CONNS { POLLIN } else { 0 },
                revents: 0,
            });
            let mut slots = Vec::with_capacity(live);
            for (slot, conn) in conns.iter_mut().enumerate() {
                if let Some(conn) = conn {
                    // Backpressure: stop reading while the peer owes us a drain.
                    let throttled = conn.wbuf.len().saturating_sub(conn.wpos) + conn.v1_held_bytes
                        >= self.tuning.wbuf_high_water;
                    if throttled && !conn.was_throttled {
                        self.throttled.fetch_add(1, Ordering::Relaxed);
                    }
                    conn.was_throttled = throttled;
                    let mut events = if conn.closing || throttled { 0 } else { POLLIN };
                    if conn.has_pending_writes() {
                        events |= POLLOUT;
                    }
                    fds.push(PollFd {
                        fd: conn.stream.as_raw_fd(),
                        events,
                        revents: 0,
                    });
                    slots.push(slot);
                }
            }

            // 4. Wait for readiness (bounded so the stop flag is honoured).
            poll_retry(&mut fds, 250)?;

            // 5. Waker: drain the self-pipe; completions are picked up next pass.
            if fds[0].revents & POLLIN != 0 {
                let mut sink = [0u8; 64];
                while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
            }

            // 6. Listener: accept everything that is ready.
            if fds[1].revents & POLLIN != 0 {
                loop {
                    match self.listener.accept() {
                        Ok((stream, _peer)) => {
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            let conn = Conn {
                                stream,
                                gen: next_gen,
                                rbuf: Vec::new(),
                                wbuf: Vec::new(),
                                wpos: 0,
                                closing: false,
                                dead: false,
                                inflight: 0,
                                v1_assign: 0,
                                v1_send: 0,
                                v1_held: std::collections::BTreeMap::new(),
                                v1_held_bytes: 0,
                                was_throttled: false,
                            };
                            next_gen += 1;
                            match conns.iter().position(Option::is_none) {
                                Some(slot) => conns[slot] = Some(conn),
                                None => conns.push(Some(conn)),
                            }
                            if conns.iter().flatten().count() >= MAX_CONNS {
                                break;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) => {
                            // A failed accept (peer vanished) is not fatal.
                            eprintln!("tcca_serve: accept failed: {e}");
                            break;
                        }
                    }
                }
            }

            // 7. Connection readiness.
            for (fd_idx, &slot) in slots.iter().enumerate() {
                let revents = fds[fd_idx + 2].revents;
                if revents == 0 {
                    continue;
                }
                let Some(conn) = conns[slot].as_mut() else {
                    continue;
                };
                if revents & (POLLERR | POLLNVAL) != 0 {
                    conn.dead = true;
                    continue;
                }
                if revents & POLLIN != 0 {
                    self.read_ready(slot, conn);
                }
                if revents & (POLLOUT | POLLHUP) != 0 && !conn.dead {
                    conn.flush();
                }
            }
            self.reap(&mut conns);
        }
    }

    /// Drop connections that are dead, or closing with nothing left to flush and
    /// no replies still owed (a half-closed peer is still waiting to read them).
    fn reap(&self, conns: &mut [Option<Conn>]) {
        for conn in conns.iter_mut() {
            let drop_it = match conn {
                Some(c) => c.dead || (c.closing && !c.has_pending_writes() && c.inflight == 0),
                None => false,
            };
            if drop_it {
                *conn = None;
            }
        }
    }

    /// Read up to [`READ_BUDGET`] bytes, then parse and dispatch complete frames.
    fn read_ready(&self, slot: usize, conn: &mut Conn) {
        let mut chunk = [0u8; READ_CHUNK];
        let mut eof = false;
        let mut taken = 0usize;
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    taken += n;
                    if taken >= READ_BUDGET {
                        break; // level-triggered poll re-reports the leftovers
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }

        // Parse complete frames off the front of rbuf.
        let mut pos = 0usize;
        while conn.rbuf.len() - pos >= 4 && !conn.closing {
            let len =
                u32::from_le_bytes(conn.rbuf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            if len as u64 > u64::from(MAX_FRAME_LEN) {
                // Framing is lost: reply in-band (ordered behind any replies
                // still owed), then close after flushing.
                let seq = conn.v1_assign;
                conn.v1_assign += 1;
                let resp = Response::Error(format!(
                    "protocol violation: frame length {len} exceeds the {MAX_FRAME_LEN}-byte limit"
                ));
                conn.deliver_v1(seq, resp.encode());
                conn.closing = true;
                break;
            }
            if conn.rbuf.len() - pos - 4 < len {
                break; // incomplete frame: wait for more bytes
            }
            let payload = conn.rbuf[pos + 4..pos + 4 + len].to_vec();
            pos += 4 + len;
            match Request::decode(&payload) {
                Ok(req) => {
                    let (id, deadline_ms, inner) = match req {
                        Request::Tagged {
                            id,
                            deadline_ms,
                            inner,
                        } => (Some(id), deadline_ms, *inner),
                        other => (None, None, other),
                    };
                    // The wire deadline is a relative budget: the clock starts
                    // at receipt (absolute instants don't survive the wire).
                    let deadline =
                        deadline_ms.map(|ms| Instant::now() + Duration::from_millis(u64::from(ms)));
                    // Untagged requests get a sequence number so their replies go
                    // out in request order even when an async transform is slower
                    // than a later inline op. Tagged replies may overtake freely.
                    let v1_seq = if id.is_none() {
                        let seq = conn.v1_assign;
                        conn.v1_assign += 1;
                        Some(seq)
                    } else {
                        None
                    };
                    // Admission control: a connection already owed its full
                    // in-flight quota of async replies gets an in-band shed
                    // instead of another engine submission.
                    let wants_async = matches!(
                        inner,
                        Request::Transform { .. }
                            | Request::TransformView { .. }
                            | Request::Outputs { .. }
                    );
                    if wants_async && conn.inflight >= self.tuning.max_inflight_per_conn {
                        self.shed_inflight.fetch_add(1, Ordering::Relaxed);
                        let resp = Response::Overloaded(format!(
                            "connection at its in-flight limit ({} pending)",
                            conn.inflight
                        ));
                        let resp = match id {
                            Some(id) => resp.tagged(id),
                            None => resp,
                        };
                        match v1_seq {
                            Some(seq) => conn.deliver_v1(seq, resp.encode()),
                            None => conn.queue_frame(&resp.encode()),
                        }
                        continue;
                    }
                    match self.handle_request(slot, conn.gen, id, v1_seq, deadline, inner) {
                        Some(resp) => match v1_seq {
                            Some(seq) => conn.deliver_v1(seq, resp.encode()),
                            None => conn.queue_frame(&resp.encode()),
                        },
                        None => conn.inflight += 1,
                    }
                }
                Err(e) => {
                    // The frame boundary held; the *content* was bad. Reply
                    // in-band (in order — the frame was untagged as far as the
                    // client's reply matching cares) and keep serving.
                    let seq = conn.v1_assign;
                    conn.v1_assign += 1;
                    conn.deliver_v1(seq, Response::Error(e.to_string()).encode());
                }
            }
        }
        conn.rbuf.drain(..pos);

        if eof {
            if !conn.rbuf.is_empty() && !conn.closing {
                // Peer hung up mid-frame; tell it (it may still read) and close.
                // Through the ordering gate, so earlier replies still in flight
                // reach the wire first.
                let seq = conn.v1_assign;
                conn.v1_assign += 1;
                conn.deliver_v1(
                    seq,
                    Response::Error("protocol violation: connection closed mid frame".into())
                        .encode(),
                );
            }
            conn.closing = true;
        }
    }
}

/// Fallback for platforms without `poll`: the classic thread-per-connection loop.
#[cfg(not(unix))]
impl Server {
    fn run_threaded(&self) -> Result<()> {
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let service = Arc::clone(&self.service);
            std::thread::spawn(move || {
                let _ = serve_blocking(stream, &service);
            });
        }
        Ok(())
    }
}

/// Blocking per-connection loop used by the non-unix fallback.
#[cfg(not(unix))]
fn serve_blocking(stream: TcpStream, service: &Arc<dyn TransformService>) -> Result<()> {
    use crate::wire::{read_frame, write_frame};
    use crate::ServeError;
    stream.set_nodelay(true)?;
    let mut reader = std::io::BufReader::new(stream.try_clone()?);
    let mut writer = std::io::BufWriter::new(stream);
    while let Some(payload) = read_frame(&mut reader)? {
        let response = match Request::decode(&payload) {
            Ok(req) => {
                let (id, deadline_ms, inner) = match req {
                    Request::Tagged {
                        id,
                        deadline_ms,
                        inner,
                    } => (Some(id), deadline_ms, *inner),
                    other => (None, None, other),
                };
                let deadline =
                    deadline_ms.map(|ms| Instant::now() + Duration::from_millis(u64::from(ms)));
                let resp = match inner {
                    Request::Ping => Response::Pong,
                    Request::ListModels => match service.catalog() {
                        Ok(models) => Response::Models(models),
                        Err(e) => error_response(e),
                    },
                    Request::Rescan => match service.rescan() {
                        Ok(report) => Response::Rescanned(report),
                        Err(e) => error_response(e),
                    },
                    Request::Stats => Response::Stats(service.stats()),
                    Request::Refit => match service.trigger_refit() {
                        Ok(counters) => Response::Stats(counters),
                        Err(e) => error_response(e),
                    },
                    Request::Transform { model, inputs } => {
                        let (tx, rx) = std::sync::mpsc::sync_channel(1);
                        service.submit_transform(
                            &model,
                            std::sync::Arc::new(inputs),
                            deadline,
                            Box::new(move |r| drop(tx.send(r))),
                        );
                        match rx.recv() {
                            Ok(Ok(z)) => Response::Embedding(z),
                            Ok(Err(e)) => error_response(e),
                            Err(_) => Response::Error(ServeError::EngineStopped.to_string()),
                        }
                    }
                    Request::TransformView { model, view, input } => {
                        let (tx, rx) = std::sync::mpsc::sync_channel(1);
                        service.submit_transform_view(
                            &model,
                            view as usize,
                            std::sync::Arc::new(input),
                            deadline,
                            Box::new(move |r| drop(tx.send(r))),
                        );
                        match rx.recv() {
                            Ok(Ok(z)) => Response::Embedding(z),
                            Ok(Err(e)) => error_response(e),
                            Err(_) => Response::Error(ServeError::EngineStopped.to_string()),
                        }
                    }
                    Request::Outputs { model, inputs } => {
                        let (tx, rx) = std::sync::mpsc::sync_channel(1);
                        service.submit_outputs(
                            &model,
                            std::sync::Arc::new(inputs),
                            deadline,
                            Box::new(move |r| drop(tx.send(r))),
                        );
                        match rx.recv() {
                            Ok(Ok(c)) => Response::Outputs(c),
                            Ok(Err(e)) => error_response(e),
                            Err(_) => Response::Error(ServeError::EngineStopped.to_string()),
                        }
                    }
                    Request::Tagged { .. } => Response::Error("nested tagged request".into()),
                };
                match id {
                    Some(id) => resp.tagged(id),
                    None => resp,
                }
            }
            Err(e) => Response::Error(e.to_string()),
        };
        write_frame(&mut writer, &response.encode())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Client;
    use datasets::{secstr_dataset, SecStrConfig};
    use linalg::Matrix;
    use mvcore::{EstimatorRegistry, FitSpec, InputKind};
    use std::time::Duration;

    fn fixture_views() -> Vec<Matrix> {
        let data = secstr_dataset(&SecStrConfig {
            n_instances: 24,
            seed: 31,
            difficulty: 0.8,
        });
        data.views()
            .iter()
            .map(|v| v.select_rows(&(0..6.min(v.rows())).collect::<Vec<_>>()))
            .collect()
    }

    fn bound_server(store: Arc<ModelStore>) -> (Server, SocketAddr) {
        let server = Server::bind(
            "127.0.0.1:0",
            store,
            BatchConfig {
                max_batch: 16,
                max_wait: Duration::from_millis(1),
                ..BatchConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        (server, addr)
    }

    #[test]
    fn tcp_roundtrip_matches_in_process_transform() {
        let views = fixture_views();
        let registry = EstimatorRegistry::with_builtin();
        let model = registry
            .fit("TCCA", &views, &FitSpec::with_rank(2).seed(6))
            .unwrap();
        let expected = model.transform(&views).unwrap();

        let store = Arc::new(ModelStore::new(EstimatorRegistry::with_builtin()));
        store.insert("tcca", model);
        let (server, addr) = bound_server(store);
        let shutdown = server.shutdown_handle();
        let server_thread = std::thread::spawn(move || server.run().unwrap());

        let mut client = Client::connect(addr).unwrap();
        client.ping().unwrap();

        let catalog = client.list_models().unwrap();
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog[0].name, "tcca");
        assert_eq!(catalog[0].method, "TCCA");
        assert_eq!(catalog[0].input_kind, InputKind::Views);

        let served = client.transform("tcca", &views).unwrap();
        assert_eq!(served, expected, "wire transport must be bit-exact");

        // Request errors arrive in-band and the connection survives them.
        let err = client.transform("missing", &views).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
        let err = client
            .transform("tcca", &views[..1])
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("view"), "{err}");
        client.ping().unwrap();

        shutdown.shutdown();
        server_thread.join().unwrap();
    }

    #[test]
    fn pipelined_tagged_requests_complete_out_of_order() {
        let views = fixture_views();
        let registry = EstimatorRegistry::with_builtin();
        let model = registry
            .fit("PCA", &views, &FitSpec::with_rank(2).seed(5))
            .unwrap();
        let expected = model.transform(&views).unwrap();

        let store = Arc::new(ModelStore::new(EstimatorRegistry::with_builtin()));
        store.insert("pca", model);
        let (server, addr) = bound_server(store);
        let shutdown = server.shutdown_handle();
        let server_thread = std::thread::spawn(move || server.run().unwrap());

        // Fire three tagged requests back to back without reading, then collect
        // replies by id: the transform is free to complete after the pings.
        let mut client = Client::connect(addr).unwrap();
        let id_a = client
            .send(&Request::Transform {
                model: "pca".into(),
                inputs: views.clone(),
            })
            .unwrap();
        let id_b = client.send(&Request::Ping).unwrap();
        let id_c = client.send(&Request::ListModels).unwrap();
        let mut replies = std::collections::BTreeMap::new();
        for _ in 0..3 {
            let (id, resp) = client.recv().unwrap();
            replies.insert(id, resp);
        }
        assert_eq!(replies.len(), 3);
        match replies.remove(&id_a) {
            Some(Response::Embedding(z)) => assert_eq!(z, expected),
            other => panic!("unexpected transform reply: {other:?}"),
        }
        assert_eq!(replies.remove(&id_b), Some(Response::Pong));
        match replies.remove(&id_c) {
            Some(Response::Models(models)) => assert_eq!(models.len(), 1),
            other => panic!("unexpected catalog reply: {other:?}"),
        }

        shutdown.shutdown();
        server_thread.join().unwrap();
    }

    #[test]
    fn many_idle_connections_do_not_block_service() {
        let views = fixture_views();
        let registry = EstimatorRegistry::with_builtin();
        let model = registry
            .fit("PCA", &views, &FitSpec::with_rank(2).seed(9))
            .unwrap();
        let store = Arc::new(ModelStore::new(EstimatorRegistry::with_builtin()));
        store.insert("pca", model);
        let (server, addr) = bound_server(store);
        let shutdown = server.shutdown_handle();
        let server_thread = std::thread::spawn(move || server.run().unwrap());

        // Park a pile of idle connections, then serve a request through a fresh
        // one — the event loop must not be pinned by the idlers.
        let idle: Vec<Client> = (0..64).map(|_| Client::connect(addr).unwrap()).collect();
        let mut client = Client::connect(addr).unwrap();
        assert!(client.transform("pca", &views).is_ok());
        drop(idle);
        client.ping().unwrap();

        shutdown.shutdown();
        server_thread.join().unwrap();
    }
}
