//! The Linux epoll(7) backend.
//!
//! epoll keeps the interest table in the kernel: `epoll_ctl` mutates it once
//! per registration change, and `epoll_wait` returns only *ready* descriptors.
//! A wakeup therefore costs O(events), independent of how many idle
//! connections are parked — the scaling property the serving tier needs for
//! ten-thousand-connection fan-in (and the one the perf artifact's
//! idle-connection scaling entry measures against poll's linear rescan).
//!
//! Used in the default level-triggered mode so it is semantically
//! interchangeable with the poll backend: unread bytes re-report readiness on
//! every wait, which the server's read-budget anti-starvation logic relies on.

use super::{Event, Interest, Reactor, ReactorKind, Waker};
use std::io::{self, Read};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;

/// Raw epoll FFI — the glibc symbols are always linked; declared here to keep
/// the workspace free of external crates (no registry access at build time).
mod sys {
    /// Kernel event record. x86-64 is the one ABI where the kernel packs this
    /// struct; everywhere else natural alignment matches the kernel layout.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn close(fd: i32) -> i32;
    }
}

/// Most events decoded per `epoll_wait` call; further ready descriptors are
/// picked up by the next wait (level-triggered readiness persists).
const EVENT_BATCH: usize = 1024;

/// Token the internal wake pipe is registered under. Caller tokens are
/// connection-slot indices and a small listener sentinel, far below this.
const WAKE_TOKEN: u64 = u64::MAX;

fn interest_mask(interest: Interest) -> u32 {
    let mut mask = 0u32;
    if interest.read {
        mask |= sys::EPOLLIN;
    }
    if interest.write {
        mask |= sys::EPOLLOUT;
    }
    // EPOLLERR/EPOLLHUP are always reported; no need to request them.
    mask
}

/// The epoll(7) [`Reactor`].
pub struct EpollReactor {
    epfd: i32,
    registered: usize,
    buf: Vec<sys::EpollEvent>,
    wake_rx: UnixStream,
    waker: Waker,
}

// The epfd is owned exclusively by this struct; sending it between threads is
// safe (epoll fds are just kernel handles).
unsafe impl Send for EpollReactor {}

impl EpollReactor {
    /// Create an epoll instance and register the internal wake pipe.
    pub fn new() -> io::Result<Self> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        let (rx, tx) = match UnixStream::pair() {
            Ok(p) => p,
            Err(e) => {
                unsafe { sys::close(epfd) };
                return Err(e);
            }
        };
        let setup = (|| {
            rx.set_nonblocking(true)?;
            tx.set_nonblocking(true)?;
            ctl(
                epfd,
                sys::EPOLL_CTL_ADD,
                rx.as_raw_fd(),
                sys::EPOLLIN,
                WAKE_TOKEN,
            )
        })();
        if let Err(e) = setup {
            unsafe { sys::close(epfd) };
            return Err(e);
        }
        Ok(EpollReactor {
            epfd,
            registered: 0,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; EVENT_BATCH],
            wake_rx: rx,
            waker: Waker::new(tx),
        })
    }
}

fn ctl(epfd: i32, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
    let mut ev = sys::EpollEvent {
        events,
        data: token,
    };
    let ptr = if op == sys::EPOLL_CTL_DEL {
        std::ptr::null_mut()
    } else {
        &mut ev as *mut sys::EpollEvent
    };
    let rc = unsafe { sys::epoll_ctl(epfd, op, fd, ptr) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

impl Drop for EpollReactor {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

impl Reactor for EpollReactor {
    fn kind(&self) -> ReactorKind {
        ReactorKind::Epoll
    }

    fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        ctl(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            fd,
            interest_mask(interest),
            token,
        )?;
        self.registered += 1;
        Ok(())
    }

    fn modify(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        ctl(
            self.epfd,
            sys::EPOLL_CTL_MOD,
            fd,
            interest_mask(interest),
            token,
        )
    }

    fn deregister(&mut self, fd: i32) -> io::Result<()> {
        ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0)?;
        self.registered = self.registered.saturating_sub(1);
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        events.clear();
        let n = loop {
            let rc = unsafe {
                sys::epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for i in 0..n {
            // Copy out of the (possibly packed) kernel record before use.
            let raw = self.buf[i];
            let mask = raw.events;
            let token = raw.data;
            if token == WAKE_TOKEN {
                let mut sink = [0u8; 64];
                while matches!((&self.wake_rx).read(&mut sink), Ok(k) if k > 0) {}
                continue;
            }
            events.push(Event {
                token,
                readable: mask & sys::EPOLLIN != 0,
                writable: mask & sys::EPOLLOUT != 0,
                error: mask & sys::EPOLLERR != 0,
                hangup: mask & sys::EPOLLHUP != 0,
            });
        }
        Ok(())
    }

    fn waker(&self) -> Waker {
        self.waker.clone()
    }

    fn registered(&self) -> usize {
        self.registered
    }
}
