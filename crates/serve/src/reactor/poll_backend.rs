//! The portable poll(2) backend.
//!
//! This is the original serving event loop's readiness mechanism, retrofitted
//! behind the [`Reactor`] trait. poll has no persistent kernel-side interest
//! table, so every [`Reactor::wait`] rebuilds the full `pollfd` array from the
//! registration list and the kernel rescans it — per-wakeup cost is O(all
//! registered descriptors), which is exactly the scaling the epoll backend
//! exists to fix. It stays as the fallback for unixes without epoll and as the
//! semantic reference implementation.

use super::{Event, Interest, Reactor, ReactorKind, Waker};
use std::io::{self, Read};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;

/// Raw poll(2) FFI — the libc symbols are always linked; declaring them here
/// keeps the workspace free of external crates (the build environment has no
/// registry access).
mod sys {
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// `poll` retrying on EINTR. `timeout` in milliseconds, `-1` blocks.
    pub fn poll_retry(fds: &mut [PollFd], timeout: i32) -> std::io::Result<usize> {
        loop {
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// One registration: descriptor, caller token, current interest.
struct Registration {
    fd: i32,
    token: u64,
    interest: Interest,
}

/// The poll(2) [`Reactor`].
pub struct PollReactor {
    registrations: Vec<Registration>,
    wake_rx: UnixStream,
    waker: Waker,
}

impl PollReactor {
    /// Create a reactor with its internal wake pipe.
    pub fn new() -> io::Result<Self> {
        let (rx, tx) = UnixStream::pair()?;
        rx.set_nonblocking(true)?;
        tx.set_nonblocking(true)?;
        Ok(PollReactor {
            registrations: Vec::new(),
            wake_rx: rx,
            waker: Waker::new(tx),
        })
    }

    fn position(&self, fd: i32) -> Option<usize> {
        self.registrations.iter().position(|r| r.fd == fd)
    }
}

impl Reactor for PollReactor {
    fn kind(&self) -> ReactorKind {
        ReactorKind::Poll
    }

    fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        if self.position(fd).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("fd {fd} is already registered"),
            ));
        }
        self.registrations.push(Registration {
            fd,
            token,
            interest,
        });
        Ok(())
    }

    fn modify(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        let idx = self.position(fd).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("fd {fd} is not registered"),
            )
        })?;
        self.registrations[idx].token = token;
        self.registrations[idx].interest = interest;
        Ok(())
    }

    fn deregister(&mut self, fd: i32) -> io::Result<()> {
        let idx = self.position(fd).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("fd {fd} is not registered"),
            )
        })?;
        self.registrations.swap_remove(idx);
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        use sys::*;
        events.clear();

        // Slot 0 is always the wake pipe; registrations follow in list order.
        let mut fds = Vec::with_capacity(self.registrations.len() + 1);
        fds.push(PollFd {
            fd: self.wake_rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        for reg in &self.registrations {
            let mut ev = 0i16;
            if reg.interest.read {
                ev |= POLLIN;
            }
            if reg.interest.write {
                ev |= POLLOUT;
            }
            // events == 0 still reports POLLERR/POLLHUP/POLLNVAL.
            fds.push(PollFd {
                fd: reg.fd,
                events: ev,
                revents: 0,
            });
        }

        poll_retry(&mut fds, timeout_ms)?;

        if fds[0].revents & POLLIN != 0 {
            let mut sink = [0u8; 64];
            while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
        }
        for (reg, pfd) in self.registrations.iter().zip(&fds[1..]) {
            let re = pfd.revents;
            if re == 0 {
                continue;
            }
            events.push(Event {
                token: reg.token,
                readable: re & POLLIN != 0,
                writable: re & POLLOUT != 0,
                error: re & (POLLERR | POLLNVAL) != 0,
                hangup: re & POLLHUP != 0,
            });
        }
        Ok(())
    }

    fn waker(&self) -> Waker {
        self.waker.clone()
    }

    fn registered(&self) -> usize {
        self.registrations.len()
    }
}
