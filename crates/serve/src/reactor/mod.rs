//! Readiness reactors: the pluggable core of the serving event loop.
//!
//! A [`Reactor`] owns an OS readiness-notification facility and exposes the
//! minimal surface the event loop needs: register a file descriptor under a
//! caller-chosen token with a read/write [`Interest`], change that interest,
//! deregister, and [`Reactor::wait`] for a batch of [`Event`]s. Two backends
//! implement it:
//!
//! * [`PollReactor`] — the portable poll(2) loop the server originally ran on.
//!   poll rescans every registered descriptor per wakeup, so its per-wakeup
//!   cost grows linearly with the number of idle connections. Kept as the
//!   fallback (and as the semantic reference the epoll backend is tested
//!   against).
//! * `EpollReactor` (Linux only) — epoll(7), where the kernel tracks interest
//!   persistently and a wakeup costs O(ready events), independent of how many
//!   idle descriptors are registered.
//!
//! Both backends are **level-triggered**: a descriptor with unread bytes (or
//! writable space) re-reports readiness on every `wait` until the condition is
//! consumed. The server's read-budget anti-starvation logic depends on this.
//!
//! Every reactor embeds a self-pipe waker. [`Reactor::waker`] returns a
//! cloneable [`Waker`] handle that worker threads use to interrupt a blocked
//! `wait`; the wake pipe is drained internally and never surfaces as an event.
//!
//! Backend selection is runtime, not compile-time: [`ReactorKind::resolve`]
//! picks epoll on Linux by default and honours an explicit override from the
//! `--reactor` flag or the `TCCA_REACTOR` environment variable (`poll` /
//! `epoll`).

#[cfg(target_os = "linux")]
mod epoll_backend;
#[cfg(unix)]
mod poll_backend;

#[cfg(target_os = "linux")]
pub use epoll_backend::EpollReactor;
#[cfg(unix)]
pub use poll_backend::PollReactor;

use std::io;

/// Which readiness conditions a registration wants reported.
///
/// An empty interest (`Interest::NONE`) keeps the descriptor registered —
/// errors and hangups are still delivered, as both poll and epoll report those
/// unconditionally — but asks for no read/write readiness. The server uses
/// this to mute a backpressured connection without losing error notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report read readiness (`POLLIN` / `EPOLLIN`).
    pub read: bool,
    /// Report write readiness (`POLLOUT` / `EPOLLOUT`).
    pub write: bool,
}

impl Interest {
    /// No read/write readiness; errors and hangups only.
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
    /// Read readiness only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write readiness only.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Read and write readiness.
    pub const READ_WRITE: Interest = Interest {
        read: true,
        write: true,
    };
}

/// One readiness event reported by [`Reactor::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered under.
    pub token: u64,
    /// The descriptor is readable (or a peer hangup makes a read return 0).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
    /// An error condition is pending (`POLLERR`/`POLLNVAL` or `EPOLLERR`).
    pub error: bool,
    /// The peer hung up (`POLLHUP` / `EPOLLHUP`).
    pub hangup: bool,
}

/// The readiness backend a reactor runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReactorKind {
    /// Portable poll(2): per-wakeup cost linear in registered descriptors.
    Poll,
    /// Linux epoll(7): per-wakeup cost linear in *ready* descriptors.
    Epoll,
}

impl ReactorKind {
    /// Stable numeric id surfaced through the `server/backend` stats counter.
    pub fn id(self) -> u64 {
        match self {
            ReactorKind::Poll => 0,
            ReactorKind::Epoll => 1,
        }
    }

    /// The flag/env spelling of this backend.
    pub fn name(self) -> &'static str {
        match self {
            ReactorKind::Poll => "poll",
            ReactorKind::Epoll => "epoll",
        }
    }

    /// Parse a `--reactor` / `TCCA_REACTOR` value.
    pub fn parse(s: &str) -> Option<ReactorKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "poll" => Some(ReactorKind::Poll),
            "epoll" => Some(ReactorKind::Epoll),
            _ => None,
        }
    }

    /// The platform default: epoll on Linux, poll elsewhere.
    pub fn platform_default() -> ReactorKind {
        #[cfg(target_os = "linux")]
        {
            ReactorKind::Epoll
        }
        #[cfg(not(target_os = "linux"))]
        {
            ReactorKind::Poll
        }
    }

    /// Resolve the backend to run: an explicit choice (the `--reactor` flag)
    /// wins, then the `TCCA_REACTOR` environment variable, then the platform
    /// default. A request for epoll on a platform without it falls back to
    /// poll rather than failing — the two are contract-identical.
    pub fn resolve(explicit: Option<ReactorKind>) -> ReactorKind {
        let choice = explicit
            .or_else(|| {
                std::env::var("TCCA_REACTOR")
                    .ok()
                    .and_then(|v| ReactorKind::parse(&v))
            })
            .unwrap_or_else(ReactorKind::platform_default);
        #[cfg(not(target_os = "linux"))]
        {
            if choice == ReactorKind::Epoll {
                return ReactorKind::Poll;
            }
        }
        choice
    }
}

/// Wakes a blocked [`Reactor::wait`] from another thread.
///
/// Cloneable and cheap: a nonblocking write to the reactor's internal wake
/// pipe. If the pipe is already full the reactor is guaranteed to wake anyway,
/// so a failed write is silently ignored.
#[cfg(unix)]
#[derive(Clone)]
pub struct Waker {
    tx: std::sync::Arc<std::os::unix::net::UnixStream>,
}

#[cfg(unix)]
impl Waker {
    fn new(tx: std::os::unix::net::UnixStream) -> Self {
        Waker {
            tx: std::sync::Arc::new(tx),
        }
    }

    /// Interrupt the reactor's current (or next) `wait`.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&*self.tx).write(&[1u8]);
    }
}

/// A readiness-notification backend the event loop multiplexes sockets on.
///
/// Contract (both backends, asserted by the shared conformance tests):
///
/// * Registrations are keyed by file descriptor and carry a caller token that
///   comes back verbatim in every [`Event`].
/// * Level-triggered: readiness persists across `wait` calls until consumed.
/// * `wait` clears and refills `events`; it returns after the timeout with an
///   empty batch if nothing became ready, and early (possibly empty) when the
///   [`Waker`] fires. Wake-pipe traffic is internal and never reported.
/// * Errors and hangups are reported even under `Interest::NONE`.
#[cfg(unix)]
pub trait Reactor: Send {
    /// Which backend this is (for stats and logs).
    fn kind(&self) -> ReactorKind;

    /// Start watching `fd` under `token`. The descriptor must stay open until
    /// [`Reactor::deregister`]; registering an fd twice is an error.
    fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()>;

    /// Replace the interest (and token) of an already-registered descriptor.
    fn modify(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()>;

    /// Stop watching `fd`. Must be called before the descriptor is closed.
    fn deregister(&mut self, fd: i32) -> io::Result<()>;

    /// Block until readiness, a wake, or `timeout_ms` elapses (`-1` blocks
    /// indefinitely). Ready events are appended to the cleared `events`.
    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()>;

    /// A handle other threads use to interrupt `wait`.
    fn waker(&self) -> Waker;

    /// Registered descriptors, excluding the internal wake pipe.
    fn registered(&self) -> usize;
}

/// Construct the reactor for `kind`.
///
/// Requesting [`ReactorKind::Epoll`] on a non-Linux unix is a compile-time
/// impossibility after [`ReactorKind::resolve`]; this constructor still guards
/// it at runtime for callers that bypass resolution.
#[cfg(unix)]
pub fn new_reactor(kind: ReactorKind) -> io::Result<Box<dyn Reactor>> {
    match kind {
        ReactorKind::Poll => Ok(Box::new(PollReactor::new()?)),
        ReactorKind::Epoll => {
            #[cfg(target_os = "linux")]
            {
                Ok(Box::new(EpollReactor::new()?))
            }
            #[cfg(not(target_os = "linux"))]
            {
                Ok(Box::new(PollReactor::new()?))
            }
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn backends() -> Vec<Box<dyn Reactor>> {
        let mut v: Vec<Box<dyn Reactor>> = vec![Box::new(PollReactor::new().unwrap())];
        #[cfg(target_os = "linux")]
        v.push(Box::new(EpollReactor::new().unwrap()));
        v
    }

    /// A connected nonblocking socket pair (client end, server end).
    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (client, server)
    }

    fn wait_for_token(r: &mut dyn Reactor, token: u64, events: &mut Vec<Event>) -> Event {
        for _ in 0..100 {
            r.wait(events, 100).unwrap();
            if let Some(ev) = events.iter().find(|e| e.token == token) {
                return *ev;
            }
        }
        panic!("token {token} never became ready");
    }

    #[test]
    fn readiness_is_level_triggered_on_every_backend() {
        for mut r in backends() {
            let (mut client, mut server) = tcp_pair();
            r.register(server.as_raw_fd(), 7, Interest::READ).unwrap();
            assert_eq!(r.registered(), 1);

            let mut events = Vec::new();
            // Idle: a short wait reports nothing.
            r.wait(&mut events, 10).unwrap();
            assert!(events.is_empty(), "{:?} idle events", r.kind());

            client.write_all(b"xy").unwrap();
            let ev = wait_for_token(r.as_mut(), 7, &mut events);
            assert!(ev.readable);

            // Level-triggered: unread bytes re-report on the next wait.
            let ev = wait_for_token(r.as_mut(), 7, &mut events);
            assert!(ev.readable, "{:?} lost level-triggered state", r.kind());

            // Consume, then quiet again.
            let mut buf = [0u8; 8];
            let n = server.read(&mut buf).unwrap();
            assert_eq!(&buf[..n], b"xy");
            r.wait(&mut events, 10).unwrap();
            assert!(
                !events.iter().any(|e| e.token == 7 && e.readable),
                "{:?} reported stale readability",
                r.kind()
            );

            r.deregister(server.as_raw_fd()).unwrap();
            assert_eq!(r.registered(), 0);
            client.write_all(b"z").unwrap();
            r.wait(&mut events, 10).unwrap();
            assert!(events.is_empty(), "{:?} events after deregister", r.kind());
        }
    }

    #[test]
    fn modify_switches_interest_and_token() {
        for mut r in backends() {
            let (mut client, server) = tcp_pair();
            r.register(server.as_raw_fd(), 1, Interest::NONE).unwrap();

            let mut events = Vec::new();
            client.write_all(b"a").unwrap();
            r.wait(&mut events, 10).unwrap();
            assert!(
                !events.iter().any(|e| e.readable),
                "{:?} reported reads under Interest::NONE",
                r.kind()
            );

            // Flip interest on (and change the token): the pending byte surfaces.
            r.modify(server.as_raw_fd(), 2, Interest::READ_WRITE)
                .unwrap();
            let ev = wait_for_token(r.as_mut(), 2, &mut events);
            assert!(ev.readable);
            assert!(ev.writable, "{:?} idle socket should be writable", r.kind());

            r.deregister(server.as_raw_fd()).unwrap();
            drop(client);
        }
    }

    #[test]
    fn peer_close_surfaces_as_readable_eof() {
        // A graceful FIN is *not* a POLLHUP (that needs both directions shut);
        // it surfaces as read readiness whose read() then returns 0. Both
        // backends must deliver it so the server can reap the connection.
        for mut r in backends() {
            let (client, server) = tcp_pair();
            r.register(server.as_raw_fd(), 3, Interest::READ).unwrap();
            drop(client);
            let mut events = Vec::new();
            let mut seen = false;
            for _ in 0..100 {
                r.wait(&mut events, 100).unwrap();
                if events
                    .iter()
                    .any(|e| e.token == 3 && (e.hangup || e.error || e.readable))
                {
                    seen = true;
                    break;
                }
            }
            assert!(seen, "{:?} never reported the hangup", r.kind());
            r.deregister(server.as_raw_fd()).unwrap();
            drop(server);
        }
    }

    #[test]
    fn waker_interrupts_wait_without_surfacing_events() {
        for mut r in backends() {
            let waker = r.waker();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                waker.wake();
            });
            let mut events = Vec::new();
            let start = std::time::Instant::now();
            // Far longer than the waker delay: only the wake can end this early.
            r.wait(&mut events, 5_000).unwrap();
            assert!(
                start.elapsed() < std::time::Duration::from_secs(4),
                "{:?} wait was not interrupted",
                r.kind()
            );
            assert!(
                events.is_empty(),
                "{:?} surfaced wake-pipe events",
                r.kind()
            );
            handle.join().unwrap();
            // Drained: the next wait does not spin on the wake pipe.
            r.wait(&mut events, 10).unwrap();
            assert!(events.is_empty());
        }
    }

    #[test]
    fn resolve_honours_explicit_choice_over_platform_default() {
        assert_eq!(
            ReactorKind::resolve(Some(ReactorKind::Poll)),
            ReactorKind::Poll
        );
        assert_eq!(ReactorKind::parse("EPOLL"), Some(ReactorKind::Epoll));
        assert_eq!(ReactorKind::parse("neither"), None);
        assert_eq!(ReactorKind::Poll.id(), 0);
        assert_eq!(ReactorKind::Epoll.id(), 1);
    }
}
