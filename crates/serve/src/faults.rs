//! Deterministic fault injection for the serving stack.
//!
//! Every distributed-failure path in this crate — connect refusal, a peer that
//! stalls mid-read, a truncated frame, a reply that arrives late — can be
//! triggered here *in-process* and *reproducibly*, without SIGKILL races or
//! real packet loss. A [`FaultPlan`] names a seed and per-site firing rates
//! (in permille); each decision hashes `seed ⊕ site ⊕ sequence-counter`
//! through SplitMix64, so the same plan produces the same fault sequence on
//! every run. The soak harness records the seed in its report, making any
//! chaos run replayable bit-for-bit at the decision level.
//!
//! The layer is **zero-cost when off**: the only always-on work is one relaxed
//! atomic load ([`active`]). Plans are installed programmatically
//! ([`install`]/[`clear`]) or from the `TCCA_FAULTS` environment variable, a
//! comma-separated `key=value` list:
//!
//! ```text
//! TCCA_FAULTS=seed=42,port=9201,connect_refuse=50,read_delay=100,read_delay_ms=20,write_trunc=10
//! ```
//!
//! `port` scopes the plan to connections whose peer listens on that port
//! (e.g. fault only the router→shard link while the client→router link stays
//! clean); omit it to target every [`crate::Client`] connection in the
//! process.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Where in the request path a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// `Client::connect` fails with `ConnectionRefused` without dialing.
    ConnectRefuse,
    /// A read stalls for the plan's `read_delay_ms` before proceeding.
    ReadDelay,
    /// A frame write emits a truncated header then fails — the peer sees a
    /// length prefix whose payload never arrives.
    WriteTrunc,
    /// A write stalls for the plan's `write_delay_ms` before proceeding.
    WriteDelay,
}

impl Site {
    fn salt(self) -> u64 {
        match self {
            Site::ConnectRefuse => 0x1000_0000_0000_0001,
            Site::ReadDelay => 0x2000_0000_0000_0002,
            Site::WriteTrunc => 0x3000_0000_0000_0003,
            Site::WriteDelay => 0x4000_0000_0000_0004,
        }
    }
}

/// A seeded fault schedule. Rates are permille (`0..=1000`): `50` fires on
/// ~5% of decisions at that site, deterministically in sequence.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for the decision hash; recorded by harnesses for replay.
    pub seed: u64,
    /// Restrict injection to connections whose peer port matches; `None`
    /// faults every client connection in the process.
    pub target_port: Option<u16>,
    /// Permille of connects that fail with `ConnectionRefused`.
    pub connect_refuse: u16,
    /// Permille of reads delayed by [`FaultPlan::read_delay_ms`].
    pub read_delay: u16,
    /// Stall applied when a read-delay fault fires.
    pub read_delay_ms: u64,
    /// Permille of frame writes truncated mid-header.
    pub write_trunc: u16,
    /// Permille of writes delayed by [`FaultPlan::write_delay_ms`].
    pub write_delay: u16,
    /// Stall applied when a write-delay fault fires.
    pub write_delay_ms: u64,
}

impl FaultPlan {
    /// Parse the `TCCA_FAULTS` `key=value,key=value` format.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("fault spec {pair:?} is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let parse = |what: &str| -> Result<u64, String> {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("bad {what} value {value:?} in fault spec"))
            };
            match key {
                "seed" => plan.seed = parse("seed")?,
                "port" => plan.target_port = Some(parse("port")? as u16),
                "connect_refuse" => plan.connect_refuse = parse("connect_refuse")? as u16,
                "read_delay" => plan.read_delay = parse("read_delay")? as u16,
                "read_delay_ms" => plan.read_delay_ms = parse("read_delay_ms")?,
                "write_trunc" => plan.write_trunc = parse("write_trunc")? as u16,
                "write_delay" => plan.write_delay = parse("write_delay")? as u16,
                "write_delay_ms" => plan.write_delay_ms = parse("write_delay_ms")?,
                _ => return Err(format!("unknown fault spec key {key:?}")),
            }
        }
        Ok(plan)
    }

    fn rate(&self, site: Site) -> u16 {
        match site {
            Site::ConnectRefuse => self.connect_refuse,
            Site::ReadDelay => self.read_delay,
            Site::WriteTrunc => self.write_trunc,
            Site::WriteDelay => self.write_delay,
        }
    }
}

struct Layer {
    active: AtomicBool,
    counter: AtomicU64,
    plan: Mutex<Option<FaultPlan>>,
}

fn layer() -> &'static Layer {
    static LAYER: OnceLock<Layer> = OnceLock::new();
    LAYER.get_or_init(|| {
        let plan = std::env::var("TCCA_FAULTS")
            .ok()
            .filter(|s| !s.is_empty())
            .and_then(|spec| match FaultPlan::parse(&spec) {
                Ok(plan) => Some(plan),
                Err(e) => {
                    eprintln!("ignoring TCCA_FAULTS: {e}");
                    None
                }
            });
        Layer {
            active: AtomicBool::new(plan.is_some()),
            counter: AtomicU64::new(0),
            plan: Mutex::new(plan),
        }
    })
}

/// Whether any fault plan is installed. One relaxed load — this is the entire
/// cost of the layer on the happy path.
#[inline]
pub fn active() -> bool {
    layer().active.load(Ordering::Relaxed)
}

/// Install a plan, replacing any previous one and resetting the decision
/// sequence (so an install is a reproducibility boundary).
pub fn install(plan: FaultPlan) {
    let l = layer();
    *l.plan.lock().expect("fault plan lock") = Some(plan);
    l.counter.store(0, Ordering::Relaxed);
    l.active.store(true, Ordering::Relaxed);
}

/// Remove the installed plan; all sites stop firing.
pub fn clear() {
    let l = layer();
    l.active.store(false, Ordering::Relaxed);
    *l.plan.lock().expect("fault plan lock") = None;
}

/// Whether connections to `port` are in the installed plan's blast radius.
pub fn targets_port(port: u16) -> bool {
    if !active() {
        return false;
    }
    match &*layer().plan.lock().expect("fault plan lock") {
        Some(plan) => plan.target_port.is_none_or(|p| p == port),
        None => false,
    }
}

/// The decision hash — also reused by the router's deterministic retry jitter.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Decide whether the next fault at `site` fires, advancing the deterministic
/// decision sequence. Returns the configured delay for delay sites (zero for
/// refuse/truncate sites). `None` means no fault.
pub fn fires(site: Site) -> Option<Duration> {
    if !active() {
        return None;
    }
    let l = layer();
    let guard = l.plan.lock().expect("fault plan lock");
    let plan = guard.as_ref()?;
    let rate = plan.rate(site);
    if rate == 0 {
        return None;
    }
    let n = l.counter.fetch_add(1, Ordering::Relaxed);
    let roll = splitmix64(plan.seed ^ site.salt() ^ n) % 1000;
    if roll >= u64::from(rate) {
        return None;
    }
    Some(match site {
        Site::ReadDelay => Duration::from_millis(plan.read_delay_ms),
        Site::WriteDelay => Duration::from_millis(plan.write_delay_ms),
        Site::ConnectRefuse | Site::WriteTrunc => Duration::ZERO,
    })
}

/// The injected-connect-refusal error, distinguishable in logs from a real one.
pub fn refusal() -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::ConnectionRefused,
        "injected connect refusal (fault layer)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    // The layer is process-global and other tests in this crate open real
    // client connections; serialize these tests and scope every installed plan
    // to port 1 (nothing real listens there) so concurrent tests are never in
    // the blast radius.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn decisions(plan: &FaultPlan, n: usize) -> Vec<bool> {
        install(plan.clone());
        let out = (0..n).map(|_| fires(Site::WriteTrunc).is_some()).collect();
        clear();
        out
    }

    #[test]
    fn same_seed_same_sequence_different_seed_differs() {
        let _g = test_lock();
        let plan = FaultPlan {
            seed: 42,
            target_port: Some(1),
            write_trunc: 300,
            ..FaultPlan::default()
        };
        let a = decisions(&plan, 256);
        let b = decisions(&plan, 256);
        assert_eq!(a, b, "same seed must replay the same fault sequence");
        assert!(a.iter().any(|&f| f), "a 30% rate must fire in 256 draws");
        assert!(!a.iter().all(|&f| f), "a 30% rate must not always fire");
        let other = decisions(
            &FaultPlan {
                seed: 43,
                ..plan.clone()
            },
            256,
        );
        assert_ne!(a, other, "different seeds must diverge");
    }

    #[test]
    fn rate_is_roughly_honoured() {
        let _g = test_lock();
        let plan = FaultPlan {
            seed: 7,
            target_port: Some(1),
            write_trunc: 100,
            ..FaultPlan::default()
        };
        let hits = decisions(&plan, 2000).iter().filter(|&&f| f).count();
        // 10% of 2000 = 200 expected; accept a generous band.
        assert!((100..=320).contains(&hits), "hits {hits} far from 10%");
    }

    #[test]
    fn inactive_layer_never_fires_and_is_cheap() {
        let _g = test_lock();
        clear();
        assert!(!active());
        assert!(fires(Site::ConnectRefuse).is_none());
        assert!(!targets_port(80));
    }

    #[test]
    fn parse_round_trips_the_env_format() {
        let plan = FaultPlan::parse(
            "seed=9,port=1234,connect_refuse=50,read_delay=100,read_delay_ms=20,\
             write_trunc=10,write_delay=5,write_delay_ms=3",
        )
        .unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.target_port, Some(1234));
        assert_eq!(plan.connect_refuse, 50);
        assert_eq!(plan.read_delay, 100);
        assert_eq!(plan.read_delay_ms, 20);
        assert_eq!(plan.write_trunc, 10);
        assert_eq!(plan.write_delay, 5);
        assert_eq!(plan.write_delay_ms, 3);
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(FaultPlan::parse("unknown=1").is_err());
    }

    #[test]
    fn port_scoping_limits_the_blast_radius() {
        let _g = test_lock();
        install(FaultPlan {
            target_port: Some(1),
            connect_refuse: 1000,
            ..FaultPlan::default()
        });
        assert!(targets_port(1));
        assert!(!targets_port(2));
        clear();
        // No target port: every connection is in scope (rates all zero, so a
        // concurrent connect elsewhere in the test process still sees no
        // injected faults during this window).
        install(FaultPlan::default());
        assert!(targets_port(9201) && targets_port(1));
        clear();
    }
}
