//! [`BatchEngine`]: micro-batching transform execution on one shared thread pool.
//!
//! Transform requests are tiny (often a handful of instances) while the dense kernels
//! amortize best over many columns. The engine therefore **coalesces** concurrent
//! requests for the same model into one batched `transform`:
//!
//! 1. a dispatcher thread pops the oldest pending request, opening a batch for that
//!    request's model,
//! 2. it keeps absorbing queued requests for the *same* model until the batch holds
//!    [`BatchConfig::max_batch`] instances or [`BatchConfig::max_wait`] has elapsed
//!    since the batch opened,
//! 3. the batch is stitched together along the instance axis — `hstack` of the
//!    per-view matrices for feature-view models, `vstack` of kernel blocks for
//!    kernel models — and executed as **one** `transform` call on the process-wide
//!    [`parallel::Pool`], so concurrent fits and transforms share a single thread
//!    pool instead of oversubscribing the machine,
//! 4. the embedding rows are split back per request.
//!
//! If a batched call fails (e.g. a transductive DSE model that only accepts its
//! exact training batch, or one malformed request in the batch), the engine falls
//! back to executing the batch's requests individually so a bad request cannot
//! poison its neighbours. Requests for *different* models never wait on each other
//! beyond queue order: each batch is dispatched to the pool asynchronously and the
//! dispatcher immediately opens the next one.

use crate::{ModelStore, Result, ServeError};
use linalg::Matrix;
use mvcore::{InputKind, MultiViewModel};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Micro-batching knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Maximum instances coalesced into one `transform` call.
    pub max_batch: usize,
    /// Maximum time a batch stays open waiting for more same-model requests.
    pub max_wait: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch: 256,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// Counters for observability and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Transform requests accepted.
    pub requests: usize,
    /// Batched `transform` executions (≤ `requests` when coalescing happens).
    pub batches: usize,
    /// Requests that were coalesced into a batch with at least one other request.
    pub coalesced_requests: usize,
    /// Batches that failed as a whole and were retried request by request.
    pub fallbacks: usize,
}

struct Pending {
    model: String,
    inputs: Vec<Matrix>,
    reply: SyncSender<Result<Matrix>>,
}

struct Shared {
    store: Arc<ModelStore>,
    config: BatchConfig,
    queue: Mutex<VecDeque<Pending>>,
    wake: Condvar,
    stop: AtomicBool,
    /// Behind its own `Arc` so pool jobs can record fallbacks after the dispatcher
    /// has moved on.
    stats: Arc<Mutex<EngineStats>>,
}

/// The micro-batching transform engine. Cheap to clone handles are not provided;
/// share it behind an [`Arc`].
pub struct BatchEngine {
    shared: Arc<Shared>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl BatchEngine {
    /// Start the engine's dispatcher thread over a store.
    pub fn start(store: Arc<ModelStore>, config: BatchConfig) -> Self {
        let shared = Arc::new(Shared {
            store,
            config: BatchConfig {
                max_batch: config.max_batch.max(1),
                max_wait: config.max_wait,
            },
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            stats: Arc::new(Mutex::new(EngineStats::default())),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tcca-batch-dispatch".into())
                .spawn(move || dispatch_loop(&shared))
                .expect("spawning the batch dispatcher")
        };
        Self {
            shared,
            dispatcher: Some(dispatcher),
        }
    }

    /// Project instances through a stored model, transparently coalescing with
    /// concurrent requests for the same model. Blocks until the result is ready.
    pub fn transform(&self, model: &str, inputs: Vec<Matrix>) -> Result<Matrix> {
        if self.shared.stop.load(Ordering::SeqCst) {
            return Err(ServeError::EngineStopped);
        }
        // Resolve the name eagerly so unknown models fail fast with the catalog.
        self.shared.store.entry(model)?;
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        {
            let mut queue = self.shared.queue.lock().expect("engine queue lock");
            queue.push_back(Pending {
                model: model.to_string(),
                inputs,
                reply: tx,
            });
            self.shared
                .stats
                .lock()
                .expect("engine stats lock")
                .requests += 1;
        }
        self.shared.wake.notify_one();
        rx.recv().map_err(|_| ServeError::EngineStopped)?
    }

    /// Counters since start.
    pub fn stats(&self) -> EngineStats {
        *self.shared.stats.lock().expect("engine stats lock")
    }

    /// The store the engine serves from.
    pub fn store(&self) -> &Arc<ModelStore> {
        &self.shared.store
    }
}

impl Drop for BatchEngine {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

/// Number of instances a request contributes, along the model's batching axis.
fn request_instances(kind: InputKind, inputs: &[Matrix]) -> usize {
    match (kind, inputs.first()) {
        (InputKind::Views, Some(m)) => m.cols(),
        (InputKind::Kernels, Some(m)) => m.rows(),
        (_, None) => 0,
    }
}

fn dispatch_loop(shared: &Shared) {
    loop {
        // Wait for the first request of the next batch.
        let first = {
            let mut queue = shared.queue.lock().expect("engine queue lock");
            loop {
                if let Some(p) = queue.pop_front() {
                    break p;
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.wake.wait(queue).expect("engine queue lock");
            }
        };

        // The batching axis comes from the header metadata alone — a *cold* model's
        // payload is deserialized inside the pool job below, never on the
        // dispatcher thread, so a slow first load of one model cannot head-of-line
        // block batching for every other model.
        let kind = match shared.store.entry(&first.model) {
            Ok(entry) => entry.meta().input_kind,
            Err(e) => {
                let _ = first.reply.send(Err(e));
                continue;
            }
        };

        // Absorb same-model requests until the batch is full or the window closes.
        let mut batch = vec![first];
        let mut instances = request_instances(kind, &batch[0].inputs);
        let deadline = Instant::now() + shared.config.max_wait;
        {
            let mut queue = shared.queue.lock().expect("engine queue lock");
            loop {
                while instances < shared.config.max_batch {
                    let next = queue
                        .iter()
                        .position(|p| p.model == batch[0].model)
                        .and_then(|i| queue.remove(i));
                    match next {
                        Some(p) => {
                            instances += request_instances(kind, &p.inputs);
                            batch.push(p);
                        }
                        None => break,
                    }
                }
                if instances >= shared.config.max_batch || shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                // Woken by a new request or the window closing; the next loop
                // iteration sweeps the queue again either way.
                let (q, _timeout) = shared
                    .wake
                    .wait_timeout(queue, deadline - now)
                    .expect("engine queue lock");
                queue = q;
            }
        }

        // Execute asynchronously on the shared pool; the dispatcher moves on.
        {
            let mut stats = shared.stats.lock().expect("engine stats lock");
            stats.batches += 1;
            if batch.len() > 1 {
                stats.coalesced_requests += batch.len();
            }
        }
        let stats = Arc::clone(&shared.stats);
        let store = Arc::clone(&shared.store);
        parallel::Pool::global().spawn(move || execute_batch(&store, kind, batch, &stats));
    }
}

fn execute_batch(
    store: &ModelStore,
    kind: InputKind,
    batch: Vec<Pending>,
    stats: &Arc<Mutex<EngineStats>>,
) {
    let model: Arc<dyn MultiViewModel> = match store.get(&batch[0].model) {
        Ok(m) => m,
        Err(e) => {
            // ServeError is not Clone (it can wrap io::Error); forward the load
            // failure to every waiter as a persistence error message.
            let msg = e.to_string();
            for pending in batch {
                let _ = pending
                    .reply
                    .send(Err(mvcore::CoreError::Persist(msg.clone()).into()));
            }
            return;
        }
    };
    if batch.len() == 1 {
        let Pending { inputs, reply, .. } = batch.into_iter().next().expect("one request");
        let result = model.transform(&inputs).map_err(ServeError::from);
        let _ = reply.send(result);
        return;
    }

    match run_coalesced(model.as_ref(), kind, &batch) {
        Ok(embeddings) => {
            for (pending, z) in batch.into_iter().zip(embeddings) {
                let _ = pending.reply.send(Ok(z));
            }
        }
        Err(_) => {
            // One bad (or transductive) request must not fail its neighbours: retry
            // individually.
            stats.lock().expect("engine stats lock").fallbacks += 1;
            for pending in batch {
                let result = model.transform(&pending.inputs).map_err(ServeError::from);
                let _ = pending.reply.send(result);
            }
        }
    }
}

/// Concatenate view `v` of every request along the instance axis into one
/// preallocated matrix (columns for feature views, rows for kernel blocks). Each
/// request's block is copied exactly once — no repeated pairwise `hstack`/`vstack`
/// whose data movement would grow quadratically with the batch size.
fn stitch_view(kind: InputKind, batch: &[Pending], v: usize) -> Result<Matrix> {
    let shape_err = |what: String| ServeError::Protocol(what);
    let head = &batch[0].inputs[v];
    match kind {
        InputKind::Views => {
            let d = head.rows();
            let mut total = 0usize;
            for p in batch {
                let part = &p.inputs[v];
                if part.rows() != d {
                    return Err(shape_err(format!(
                        "view {v}: request has {} features, batch peer has {d}",
                        part.rows()
                    )));
                }
                total += part.cols();
            }
            let mut out = Matrix::zeros(d, total);
            let mut col = 0usize;
            for p in batch {
                let part = &p.inputs[v];
                for i in 0..d {
                    out.row_mut(i)[col..col + part.cols()].copy_from_slice(part.row(i));
                }
                col += part.cols();
            }
            Ok(out)
        }
        InputKind::Kernels => {
            let n = head.cols();
            let mut total = 0usize;
            for p in batch {
                let part = &p.inputs[v];
                if part.cols() != n {
                    return Err(shape_err(format!(
                        "kernel block {v}: request has {} columns, batch peer has {n}",
                        part.cols()
                    )));
                }
                total += part.rows();
            }
            let mut out = Matrix::zeros(total, n);
            let mut row = 0usize;
            for p in batch {
                let part = &p.inputs[v];
                out.as_mut_slice()[row * n..row * n + part.as_slice().len()]
                    .copy_from_slice(part.as_slice());
                row += part.rows();
            }
            Ok(out)
        }
    }
}

/// Stitch the batch along the instance axis, run one `transform`, split the rows.
fn run_coalesced(
    model: &dyn MultiViewModel,
    kind: InputKind,
    batch: &[Pending],
) -> Result<Vec<Matrix>> {
    let views = model.num_views();
    for p in batch {
        if p.inputs.len() != views {
            return Err(ServeError::Protocol(format!(
                "request has {} inputs, model expects {views}",
                p.inputs.len()
            )));
        }
    }
    let mut stitched = Vec::with_capacity(views);
    for v in 0..views {
        stitched.push(stitch_view(kind, batch, v)?);
    }
    let z = model.transform(&stitched)?;

    let mut out = Vec::with_capacity(batch.len());
    let mut row = 0usize;
    for p in batch {
        let n = request_instances(kind, &p.inputs);
        if row + n > z.rows() {
            return Err(ServeError::Protocol(format!(
                "batched embedding has {} rows, expected at least {}",
                z.rows(),
                row + n
            )));
        }
        out.push(z.select_rows(&(row..row + n).collect::<Vec<_>>()));
        row += n;
    }
    if row != z.rows() {
        return Err(ServeError::Protocol(format!(
            "batched embedding has {} rows, requests account for {row}",
            z.rows()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::{secstr_dataset, SecStrConfig};
    use mvcore::{EstimatorRegistry, FitSpec};

    fn fixture_views() -> Vec<Matrix> {
        let data = secstr_dataset(&SecStrConfig {
            n_instances: 32,
            seed: 17,
            difficulty: 0.8,
        });
        data.views()
            .iter()
            .map(|v| v.select_rows(&(0..8.min(v.rows())).collect::<Vec<_>>()))
            .collect()
    }

    fn engine_with(name: &str, method: &str, views: &[Matrix]) -> BatchEngine {
        let registry = EstimatorRegistry::with_builtin();
        let model = registry
            .fit(method, views, &FitSpec::with_rank(2).seed(2))
            .unwrap();
        let store = Arc::new(ModelStore::new(EstimatorRegistry::with_builtin()));
        store.insert(name, model);
        BatchEngine::start(
            store,
            BatchConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(20),
            },
        )
    }

    #[test]
    fn single_requests_match_direct_transform() {
        let views = fixture_views();
        let engine = engine_with("tcca", "TCCA", &views);
        let direct = engine
            .store()
            .get("tcca")
            .unwrap()
            .transform(&views)
            .unwrap();
        let served = engine.transform("tcca", views.clone()).unwrap();
        assert_eq!(served, direct);
        assert!(matches!(
            engine.transform("missing", views),
            Err(ServeError::UnknownModel { .. })
        ));
    }

    #[test]
    fn concurrent_requests_coalesce_and_split_correctly() {
        let views = fixture_views();
        let engine = Arc::new(engine_with("pca", "PCA", &views));
        let direct = engine
            .store()
            .get("pca")
            .unwrap()
            .transform(&views)
            .unwrap();

        // 8 clients each asking for a distinct 4-instance slice.
        let mut handles = Vec::new();
        for c in 0..8usize {
            let engine = Arc::clone(&engine);
            let slice: Vec<Matrix> = views
                .iter()
                .map(|v| v.select_columns(&(4 * c..4 * (c + 1)).collect::<Vec<_>>()))
                .collect();
            handles.push(std::thread::spawn(move || {
                (c, engine.transform("pca", slice).unwrap())
            }));
        }
        for h in handles {
            let (c, z) = h.join().unwrap();
            let expected = direct.select_rows(&(4 * c..4 * (c + 1)).collect::<Vec<_>>());
            assert_eq!(z, expected, "client {c}");
        }

        let stats = engine.stats();
        assert_eq!(stats.requests, 8);
        assert!(
            stats.batches <= stats.requests,
            "batches {} > requests {}",
            stats.batches,
            stats.requests
        );
    }

    #[test]
    fn transductive_batches_fall_back_to_individual_execution() {
        let views = fixture_views();
        let engine = Arc::new(engine_with("dse", "DSE", &views));
        // Two concurrent requests for the exact training batch: coalescing doubles
        // the instance count, the fingerprint check rejects it, and the fallback
        // serves both individually.
        let mut handles = Vec::new();
        for _ in 0..2 {
            let engine = Arc::clone(&engine);
            let inputs = views.clone();
            handles.push(std::thread::spawn(move || {
                engine.transform("dse", inputs).unwrap()
            }));
        }
        let results: Vec<Matrix> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0].rows(), 32);
    }

    #[test]
    fn stopped_engine_rejects_new_requests() {
        let views = fixture_views();
        let engine = engine_with("cat", "CAT", &views);
        drop(engine);
        // A fresh engine whose store lacks the model reports the catalog.
        let store = Arc::new(ModelStore::new(EstimatorRegistry::with_builtin()));
        let engine = BatchEngine::start(store, BatchConfig::default());
        let err = engine.transform("cat", views).map(|_| ()).unwrap_err();
        assert!(matches!(err, ServeError::UnknownModel { .. }));
    }
}
